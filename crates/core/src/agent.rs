//! The switch agent: a simulator node that embeds a [`Datapath`] and
//! speaks `zen-proto` to the controller.
//!
//! This is the software running *on* the switch in a deployed SDN — the
//! part of Open vSwitch that terminates the OpenFlow session: it
//! registers local ports, punts table misses as PACKET_IN, applies
//! FLOW_MOD / GROUP_MOD / METER_MOD, executes PACKET_OUT, answers
//! BARRIER and STATS, and reports PORT_STATUS and FLOW_REMOVED.

use std::any::Any;

use zen_dataplane::{Datapath, DatapathId, Effect, MissPolicy, PortNo};
use zen_proto::{
    decode, encode, CodecError, ErrorCode, FlowModCmd, GroupModCmd, Message, MeterModCmd, PortDesc,
    StatsBody, StatsKind,
};
use zen_sim::{Context, Duration, Node, NodeId};
use zen_telemetry::{trace_id_for_frame, TraceEvent};

const TIMER_EXPIRE: u64 = 1;
const TIMER_ECHO: u64 = 2;

/// What the agent does with table-miss traffic while it believes the
/// controller is unreachable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConnLossPolicy {
    /// Keep installed flows and flood unmatched edge traffic out every
    /// up port — the switch degrades to a learning-less hub rather than
    /// a black hole (OpenFlow's fail-standalone mode).
    #[default]
    FailStandalone,
    /// Keep installed flows but drop table-miss packets — no traffic
    /// moves without controller say-so (fail-secure mode).
    FailSecure,
}

/// The agent's view of its control session, driven by echo keepalives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConnState {
    /// Replies arriving normally.
    #[default]
    Connected,
    /// At least one probe outstanding past its interval.
    Degraded,
    /// `miss_limit` consecutive probes unanswered; the conn-loss policy
    /// governs miss traffic until the controller is heard from again.
    Disconnected,
}

/// Tunables for the switch agent.
#[derive(Debug, Clone, Copy)]
pub struct AgentConfig {
    /// How often to scan tables for idle/hard timeouts.
    pub expire_interval: Duration,
    /// Keepalive probe interval.
    pub echo_interval: Duration,
    /// Consecutive unanswered probes before `Disconnected`.
    pub miss_limit: u32,
    /// Behaviour for miss traffic while disconnected.
    pub policy: ConnLossPolicy,
}

impl Default for AgentConfig {
    fn default() -> AgentConfig {
        AgentConfig {
            expire_interval: Duration::from_millis(10),
            echo_interval: Duration::from_millis(50),
            miss_limit: 4,
            policy: ConnLossPolicy::FailStandalone,
        }
    }
}

/// Agent counters, read by experiments.
#[derive(Debug, Default, Clone, Copy)]
pub struct AgentStats {
    /// PACKET_INs sent to the controller.
    pub packet_ins: u64,
    /// FLOW_MODs applied.
    pub flow_mods: u64,
    /// PACKET_OUTs executed.
    pub packet_outs: u64,
    /// Protocol decode errors.
    pub decode_errors: u64,
    /// ECHO_REQUESTs sent to the controller (liveness probes).
    pub echo_sent: u64,
    /// ECHO_REPLYs received from the controller.
    pub echo_replies: u64,
    /// Miss packets flooded while disconnected (fail-standalone).
    pub standalone_floods: u64,
    /// Punted packets dropped while disconnected.
    pub disconnected_drops: u64,
    /// Transitions out of `Disconnected` (each sends a HELLO_RESYNC).
    pub reconnects: u64,
}

/// The switch-side control agent.
pub struct SwitchAgent {
    /// The embedded forwarding plane.
    pub dp: Datapath,
    controller: NodeId,
    cfg: AgentConfig,
    conn: ConnState,
    /// Probes sent since the last message heard from the controller.
    outstanding: u32,
    /// Monotonic count of state-mutating mods applied (flow/group/meter).
    generation: u64,
    /// Xids of recently applied state mods, answered back in
    /// BARRIER_REPLYs so the controller learns which mods survived the
    /// channel (bounded; xids are monotonic, so the smallest are oldest).
    applied_xids: std::collections::BTreeSet<u32>,
    echo_token: u64,
    xid: u32,
    /// Counters.
    pub stats: AgentStats,
}

impl SwitchAgent {
    /// An agent for a switch with `dpid`, `n_tables` tables, punting
    /// misses (truncated to 2 KiB) to `controller`.
    pub fn new(dpid: DatapathId, n_tables: usize, controller: NodeId) -> SwitchAgent {
        SwitchAgent::with_config(dpid, n_tables, controller, AgentConfig::default())
    }

    /// As [`SwitchAgent::new`], with explicit tunables.
    pub fn with_config(
        dpid: DatapathId,
        n_tables: usize,
        controller: NodeId,
        cfg: AgentConfig,
    ) -> SwitchAgent {
        SwitchAgent {
            dp: Datapath::new(dpid, n_tables, MissPolicy::ToController { max_len: 2048 }),
            controller,
            cfg,
            conn: ConnState::Connected,
            outstanding: 0,
            generation: 0,
            applied_xids: std::collections::BTreeSet::new(),
            echo_token: 0,
            xid: 1,
            stats: AgentStats::default(),
        }
    }

    /// The agent's current view of the control session.
    pub fn conn_state(&self) -> ConnState {
        self.conn
    }

    /// The state-mutation generation (see [`Message::HelloResync`]).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Remember a state mod's xid for barrier acknowledgement, bounding
    /// the memory (monotonic xids make the smallest entries the oldest).
    fn note_applied(&mut self, xid: u32) {
        self.applied_xids.insert(xid);
        while self.applied_xids.len() > 4096 {
            self.applied_xids.pop_first();
        }
    }

    /// Per-cookie installed flow-entry counts across all tables,
    /// ascending by cookie — the digest reported in HELLO_RESYNC.
    pub fn flow_digest(&self) -> Vec<zen_proto::CookieCount> {
        let mut counts = std::collections::BTreeMap::new();
        for tid in 0..self.dp.table_count() as u8 {
            for entry in self.dp.table(tid).entries() {
                *counts.entry(entry.spec.cookie).or_insert(0u32) += 1;
            }
        }
        counts
            .into_iter()
            .map(|(cookie, count)| zen_proto::CookieCount { cookie, count })
            .collect()
    }

    fn send_resync(&mut self, ctx: &mut Context<'_>) {
        let msg = Message::HelloResync {
            generation: self.generation,
            cookies: self.flow_digest(),
        };
        self.send(ctx, &msg);
    }

    /// Any message from the controller proves the channel works: clear
    /// the outstanding-probe count and, when coming back from
    /// `Disconnected`, start the resync handshake.
    fn note_controller_alive(&mut self, ctx: &mut Context<'_>) {
        self.outstanding = 0;
        if self.conn == ConnState::Disconnected {
            self.stats.reconnects += 1;
            self.send_resync(ctx);
        }
        self.conn = ConnState::Connected;
    }

    fn send(&mut self, ctx: &mut Context<'_>, msg: &Message) {
        let xid = self.xid;
        self.xid += 1;
        ctx.send_control(self.controller, encode(msg, xid));
    }

    fn send_with_xid(&mut self, ctx: &mut Context<'_>, msg: &Message, xid: u32) {
        ctx.send_control(self.controller, encode(msg, xid));
    }

    fn port_descs(&self, ctx: &Context<'_>) -> Vec<PortDesc> {
        ctx.ports()
            .into_iter()
            .map(|p| PortDesc {
                port_no: p,
                up: ctx.port_up(p),
            })
            .collect()
    }

    fn run_effects(&mut self, ctx: &mut Context<'_>, effects: Vec<Effect>) {
        for effect in effects {
            match effect {
                Effect::Output { port, frame } => {
                    if self.dp.port_up(port) {
                        ctx.transmit(port, frame);
                    }
                }
                Effect::ToController {
                    reason,
                    in_port,
                    frame,
                    table_id,
                } => {
                    let is_miss = reason == zen_dataplane::datapath::PacketInReason::NoMatch;
                    if self.conn == ConnState::Disconnected {
                        // The controller is unreachable as far as we can
                        // tell; the conn-loss policy decides the fate of
                        // punted traffic.
                        if is_miss && self.cfg.policy == ConnLossPolicy::FailStandalone {
                            self.stats.standalone_floods += 1;
                            for port in ctx.ports() {
                                if port != in_port && ctx.port_up(port) && self.dp.port_up(port) {
                                    ctx.transmit(port, frame.clone());
                                }
                            }
                        } else {
                            self.stats.disconnected_drops += 1;
                        }
                        continue;
                    }
                    self.stats.packet_ins += 1;
                    {
                        let rec = ctx.recorder();
                        if rec.is_enabled() {
                            if let Some(tid) = trace_id_for_frame(&frame) {
                                rec.record(
                                    ctx.now().as_nanos(),
                                    tid,
                                    TraceEvent::Punt {
                                        dpid: self.dp.dpid,
                                        table_id,
                                    },
                                );
                            }
                        }
                    }
                    let msg = Message::PacketIn {
                        in_port,
                        table_id,
                        is_miss,
                        frame,
                    };
                    self.send(ctx, &msg);
                }
            }
        }
    }

    fn handle_message(&mut self, ctx: &mut Context<'_>, msg: Message, xid: u32) {
        let now = ctx.now().as_nanos();
        match msg {
            Message::Hello { .. } => {
                // Each side sends HELLO exactly once (ours went out at
                // start); answering here would ping-pong forever.
            }
            Message::EchoRequest { token } => {
                self.send_with_xid(ctx, &Message::EchoReply { token }, xid);
            }
            Message::EchoReply { .. } => {
                self.stats.echo_replies += 1;
            }
            Message::FeaturesRequest => {
                let reply = Message::FeaturesReply {
                    dpid: self.dp.dpid,
                    n_tables: self.dp.table_count() as u8,
                    ports: self.port_descs(ctx),
                };
                self.send_with_xid(ctx, &reply, xid);
            }
            Message::PacketOut {
                in_port,
                actions,
                frame,
            } => {
                self.stats.packet_outs += 1;
                let effects = self.dp.inject(now, in_port, &actions, &frame);
                self.run_effects(ctx, effects);
            }
            Message::FlowMod { table_id, cmd } => {
                if usize::from(table_id) >= self.dp.table_count()
                    && !matches!(cmd, FlowModCmd::DeleteByCookie { .. })
                {
                    let err = Message::Error {
                        code: ErrorCode::BadRequest,
                        data: vec![table_id],
                    };
                    self.send_with_xid(ctx, &err, xid);
                    return;
                }
                self.stats.flow_mods += 1;
                self.generation += 1;
                self.note_applied(xid);
                {
                    let rec = ctx.recorder();
                    if rec.is_enabled() {
                        if let Some(trace) = rec.xid_trace(xid) {
                            rec.record(
                                now,
                                trace,
                                TraceEvent::FlowModApplied {
                                    dpid: self.dp.dpid,
                                    xid,
                                },
                            );
                        }
                    }
                }
                match cmd {
                    FlowModCmd::Add(spec) => self.dp.add_flow(table_id, spec, now),
                    FlowModCmd::DeleteStrict { priority, matcher } => {
                        if let Some(entry) =
                            self.dp.delete_flow_strict(table_id, priority, &matcher)
                        {
                            let note = Message::FlowRemoved {
                                table_id,
                                priority: entry.spec.priority,
                                cookie: entry.spec.cookie,
                                reason: zen_proto::RemovedReason::Delete,
                                packets: entry.packets,
                                bytes: entry.bytes,
                            };
                            self.send(ctx, &note);
                        }
                    }
                    FlowModCmd::DeleteByCookie { cookie } => {
                        for (tid, entry) in self.dp.delete_flows_by_cookie(cookie) {
                            let note = Message::FlowRemoved {
                                table_id: tid,
                                priority: entry.spec.priority,
                                cookie: entry.spec.cookie,
                                reason: zen_proto::RemovedReason::Delete,
                                packets: entry.packets,
                                bytes: entry.bytes,
                            };
                            self.send(ctx, &note);
                        }
                    }
                }
            }
            Message::GroupMod { group_id, cmd } => {
                self.generation += 1;
                self.note_applied(xid);
                match cmd {
                    GroupModCmd::Add(desc) => self.dp.groups.add(group_id, desc),
                    GroupModCmd::Delete => {
                        self.dp.groups.remove(group_id);
                    }
                }
            }
            Message::MeterMod { meter_id, cmd } => {
                self.generation += 1;
                self.note_applied(xid);
                match cmd {
                    MeterModCmd::Add {
                        rate_bps,
                        burst_bytes,
                    } => self.dp.set_meter(meter_id, rate_bps, burst_bytes),
                    MeterModCmd::Delete => {
                        self.dp.remove_meter(meter_id);
                    }
                }
            }
            Message::BarrierRequest { xids } => {
                // Messages apply synchronously here, so ordering holds
                // by construction — but on a lossy channel the fence
                // must also say *which* of the covered mods arrived.
                let applied: Vec<u32> = xids
                    .iter()
                    .copied()
                    .filter(|x| self.applied_xids.contains(x))
                    .collect();
                self.send_with_xid(ctx, &Message::BarrierReply { applied }, xid);
            }
            Message::ResyncRequest => {
                self.send_resync(ctx);
            }
            Message::StatsRequest { kind } => {
                let body = self.collect_stats(ctx, kind);
                self.send_with_xid(ctx, &Message::StatsReply { body }, xid);
            }
            // Symmetric / controller-bound messages are ignored here.
            _ => {}
        }
    }

    fn collect_stats(&self, ctx: &Context<'_>, kind: StatsKind) -> StatsBody {
        match kind {
            StatsKind::Flow { table_id } => {
                let tables: Vec<u8> = if table_id == 0xff {
                    (0..self.dp.table_count() as u8).collect()
                } else {
                    vec![table_id.min(self.dp.table_count() as u8 - 1)]
                };
                let mut records = Vec::new();
                for tid in tables {
                    for entry in self.dp.table(tid).entries() {
                        records.push(zen_proto::FlowStats {
                            table_id: tid,
                            priority: entry.spec.priority,
                            cookie: entry.spec.cookie,
                            packets: entry.packets,
                            bytes: entry.bytes,
                        });
                    }
                }
                StatsBody::Flow(records)
            }
            StatsKind::Port { port_no } => {
                let ports: Vec<PortNo> = if port_no == 0 {
                    ctx.ports()
                } else {
                    vec![port_no]
                };
                StatsBody::Port(
                    ports
                        .into_iter()
                        .map(|p| {
                            let s = self.dp.port_stats(p);
                            zen_proto::PortStatsRec {
                                port_no: p,
                                rx_frames: s.rx_frames,
                                rx_bytes: s.rx_bytes,
                                tx_frames: s.tx_frames,
                                tx_bytes: s.tx_bytes,
                            }
                        })
                        .collect(),
                )
            }
            StatsKind::Table => StatsBody::Table(
                (0..self.dp.table_count() as u8)
                    .map(|tid| {
                        let t = self.dp.table(tid);
                        zen_proto::TableStats {
                            table_id: tid,
                            active: t.len() as u32,
                            hits: t.hits,
                            misses: t.misses,
                        }
                    })
                    .collect(),
            ),
            StatsKind::Cache => {
                let s = self.dp.cache_stats();
                StatsBody::Cache(zen_proto::CacheStatsRec {
                    micro_hits: s.micro_hits,
                    mega_hits: s.mega_hits,
                    misses: s.misses,
                    inserts: s.inserts,
                    invalidations: s.invalidations,
                    evictions: s.evictions,
                    generation: self.dp.cache_generation(),
                    entries: self.dp.cache_len() as u64,
                })
            }
        }
    }
}

impl Node for SwitchAgent {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        // Share the world's flight recorder with the embedded datapath
        // so cache-tier, group, and meter events carry trace ids.
        self.dp.set_recorder(ctx.recorder().clone());
        for port in ctx.ports() {
            self.dp.add_port(port);
            if !ctx.port_up(port) {
                self.dp.set_port_up(port, false);
            }
        }
        self.send(
            ctx,
            &Message::Hello {
                version: zen_proto::VERSION,
            },
        );
        ctx.set_timer(self.cfg.expire_interval, TIMER_EXPIRE);
        ctx.set_timer(self.cfg.echo_interval, TIMER_ECHO);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, port: PortNo, frame: &[u8]) {
        let now = ctx.now().as_nanos();
        let effects = self.dp.process(now, port, frame);
        self.run_effects(ctx, effects);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        if token == TIMER_EXPIRE {
            let removed = self.dp.expire(ctx.now().as_nanos());
            for (table_id, entry, reason) in removed {
                let note = Message::FlowRemoved {
                    table_id,
                    priority: entry.spec.priority,
                    cookie: entry.spec.cookie,
                    reason: reason.into(),
                    packets: entry.packets,
                    bytes: entry.bytes,
                };
                self.send(ctx, &note);
            }
            ctx.set_timer(self.cfg.expire_interval, TIMER_EXPIRE);
        } else if token == TIMER_ECHO {
            // Judge the session by probes still unanswered, then probe
            // again. Only receipt of a controller message (any message,
            // not just an echo reply) restores `Connected`.
            if self.outstanding >= self.cfg.miss_limit {
                self.conn = ConnState::Disconnected;
            } else if self.outstanding > 0 && self.conn == ConnState::Connected {
                self.conn = ConnState::Degraded;
            }
            self.echo_token += 1;
            self.stats.echo_sent += 1;
            self.outstanding += 1;
            let probe = Message::EchoRequest {
                token: self.echo_token,
            };
            self.send(ctx, &probe);
            ctx.set_timer(self.cfg.echo_interval, TIMER_ECHO);
        }
    }

    fn on_control(&mut self, ctx: &mut Context<'_>, from: NodeId, bytes: &[u8]) {
        if from == self.controller {
            self.note_controller_alive(ctx);
        }
        let mut at = 0;
        while at < bytes.len() {
            match decode(&bytes[at..]) {
                Ok((msg, xid, consumed)) => {
                    at += consumed;
                    self.handle_message(ctx, msg, xid);
                }
                Err(CodecError::Truncated) if at > 0 => break,
                Err(_) => {
                    self.stats.decode_errors += 1;
                    break;
                }
            }
        }
    }

    fn on_link_status(&mut self, ctx: &mut Context<'_>, port: PortNo, up: bool) {
        self.dp.set_port_up(port, up);
        let msg = Message::PortStatus {
            port: PortDesc { port_no: port, up },
        };
        self.send(ctx, &msg);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
