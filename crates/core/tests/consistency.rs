//! Epoch-versioned two-phase consistent updates: end-to-end tests.
//!
//! Covers the planner's happy path (a fabric rewrite under load commits
//! through staging → flip → drain), its failure paths (a switch cut off
//! from the controller mid-commit must not wedge the epoch flip — the
//! transaction aborts or completes after resync and the fabric
//! reconverges), and determinism (the same seed replays byte-identical,
//! faults and all).

use zen_core::apps::proactive::FABRIC_MAC;
use zen_core::apps::ProactiveFabric;
use zen_core::harness::default_host_ip as default_ip;
use zen_core::{build_fabric, build_fabric_with_hosts, Controller, FabricOptions};
use zen_sim::{Duration, FaultPlan, Host, Instant, Topology, Window, Workload, World};

/// Diamond fabric (4-switch ring, hosts at opposite corners) running
/// the proactive fabric under per-packet consistency, with a UDP
/// stream between the hosts. Returns the world and fabric handles.
fn build_diamond(seed: u64, count: u64) -> (World, zen_core::Fabric) {
    let mut topo = Topology::ring(4, zen_sim::LinkParams::default());
    topo.hosts = vec![0, 2];
    let expected_links = 2 * topo.links.len();

    let inventory = {
        let mut scratch = World::new(seed);
        build_fabric(&mut scratch, &topo, vec![], FabricOptions::default()).static_hosts()
    };

    let mut world = World::new(seed);
    let fabric = build_fabric_with_hosts(
        &mut world,
        &topo,
        vec![Box::new(
            ProactiveFabric::new(inventory, topo.switches, expected_links).per_packet(),
        )],
        FabricOptions::default(),
        |i, mac, ip| {
            let dst = default_ip(1 - i);
            Host::new(mac, ip)
                .with_static_arp(dst, FABRIC_MAC)
                .with_workload(Workload::Udp {
                    dst,
                    dst_port: 9,
                    size: 200,
                    count,
                    interval: Duration::from_millis(10),
                    start: Instant::from_secs(1),
                })
        },
    );
    (world, fabric)
}

fn fabric_app(controller: &Controller) -> &ProactiveFabric {
    controller
        .app(0)
        .as_any()
        .downcast_ref::<ProactiveFabric>()
        .expect("proactive fabric installed")
}

/// Happy path: the initial program and a mid-run rewrite (link cut)
/// both commit as two-phase epoch updates while traffic flows.
#[test]
fn two_phase_fabric_reprograms_under_load() {
    let (mut world, fabric) = build_diamond(0xC0_0001, 200);

    world.run_until(Instant::from_secs(2));
    let rx_before = world.node_as::<Host>(fabric.hosts[1]).stats.udp_rx;
    assert!(rx_before > 50, "traffic must be flowing before the cut");
    {
        let ctl = world.node_as::<Controller>(fabric.controller);
        assert!(ctl.config_epoch() >= 1, "initial program never committed");
        assert!(!ctl.txn_busy(), "planner busy long after initial commit");
    }

    // Cut one ring link mid-stream: the fabric rewrites itself as the
    // next epoch while datagrams are in flight.
    world.set_link_state(fabric.switch_links[0], false);
    world.run_until(Instant::from_secs(4));

    let ctl = world.node_as::<Controller>(fabric.controller);
    let app = fabric_app(ctl);
    assert!(app.programmed());
    assert!(
        ctl.config_epoch() >= 2,
        "rewrite never committed: epoch {}",
        ctl.config_epoch()
    );
    assert!(ctl.stats.txns_committed >= 2);
    assert_eq!(ctl.stats.txns_aborted, 0, "no faults, yet a txn aborted");
    assert!(app.txn_commits >= 2, "app never heard its commits");
    assert_eq!(app.txn_aborts, 0);
    assert!(!ctl.txn_busy(), "planner wedged after the rewrite");
    assert_eq!(ctl.pending_mods(), 0, "unacked mods left behind");

    // Reconvergence loss is bounded: at least 90% of datagrams arrive.
    let rx = world.node_as::<Host>(fabric.hosts[1]).stats.udp_rx;
    assert!(rx >= 180, "too much loss across the rewrite: {rx}/200");
}

/// Failure path: one switch loses its control channel just before the
/// rewrite is staged. Its staging mods are never acknowledged, so the
/// transaction must either abort (deadline or dirty resync) or complete
/// once the channel heals — but the planner must not wedge, and the
/// fabric must end up reprogrammed with traffic flowing.
#[test]
fn switch_cut_off_mid_commit_does_not_wedge_epoch_flip() {
    let (mut world, fabric) = build_diamond(0xC0_0002, 500);

    // Partition switch 1 from the controller across the rewrite: the
    // window opens just before the link cut announces (so the staging
    // wave at ~2s sails into the void) and holds long enough for the
    // quarantine machinery to trip.
    world.set_fault_plan(FaultPlan::default().partition(
        fabric.controller,
        fabric.switches[1],
        Window::new(Instant::from_millis(1_900), Instant::from_millis(3_500)),
    ));

    world.run_until(Instant::from_secs(2));
    world.set_link_state(fabric.switch_links[2], false);
    world.run_until(Instant::from_secs(5));
    let rx_mid = world.node_as::<Host>(fabric.hosts[1]).stats.udp_rx;
    world.run_until(Instant::from_secs(8));

    let ctl = world.node_as::<Controller>(fabric.controller);
    let app = fabric_app(ctl);
    assert!(!ctl.txn_busy(), "planner wedged by the dead switch");
    assert_eq!(ctl.pending_mods(), 0, "unacked mods left behind");
    assert!(
        ctl.config_epoch() >= 2,
        "epoch never advanced past the failure: {}",
        ctl.config_epoch()
    );
    assert!(
        ctl.stats.quarantines >= 1,
        "partition never tripped quarantine"
    );
    // The txn either aborted and was re-staged, or completed after the
    // resync; both paths end committed.
    assert!(app.txn_commits >= 2, "rewrite never committed");
    assert_eq!(
        app.txn_aborts, ctl.stats.txns_aborted,
        "abort callbacks out of step with controller stats"
    );
    assert!(app.programmed());

    // Traffic resumed after the heal and kept making progress.
    let rx = world.node_as::<Host>(fabric.hosts[1]).stats.udp_rx;
    assert!(rx > rx_mid, "traffic never resumed after heal");
    // The blackout is bounded by heal + resync/abort + re-stage (worst
    // case ~2.3 s of the 5 s stream on the affected direction).
    assert!(rx >= 250, "too much loss across the failure: {rx}/500");
}

/// Everything the soak compares between two same-seed runs. Any
/// divergence — one event, one message, one counter — fails the
/// equality below.
#[derive(Debug, PartialEq, Eq)]
struct TraceDigest {
    events_processed: u64,
    msgs_sent: u64,
    msgs_received: u64,
    flow_mods: u64,
    group_mods: u64,
    mods_retransmitted: u64,
    mods_superseded: u64,
    quarantines: u64,
    resyncs_clean: u64,
    resyncs_dirty: u64,
    txns_committed: u64,
    txns_aborted: u64,
    txns_fast: u64,
    epoch_flip_failures: u64,
    config_epoch: u64,
    installs: u64,
    rules_pushed: u64,
    txn_commits: u64,
    txn_aborts: u64,
    rx: Vec<u64>,
}

/// One soak run: the failure-path scenario plus control-plane jitter
/// and a second flap, long enough for several epochs to commit.
fn soak(seed: u64) -> TraceDigest {
    let (mut world, fabric) = build_diamond(seed, 900);
    world.set_control_jitter(Duration::from_millis(5));
    world.set_fault_plan(
        FaultPlan::default()
            .partition(
                fabric.controller,
                fabric.switches[1],
                Window::new(Instant::from_millis(1_900), Instant::from_millis(3_500)),
            )
            .control_loss(
                0.02,
                Window::new(Instant::from_secs(5), Instant::from_secs(9)),
            ),
    );
    world.schedule_link_state(fabric.switch_links[2], false, Instant::from_secs(2));
    world.schedule_link_state(fabric.switch_links[2], true, Instant::from_secs(6));
    world.run_until(Instant::from_secs(12));

    let ctl = world.node_as::<Controller>(fabric.controller);
    let app = fabric_app(ctl);
    TraceDigest {
        events_processed: world.events_processed(),
        msgs_sent: ctl.stats.msgs_sent,
        msgs_received: ctl.stats.msgs_received,
        flow_mods: ctl.stats.flow_mods,
        group_mods: ctl.stats.group_mods,
        mods_retransmitted: ctl.stats.mods_retransmitted,
        mods_superseded: ctl.stats.mods_superseded,
        quarantines: ctl.stats.quarantines,
        resyncs_clean: ctl.stats.resyncs_clean,
        resyncs_dirty: ctl.stats.resyncs_dirty,
        txns_committed: ctl.stats.txns_committed,
        txns_aborted: ctl.stats.txns_aborted,
        txns_fast: ctl.stats.txns_fast,
        epoch_flip_failures: ctl.stats.epoch_flip_failures,
        config_epoch: ctl.config_epoch(),
        installs: app.installs,
        rules_pushed: app.rules_pushed,
        txn_commits: app.txn_commits,
        txn_aborts: app.txn_aborts,
        rx: fabric
            .hosts
            .iter()
            .map(|&h| world.node_as::<Host>(h).stats.udp_rx)
            .collect(),
    }
}

/// Fixed-seed consistency soak: partition + flap + heal + control loss,
/// replayed twice. The runs must be byte-identical — same event count,
/// same message counts, same epochs, same deliveries.
#[test]
#[ignore = "soak: run explicitly (CI release-soaks lane)"]
fn consistency_soak_replays_byte_identical() {
    let a = soak(0xC0DE);
    let b = soak(0xC0DE);
    assert_eq!(a, b, "same-seed soak runs diverged");
    // And the soak actually exercised the machinery under test.
    assert!(a.config_epoch >= 3, "soak never cycled epochs: {a:?}");
    assert!(a.txns_committed >= 3);
    assert!(a.quarantines >= 1, "soak never quarantined: {a:?}");
    assert!(
        a.rx.iter().all(|&r| r >= 500),
        "soak traffic starved: {a:?}"
    );
}
