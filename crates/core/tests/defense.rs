//! Control-plane self-defense soaks: hostile workloads from `zen-sim`
//! against the metered/admitted/damped control plane.
//!
//! The headline test is a fixed-seed PACKET_IN-flood soak: one rogue
//! edge host floods unknown-destination frames at 10x the innocent
//! aggregate rate while two innocent hosts exchange timestamped UDP
//! probes over narrow access links. Undefended, every flood frame
//! punts, the controller obediently floods it back out, and the
//! innocent access links black-hole for the duration of the attack.
//! Defended (agent punt meter + controller admission + push-back), the
//! rogue is shed at the switch, rationed at the controller, and finally
//! pinned by a drop rule on its ingress port — innocent loss stays
//! bounded and the control channel stays healthy (zero lost acks).
//!
//! Every run is a pure function of the seed, so the defended run is
//! executed twice and every deterministic observable must agree — the
//! replay property the recorder/trace tooling depends on.
//!
//! The flood soak is ignored by default (it simulates seconds of
//! fabric time and is sized for release builds); CI runs it explicitly:
//!
//! ```text
//! cargo test --release -p zen-core --test defense -- --ignored
//! ```

use zen_core::apps::L2Learning;
use zen_core::{
    build_fabric_with_hosts, AdmissionConfig, Controller, Fabric, FabricOptions, PuntMeterConfig,
    SwitchAgent,
};
use zen_sim::{
    Attack, Duration, Host, HostileConfig, HostileHost, HostileStats, Instant, LinkParams,
    Topology, Workload, World,
};
use zen_wire::{EthernetAddress, Ipv4Address};

/// The fixed seed: every number asserted below reproduces exactly by
/// rerunning with it.
const SOAK_SEED: u64 = 0xDEFE_2E18;

/// Innocent probe interval (each of the two hosts). 2 ms each way is a
/// 1000 pps innocent aggregate.
const PROBE_INTERVAL: Duration = Duration::from_millis(2);

/// Probes sent per innocent host. The last probe leaves at
/// 100 ms + 1899 * 2 ms = 3.898 s, inside the 4 s run.
const PROBE_COUNT: u64 = 1_900;

/// Rogue flood inter-frame gap: 100 us = 10_000 pps, 10x the innocent
/// aggregate punt-capable rate.
const FLOOD_INTERVAL: Duration = Duration::from_micros(100);

/// Attack window: [1 s, 3 s) of fabric time.
const ATTACK_START: Instant = Instant::from_millis(1_000);
const ATTACK_STOP: Instant = Instant::from_millis(3_000);

/// Fabric time simulated per run.
const RUN: Instant = Instant::from_millis(4_000);

/// Rogue MAC — fixed (not rotating), so controller push-back can pin it.
const ROGUE_MAC: EthernetAddress = EthernetAddress([0x66, 0x66, 0x66, 0x00, 0x00, 0x01]);

/// Everything deterministic a defended run produces; two runs from the
/// same seed must agree exactly.
#[derive(Debug, PartialEq, Eq)]
struct ReplayDigest {
    /// Per-switch (packet_ins, flow_mods, packet_outs, punts_metered).
    agents: Vec<(u64, u64, u64, u64)>,
    /// Controller counters that matter to the defense path.
    ctl: [u64; 10],
    /// Per-innocent-host (udp_tx, udp_rx, latency samples).
    hosts: Vec<(u64, u64, u64)>,
    /// (flows_installed, floods, flap_events, flaps_damped).
    l2: (u64, u64, u64, u64),
    rogue: HostileStats,
}

struct Outcome {
    digest: ReplayDigest,
    /// Probes lost per innocent host (tx minus rx at its peer).
    lost: Vec<u64>,
    pushbacks: u64,
    punts_metered: u64,
    punts_deferred: u64,
    msgs_received: u64,
    mods_failed: u64,
    decode_errors: u64,
}

/// Build the two-switch fabric, attach the rogue to switch 0, run to
/// `RUN`, and collect every observable.
fn run_flood(defended: bool) -> Outcome {
    let mut world = World::new(SOAK_SEED);

    // Narrow access links: a flood amplified by L2 PACKET_OUT flooding
    // saturates these, which is exactly the starvation under test.
    let host_link = LinkParams {
        latency: Duration::from_micros(10),
        bandwidth_bps: 10_000_000,
        queue_bytes: 32 * 1024,
    };
    // The rogue gets a fat pipe: its own access link must not be the
    // thing that rate-limits the attack.
    let rogue_link = LinkParams {
        latency: Duration::from_micros(10),
        bandwidth_bps: 100_000_000,
        queue_bytes: 64 * 1024,
    };

    let topo = Topology::line(2, LinkParams::default())
        .with_hosts_at(0, 1)
        .with_hosts_at(1, 1);

    let mut opts = FabricOptions {
        host_link,
        ..FabricOptions::default()
    };
    if defended {
        // Burst sized well under the pre-push-back punt volume so the
        // meter demonstrably engages before the drop rule lands.
        opts.agent_cfg.punt_meter = Some(PuntMeterConfig {
            rate_pps: 2_000,
            burst: 64,
        });
        opts.controller_cfg.admission = Some(AdmissionConfig {
            rate_pps: 500,
            burst: 128,
            queue_cap: 256,
            pushback_threshold: 100,
            pushback_window: Duration::from_millis(500),
            pushback_hold: Duration::from_millis(2_000),
            ..AdmissionConfig::default()
        });
    }

    let peer_ip = |i: usize| zen_core::harness::default_host_ip(1 - i);
    let peer_mac = |i: usize| zen_core::harness::default_host_mac(1 - i);
    let fabric: Fabric = build_fabric_with_hosts(
        &mut world,
        &topo,
        vec![Box::new(L2Learning::new())],
        opts,
        |i, mac, ip| {
            Host::new(mac, ip)
                .with_gratuitous_arp()
                .with_static_arp(peer_ip(i), peer_mac(i))
                .with_workload(Workload::Udp {
                    dst: peer_ip(i),
                    dst_port: 9,
                    // Same frame size as the flood: byte-granular
                    // drop-tail would otherwise favor small probes and
                    // mask the starvation.
                    size: 600,
                    count: PROBE_COUNT,
                    interval: PROBE_INTERVAL,
                    start: Instant::from_millis(100),
                })
        },
    );

    let mut rogue_cfg = HostileConfig::new(ROGUE_MAC, Ipv4Address::new(10, 0, 9, 9));
    rogue_cfg.attack = Attack::PacketInFlood {
        interval: FLOOD_INTERVAL,
        rotate_src: false,
        payload_len: 600,
    };
    rogue_cfg.attack_start = ATTACK_START;
    rogue_cfg.attack_stop = Some(ATTACK_STOP);
    let rogue = world.add_node(Box::new(HostileHost::new(rogue_cfg)));
    world.connect(rogue, fabric.switches[0], rogue_link);

    world.run_until(RUN);

    let mut agents = Vec::new();
    for &sw in &fabric.switches {
        let s = world.node_as::<SwitchAgent>(sw).stats;
        agents.push((s.packet_ins, s.flow_mods, s.packet_outs, s.punts_metered));
    }
    let ctl = world.node_as::<Controller>(fabric.controller);
    let cs = ctl.stats;
    let l2 = ctl.find_app::<L2Learning>().expect("L2 app is installed");
    let l2_digest = (
        l2.flows_installed,
        l2.floods,
        l2.flap_events,
        l2.flaps_damped,
    );
    let rogue_stats = world.node_as::<HostileHost>(rogue).stats;

    let mut hosts = Vec::new();
    let mut lost = Vec::new();
    for i in 0..fabric.hosts.len() {
        let h = world.node_as::<Host>(fabric.hosts[i]);
        hosts.push((
            h.stats.udp_tx,
            h.stats.udp_rx,
            h.stats.udp_latency.count() as u64,
        ));
        // Host i's loss is measured at its peer (1 - i).
        let peer = world.node_as::<Host>(fabric.hosts[1 - i]);
        let delivered = peer
            .stats
            .udp_rx_per_src
            .get(&fabric.host_ips[i])
            .copied()
            .unwrap_or(0);
        let h = world.node_as::<Host>(fabric.hosts[i]);
        lost.push(h.stats.udp_tx - delivered.min(h.stats.udp_tx));
    }

    Outcome {
        digest: ReplayDigest {
            agents,
            ctl: [
                cs.packet_ins,
                cs.flow_mods,
                cs.packet_outs,
                cs.punts_admitted,
                cs.punts_deferred,
                cs.punts_drained,
                cs.punts_shed,
                cs.pushbacks_installed,
                cs.mods_acked,
                cs.mods_failed,
            ],
            hosts,
            l2: l2_digest,
            rogue: rogue_stats,
        },
        lost,
        pushbacks: cs.pushbacks_installed,
        punts_metered: world
            .node_as::<SwitchAgent>(fabric.switches[0])
            .stats
            .punts_metered,
        punts_deferred: cs.punts_deferred,
        msgs_received: cs.msgs_received,
        mods_failed: cs.mods_failed,
        decode_errors: cs.decode_errors,
    }
}

#[test]
#[ignore = "multi-second fabric soak; CI runs it in release explicitly"]
fn packet_in_flood_soak_bounded_blackhole_and_replay() {
    let defended = run_flood(true);

    // Every innocent probe was sent.
    for &(tx, _, _) in &defended.digest.hosts {
        assert_eq!(tx, PROBE_COUNT, "innocent workload did not complete");
    }
    // The rogue actually flooded for the whole window.
    assert!(
        defended.digest.rogue.attack_frames >= 19_000,
        "rogue under-delivered: {} attack frames",
        defended.digest.rogue.attack_frames
    );

    // (a) Bounded black-hole: each lost probe represents PROBE_INTERVAL
    // of outage for that host pair. 250 probes = 0.5 s across a 2 s
    // attack — the budget covers the pre-push-back melt plus margin.
    for (i, &lost) in defended.lost.iter().enumerate() {
        assert!(
            lost <= 250,
            "innocent host {i} black-holed: {lost} probes lost (~{} ms) under defenses",
            lost * PROBE_INTERVAL.as_nanos() / 1_000_000,
        );
    }

    // The defense layers all actually engaged.
    assert!(
        defended.punts_metered >= 100,
        "agent punt meter never engaged ({} shed)",
        defended.punts_metered
    );
    assert!(
        defended.punts_deferred >= 100,
        "controller admission never deferred ({})",
        defended.punts_deferred
    );
    assert!(
        defended.pushbacks >= 1,
        "no push-back rule pinned the rogue"
    );

    // (b) Zero lost acks: every accepted mod was barrier-acked despite
    // the storm, and the channel stayed clean.
    assert_eq!(defended.mods_failed, 0, "mods lost under attack");
    assert_eq!(defended.decode_errors, 0, "decode errors under attack");

    // Contrast run: defenses off, same seed. The attack must actually
    // bite — innocents starve and the controller eats the whole flood —
    // otherwise the assertions above are vacuous.
    let undefended = run_flood(false);
    assert_eq!(undefended.pushbacks, 0);
    assert_eq!(undefended.punts_metered, 0);
    let worst_defended = defended.lost.iter().copied().max().unwrap_or(0);
    let worst_undefended = undefended.lost.iter().copied().max().unwrap_or(0);
    assert!(
        worst_undefended >= 300,
        "undefended run did not starve innocents (worst loss {worst_undefended})"
    );
    assert!(
        worst_undefended >= 2 * worst_defended.max(1),
        "defenses did not materially help: undefended {worst_undefended} vs defended {worst_defended}"
    );
    assert!(
        undefended.msgs_received > 2 * defended.msgs_received,
        "admission + metering did not bound controller load: {} vs {}",
        undefended.msgs_received,
        defended.msgs_received
    );

    // (c) Byte-identical replay of the defended scenario.
    let replay = run_flood(true);
    assert_eq!(
        defended.digest, replay.digest,
        "defended soak diverged on replay (seed {SOAK_SEED:#x})"
    );
}

/// A MAC-flapping rogue claims an innocent host's source MAC from the
/// wrong port while the victim's own punted traffic keeps re-claiming
/// it. The L2 flap damper must trip, freeze the entry, and the
/// victim's established data-plane flow must keep delivering.
#[test]
fn mac_flap_damper_trips_and_traffic_survives() {
    let mut world = World::new(SOAK_SEED ^ 1);

    let topo = Topology::line(2, LinkParams::default())
        .with_hosts_at(0, 1)
        .with_hosts_at(1, 1);
    let victim_mac = zen_core::harness::default_host_mac(0);
    let phantom = Ipv4Address::new(10, 0, 3, 3);
    let fabric = build_fabric_with_hosts(
        &mut world,
        &topo,
        vec![Box::new(L2Learning::new())],
        FabricOptions::default(),
        |i, mac, ip| {
            let host = Host::new(mac, ip).with_gratuitous_arp();
            if i == 0 {
                // The victim keeps punting (unknown unicast destination),
                // so its source learns keep competing with the flapper.
                host.with_static_arp(phantom, EthernetAddress([0x6E, 0, 0, 0, 0, 0x7F]))
                    .with_workload(Workload::Udp {
                        dst: phantom,
                        dst_port: 9,
                        size: 40,
                        count: 380,
                        interval: Duration::from_millis(5),
                        start: Instant::from_millis(100),
                    })
            } else {
                // The measured innocent flow: host 1 -> victim.
                host.with_static_arp(zen_core::harness::default_host_ip(0), victim_mac)
                    .with_workload(Workload::Udp {
                        dst: zen_core::harness::default_host_ip(0),
                        dst_port: 9,
                        size: 64,
                        count: 360,
                        interval: Duration::from_millis(5),
                        start: Instant::from_millis(100),
                    })
            }
        },
    );

    let mut rogue_cfg = HostileConfig::new(
        EthernetAddress([0x66, 0, 0, 0, 0, 2]),
        Ipv4Address::new(10, 0, 9, 8),
    );
    rogue_cfg.attack = Attack::MacFlap {
        victim_mac,
        interval: Duration::from_millis(5),
    };
    rogue_cfg.attack_start = Instant::from_millis(500);
    let rogue = world.add_node(Box::new(HostileHost::new(rogue_cfg)));
    world.connect(rogue, fabric.switches[0], LinkParams::default());

    world.run_until(Instant::from_millis(2_000));

    let ctl = world.node_as::<Controller>(fabric.controller);
    let l2 = ctl.find_app::<L2Learning>().expect("L2 app is installed");
    assert!(l2.flap_events >= 1, "damper never tripped");
    assert!(
        l2.flaps_damped >= 50,
        "damper barely engaged: {} damped learns",
        l2.flaps_damped
    );
    assert!(
        l2.is_damped(0, victim_mac),
        "victim's entry is not frozen at run end"
    );
    assert_eq!(ctl.stats.mods_failed, 0, "mods lost during flapping");

    // The established host-1 -> victim flow kept the data plane
    // delivering regardless of the control-plane tug-of-war.
    let victim = world.node_as::<Host>(fabric.hosts[0]);
    let delivered = victim
        .stats
        .udp_rx_per_src
        .get(&fabric.host_ips[1])
        .copied()
        .unwrap_or(0);
    assert!(
        delivered >= 340,
        "victim lost traffic while damped: {delivered}/360 delivered"
    );
}

/// An ARP broadcast storm with spoofed sources: the agent punt meter
/// plus controller admission must bound what reaches the controller;
/// undefended, the controller eats the entire storm.
#[test]
fn arp_storm_bounded_by_punt_meter_and_admission() {
    let run = |defended: bool| -> (u64, u64, u64) {
        let mut world = World::new(SOAK_SEED ^ 2);
        let topo = Topology::line(2, LinkParams::default())
            .with_hosts_at(0, 1)
            .with_hosts_at(1, 1);
        let mut opts = FabricOptions::default();
        if defended {
            opts.agent_cfg.punt_meter = Some(PuntMeterConfig {
                rate_pps: 100,
                burst: 32,
            });
            opts.controller_cfg.admission = Some(AdmissionConfig {
                rate_pps: 100,
                burst: 32,
                // Spoofed sources rotate per frame, so push-back cannot
                // pin one MAC; the meters are the defense here.
                pushback_threshold: 0,
                ..AdmissionConfig::default()
            });
        }
        let fabric = build_fabric_with_hosts(
            &mut world,
            &topo,
            vec![Box::new(L2Learning::new())],
            opts,
            |_i, mac, ip| Host::new(mac, ip).with_gratuitous_arp(),
        );
        let mut rogue_cfg = HostileConfig::new(
            EthernetAddress([0x66, 0, 0, 0, 0, 3]),
            Ipv4Address::new(10, 0, 9, 7),
        );
        rogue_cfg.attack = Attack::ArpStorm {
            interval: Duration::from_millis(1),
            spoof_sources: true,
        };
        rogue_cfg.attack_start = Instant::from_millis(200);
        rogue_cfg.attack_stop = Some(Instant::from_millis(1_200));
        let rogue = world.add_node(Box::new(HostileHost::new(rogue_cfg)));
        world.connect(rogue, fabric.switches[0], LinkParams::default());
        world.run_until(Instant::from_millis(1_500));

        let agent0 = world.node_as::<SwitchAgent>(fabric.switches[0]).stats;
        let cs = world.node_as::<Controller>(fabric.controller).stats;
        assert_eq!(cs.decode_errors, 0);
        assert_eq!(cs.mods_failed, 0);
        (cs.packet_ins, agent0.punts_metered, cs.punts_shed)
    };

    let (def_ins, def_metered, _) = run(true);
    let (undef_ins, undef_metered, undef_shed) = run(false);
    assert_eq!(undef_metered, 0);
    assert_eq!(undef_shed, 0);
    assert!(
        undef_ins >= 900,
        "storm never reached the controller undefended ({undef_ins} punts)"
    );
    assert!(
        def_metered >= 500,
        "agent meter shed too little of the storm ({def_metered})"
    );
    assert!(
        def_ins * 3 < undef_ins,
        "defenses did not bound controller punts: {def_ins} defended vs {undef_ins} undefended"
    );
}
