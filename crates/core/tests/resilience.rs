//! Controller-loss survivability: keepalive state machine, agent
//! connection-loss policies, reliable (barrier-acknowledged) flow-mod
//! delivery over lossy control channels, quarantine, and diff-resync
//! on reconnect — all driven through the fault-injection substrate.

use zen_core::apps::proactive::FABRIC_MAC;
use zen_core::apps::ProactiveFabric;
use zen_core::harness::{build_fabric, build_fabric_with_hosts, default_host_mac, FabricOptions};
use zen_core::{AgentConfig, ConnLossPolicy, ConnState, Controller, SwitchAgent};
use zen_sim::{Duration, FaultPlan, Host, Instant, LinkParams, Topology, Window, Workload, World};
use zen_wire::Ipv4Address;

fn default_ip(i: usize) -> Ipv4Address {
    zen_core::harness::default_host_ip(i)
}

fn secs(s: u64) -> Instant {
    Instant::from_secs(s)
}

fn ms(v: u64) -> Instant {
    Instant::from_millis(v)
}

/// A ring fabric with hosts on switches 0 and 2 and a proactive app,
/// host 0 probing host 1 (the far side) over the fabric gateway.
fn ring_fabric(
    world: &mut World,
    opts: FabricOptions,
    workload: Workload,
) -> zen_core::harness::Fabric {
    let mut topo = Topology::ring(4, LinkParams::default());
    topo.hosts = vec![0, 2];
    let inventory = {
        let mut scratch = World::new(99);
        build_fabric(&mut scratch, &topo, vec![], FabricOptions::default()).static_hosts()
    };
    build_fabric_with_hosts(
        world,
        &topo,
        vec![Box::new(ProactiveFabric::new(
            inventory,
            topo.switches,
            2 * topo.links.len(),
        ))],
        opts,
        move |i, mac, ip| {
            let host = Host::new(mac, ip).with_static_arp(default_ip(1 - i), FABRIC_MAC);
            if i == 0 {
                host.with_workload(workload.clone())
            } else {
                host
            }
        },
    )
}

#[test]
fn keepalive_quarantine_and_resync_cycle() {
    // Partition the control channel to one transit switch for 600 ms.
    // The agent must walk Connected -> Disconnected and back, the
    // controller must quarantine it (routing around it) and lift the
    // quarantine through the HelloResync handshake when it returns.
    let mut world = World::new(21);
    let fabric = ring_fabric(
        &mut world,
        FabricOptions::default(),
        Workload::Ping {
            dst: default_ip(1),
            count: 30,
            interval: Duration::from_millis(100),
            start: ms(500),
        },
    );
    let victim_node = fabric.switches[1];
    world.set_fault_plan(FaultPlan::default().control_burst(
        fabric.controller,
        victim_node,
        Window::new(ms(1500), ms(2100)),
    ));

    // Mid-outage: the agent noticed (missed echoes) and the controller
    // quarantined the silent switch.
    world.run_until(ms(2050));
    let agent = world.node_as::<SwitchAgent>(victim_node);
    assert_eq!(agent.conn_state(), ConnState::Disconnected);
    let controller = world.node_as::<Controller>(fabric.controller);
    assert!(
        controller.view.is_quarantined(1),
        "silent agent not quarantined; quarantines={}",
        controller.stats.quarantines
    );

    // Post-heal: reconnected, unquarantined, resynced.
    world.run_until(secs(4));
    let agent = world.node_as::<SwitchAgent>(victim_node);
    assert_eq!(agent.conn_state(), ConnState::Connected);
    assert!(agent.stats.reconnects >= 1);
    let controller = world.node_as::<Controller>(fabric.controller);
    assert!(controller.view.quarantined().is_empty());
    assert!(
        controller.stats.resyncs_clean + controller.stats.resyncs_dirty >= 1,
        "no resync handshake completed"
    );
    assert_eq!(controller.pending_mods(), 0, "mods stuck pending");
    assert_eq!(controller.stats.mods_failed, 0);
    // The ring has a disjoint path around the quarantined switch, so
    // probes keep flowing throughout.
    let h0 = world.node_as::<Host>(fabric.hosts[0]);
    assert!(
        h0.stats.ping_rtts.count() >= 27,
        "pings lost across the outage: {}",
        h0.stats.ping_rtts.count()
    );
}

/// One switch, two hosts, an empty app chain (nothing ever installs
/// flows), and a permanent control partition from t=500ms. Every data
/// packet is a table miss, so delivery depends entirely on the agent's
/// connection-loss policy.
fn standalone_run(policy: ConnLossPolicy) -> (u64, zen_core::agent::AgentStats) {
    let topo = Topology::line(1, LinkParams::default()).with_hosts_at(0, 2);
    let mut world = World::new(31);
    let opts = FabricOptions {
        agent_cfg: AgentConfig {
            policy,
            ..AgentConfig::default()
        },
        ..FabricOptions::default()
    };
    let fabric = build_fabric_with_hosts(&mut world, &topo, vec![], opts, |i, mac, ip| {
        let host = Host::new(mac, ip).with_static_arp(default_ip(1 - i), default_host_mac(1 - i));
        if i == 0 {
            host.with_workload(Workload::Udp {
                dst: default_ip(1),
                dst_port: 9,
                size: 100,
                count: 200,
                interval: Duration::from_millis(1),
                start: secs(2),
            })
        } else {
            host
        }
    });
    world.set_fault_plan(FaultPlan::default().control_burst(
        fabric.controller,
        fabric.switches[0],
        Window::new(ms(500), Instant::from_nanos(u64::MAX)),
    ));
    world.run_until(secs(3));
    let rx = world.node_as::<Host>(fabric.hosts[1]).stats.udp_rx;
    let stats = world.node_as::<SwitchAgent>(fabric.switches[0]).stats;
    (rx, stats)
}

#[test]
fn fail_standalone_floods_misses_while_disconnected() {
    let (rx, stats) = standalone_run(ConnLossPolicy::FailStandalone);
    assert_eq!(rx, 200, "standalone flooding should deliver every probe");
    assert!(stats.standalone_floods >= 200);
    assert_eq!(stats.disconnected_drops, 0);
}

#[test]
fn fail_secure_drops_misses_while_disconnected() {
    let (rx, stats) = standalone_run(ConnLossPolicy::FailSecure);
    assert_eq!(rx, 0, "fail-secure must not forward unmatched traffic");
    assert!(stats.disconnected_drops >= 200);
    assert_eq!(stats.standalone_floods, 0);
}

#[test]
fn flow_mods_survive_lossy_control_channel() {
    // 20% uniform control loss while the fabric is being programmed.
    // Barrier-acknowledged delivery must retransmit until every mod is
    // acked; after the loss window, the fabric must be fully working.
    let mut world = World::new(41);
    let fabric = ring_fabric(
        &mut world,
        FabricOptions::default(),
        Workload::Ping {
            dst: default_ip(1),
            count: 20,
            interval: Duration::from_millis(20),
            start: ms(3500),
        },
    );
    world.set_fault_plan(FaultPlan::default().control_loss(0.20, Window::new(ms(0), secs(3))));
    world.run_until(secs(5));

    let controller = world.node_as::<Controller>(fabric.controller);
    assert!(
        controller.stats.mods_retransmitted > 0,
        "a 20% lossy channel must force retransmissions"
    );
    assert_eq!(controller.pending_mods(), 0, "unacked mods left pending");
    assert_eq!(controller.stats.mods_failed, 0, "mods permanently lost");
    assert!(controller.view.quarantined().is_empty());
    let h0 = world.node_as::<Host>(fabric.hosts[0]);
    assert_eq!(
        h0.stats.ping_rtts.count(),
        20,
        "fabric incomplete after lossy programming"
    );
}

#[test]
fn link_max_age_expiry_speed_follows_config() {
    // Satellite: end-to-end silent-failure detection through the
    // configurable `link_max_age`. A silently cut link (no PORT_STATUS)
    // is only detectable by LLDP confirmations drying up; a tighter age
    // bound must tear it from the view within that bound plus one tick.
    let tight = ControllerCfgProbe::run(Duration::from_millis(100));
    let loose = ControllerCfgProbe::run(Duration::from_millis(400));
    assert!(
        tight.detected_after <= Duration::from_millis(200),
        "100ms max-age took {:?} to expire the link",
        tight.detected_after
    );
    assert!(
        loose.detected_after > tight.detected_after,
        "expiry must scale with link_max_age ({:?} !> {:?})",
        loose.detected_after,
        tight.detected_after
    );
    // Traffic resumed after reprogramming in both runs.
    assert!(tight.probes_received >= 1700, "{}", tight.probes_received);
    assert!(loose.probes_received >= 1400, "{}", loose.probes_received);
}

struct ControllerCfgProbe {
    detected_after: Duration,
    probes_received: u64,
}

impl ControllerCfgProbe {
    fn run(link_max_age: Duration) -> ControllerCfgProbe {
        let mut world = World::new(51);
        let opts = FabricOptions {
            controller_cfg: zen_core::ControllerConfig {
                link_max_age,
                ..zen_core::ControllerConfig::default()
            },
            ..FabricOptions::default()
        };
        let fabric = ring_fabric(
            &mut world,
            opts,
            Workload::Udp {
                dst: default_ip(1),
                dst_port: 9,
                size: 100,
                count: 2000,
                interval: Duration::from_millis(1),
                start: secs(1),
            },
        );
        let cut_at = secs(2);
        // Cut the busiest link silently after traffic has settled.
        world.run_until(cut_at);
        let victim = fabric
            .switch_links
            .iter()
            .copied()
            .max_by_key(|&l| {
                let link = world.link(l);
                link.ab.tx_bytes + link.ba.tx_bytes
            })
            .unwrap();
        world.schedule_link_state_silent(victim, false, cut_at);

        // Step until the controller's view drops below the full 8
        // directed links.
        let mut detected_after = Duration::from_secs(10);
        for step in 1..200 {
            let t = Instant::from_millis(2000 + 5 * step);
            world.run_until(t);
            let links = world
                .node_as::<Controller>(fabric.controller)
                .view
                .links
                .len();
            if links < 8 {
                detected_after = t.duration_since(cut_at);
                break;
            }
        }
        world.run_until(secs(5));
        let probes_received = world.node_as::<Host>(fabric.hosts[1]).stats.udp_rx;
        ControllerCfgProbe {
            detected_after,
            probes_received,
        }
    }
}
