//! The replicated intent log end to end: ACL policy riding consensus
//! across a controller cluster, leader failover without losing
//! intents, mastership pins overriding the hash assignment, and the
//! digest gossip mode converging identically to suffix resend while
//! sending strictly fewer east-west entries.

use std::any::Any;

use zen_cluster::GossipMode;
use zen_core::apps::acl::ACL_COOKIE;
use zen_core::apps::proactive::FABRIC_MAC;
use zen_core::apps::{Acl, ProactiveFabric};
use zen_core::harness::{build_cluster_fabric_with_hosts, build_fabric, Fabric, FabricOptions};
use zen_core::{App, Controller, Ctl, SwitchAgent};
use zen_dataplane::FlowMatch;
use zen_proto::Intent;
use zen_sim::{Duration, FaultPlan, Host, Instant, LinkParams, Topology, Window, Workload, World};
use zen_wire::Ipv4Address;

fn default_ip(i: usize) -> Ipv4Address {
    zen_core::harness::default_host_ip(i)
}

fn secs(s: u64) -> Instant {
    Instant::from_secs(s)
}

fn ms(v: u64) -> Instant {
    Instant::from_millis(v)
}

fn deny_udp_9() -> FlowMatch {
    FlowMatch::ANY.with_ip_proto(17).with_l4_dst(9)
}

/// A test app that proposes one intent at a scheduled instant —
/// exercising `propose_intent` from an arbitrary replica while the
/// cluster is mid-flight.
struct Proposer {
    at: Instant,
    intent: Option<Intent>,
    /// Commit confirmations received back (owner callback).
    pub confirmed: u64,
}

impl Proposer {
    fn new(at: Instant, intent: Intent) -> Proposer {
        Proposer {
            at,
            intent: Some(intent),
            confirmed: 0,
        }
    }

    /// A proposer that never proposes (for replicas that only observe).
    fn idle() -> Proposer {
        Proposer {
            at: Instant::ZERO,
            intent: None,
            confirmed: 0,
        }
    }
}

impl App for Proposer {
    fn name(&self) -> &'static str {
        "proposer"
    }

    fn tick(&mut self, ctl: &mut Ctl<'_, '_>) {
        if ctl.now() >= self.at {
            if let Some(intent) = self.intent.take() {
                ctl.propose_intent("proposer", intent);
            }
        }
    }

    fn on_update_committed(&mut self, _ctl: &mut Ctl<'_, '_>, owner: &'static str, _token: u64) {
        if owner == "proposer" {
            self.confirmed += 1;
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// A test app that proposes a batch of intents at a scheduled instant
/// — bulk traffic for pushing the intent log's compaction floor.
struct BatchProposer {
    at: Instant,
    intents: Vec<Intent>,
}

impl App for BatchProposer {
    fn name(&self) -> &'static str {
        "batch"
    }

    fn tick(&mut self, ctl: &mut Ctl<'_, '_>) {
        if ctl.now() >= self.at {
            for intent in std::mem::take(&mut self.intents) {
                ctl.propose_intent("batch", intent);
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// A 4-switch ring, hosts on 0 and 2, `n` replicas each running
/// ProactiveFabric + Acl + Proposer. Replica `acl_on` seeds the deny;
/// replica `propose_on` (if any) fires `intent` at `propose_at`;
/// replica `batch_on` (if any) fires its whole intent batch at once.
#[allow(clippy::too_many_arguments)]
fn consensus_fabric(
    world: &mut World,
    n: usize,
    gossip: GossipMode,
    acl_on: Option<usize>,
    propose_on: Option<(usize, Instant, Intent)>,
    batch_on: Option<(usize, Instant, Vec<Intent>)>,
    workload: Option<Workload>,
) -> Fabric {
    let mut topo = Topology::ring(4, LinkParams::default());
    topo.hosts = vec![0, 2];
    let inventory = {
        let mut scratch = World::new(99);
        build_fabric(&mut scratch, &topo, vec![], FabricOptions::default()).static_hosts()
    };
    let opts = FabricOptions {
        n_controllers: n,
        cluster_gossip: gossip,
        ..FabricOptions::default()
    };
    let expected_switches = topo.switches;
    let expected_links = 2 * topo.links.len();
    build_cluster_fabric_with_hosts(
        world,
        &topo,
        |i| {
            let denies = if acl_on == Some(i) {
                vec![deny_udp_9()]
            } else {
                vec![]
            };
            let proposer = match &propose_on {
                Some((r, at, intent)) if *r == i => Proposer::new(*at, intent.clone()),
                _ => Proposer::idle(),
            };
            let batch = match &batch_on {
                Some((r, at, intents)) if *r == i => BatchProposer {
                    at: *at,
                    intents: intents.clone(),
                },
                _ => BatchProposer {
                    at: Instant::ZERO,
                    intents: Vec::new(),
                },
            };
            vec![
                Box::new(Acl::new(denies)),
                Box::new(ProactiveFabric::new(
                    inventory.clone(),
                    expected_switches,
                    expected_links,
                )),
                Box::new(proposer),
                Box::new(batch),
            ]
        },
        opts,
        move |i, mac, ip| {
            let host = Host::new(mac, ip).with_static_arp(default_ip(1 - i), FABRIC_MAC);
            match (&workload, i) {
                (Some(w), 0) => host.with_workload(w.clone()),
                _ => host,
            }
        },
    )
}

fn acl_committed(world: &World, fabric: &Fabric, replica: usize) -> Vec<FlowMatch> {
    world
        .node_as::<Controller>(fabric.controllers[replica])
        .find_app::<Acl>()
        .expect("acl app present")
        .committed()
        .to_vec()
}

/// Number of ACL-cookie entries installed in switch `i`'s table 0.
fn acl_rules_installed(world: &World, fabric: &Fabric, i: usize) -> usize {
    world
        .node_as::<SwitchAgent>(fabric.switches[i])
        .dp
        .table(0)
        .entries()
        .filter(|e| e.spec.cookie == ACL_COOKIE)
        .count()
}

#[test]
fn acl_intent_commits_on_every_replica_and_programs_all_switches() {
    let mut world = World::new(41);
    let fabric = consensus_fabric(
        &mut world,
        3,
        GossipMode::Digest,
        Some(0),
        None,
        None,
        Some(Workload::Udp {
            dst: default_ip(1),
            dst_port: 9, // denied network-wide
            size: 64,
            count: 20,
            interval: Duration::from_millis(20),
            start: secs(2),
        }),
    );
    world.run_until(secs(3));

    // One proposal, committed everywhere, in the same order.
    for r in 0..3 {
        assert_eq!(
            acl_committed(&world, &fabric, r),
            vec![deny_udp_9()],
            "replica {r} did not commit the deny"
        );
        let ctl = world.node_as::<Controller>(fabric.controllers[r]);
        assert!(
            ctl.stats.intents_committed >= 1,
            "replica {r} observed no commits"
        );
        let acl = ctl.find_app::<Acl>().unwrap();
        assert_eq!(acl.intents_proposed, u64::from(r == 0));
    }
    // Every switch carries the deny, pushed by whichever replica
    // masters it.
    for i in 0..fabric.switches.len() {
        assert_eq!(
            acl_rules_installed(&world, &fabric, i),
            1,
            "switch {i} missing the committed deny"
        );
    }
    // The deny is live in the data plane: none of the denied probes
    // arrived.
    let h1 = world.node_as::<Host>(fabric.hosts[1]);
    assert_eq!(h1.stats.udp_rx, 0, "denied traffic leaked through");
}

#[test]
fn leader_killed_mid_commit_loses_no_intents() {
    let mut world = World::new(43);
    // Replica 2 proposes the deny at t=1.95s; the consensus leader
    // (replica 0, the minimum live index) is killed at t=2s — with a
    // 50 ms controller tick the proposal is in flight or freshly
    // appended at the leader, uncommitted. The proposer must carry it
    // across the failover to the new leader.
    let fabric = consensus_fabric(
        &mut world,
        3,
        GossipMode::Digest,
        None,
        Some((
            2,
            ms(1950),
            Intent::AclDeny {
                priority: 900,
                matcher: deny_udp_9(),
                install: true,
            },
        )),
        None,
        None,
    );
    world.run_until(secs(2));
    world.set_fault_plan(
        FaultPlan::default().isolate(fabric.controllers[0], Window::new(secs(2), ms(3500))),
    );
    world.run_until(secs(6));

    // The intent committed on the survivors despite the leader dying
    // mid-commit, and the healed victim caught up too.
    for r in 0..3 {
        assert_eq!(
            acl_committed(&world, &fabric, r),
            vec![deny_udp_9()],
            "replica {r} lost the in-flight intent"
        );
    }
    // Exactly-once: the proposer saw one owner confirmation, and every
    // switch carries exactly one copy of the deny.
    let proposer = world
        .node_as::<Controller>(fabric.controllers[2])
        .find_app::<Proposer>()
        .unwrap();
    assert_eq!(
        proposer.confirmed, 1,
        "commit confirmed {} times",
        proposer.confirmed
    );
    for i in 0..fabric.switches.len() {
        assert_eq!(
            acl_rules_installed(&world, &fabric, i),
            1,
            "switch {i} deny count wrong after failover"
        );
    }
}

#[test]
fn mastership_pin_intent_overrides_hash_assignment() {
    let mut world = World::new(47);
    // The hash assignment gives switch 0 to replica 0. Pin it to
    // replica 2 through the intent log.
    let fabric = consensus_fabric(
        &mut world,
        3,
        GossipMode::Digest,
        None,
        Some((
            1,
            ms(1500),
            Intent::MastershipPin {
                dpid: 0,
                replica: 2,
                pinned: true,
            },
        )),
        None,
        None,
    );
    world.run_until(ms(1200));
    let before = world
        .node_as::<Controller>(fabric.controllers[0])
        .mastered();
    assert!(
        before.contains(&0),
        "hash assignment should give switch 0 to replica 0: {before:?}"
    );

    world.run_until(secs(4));
    let r0 = world
        .node_as::<Controller>(fabric.controllers[0])
        .mastered();
    let r2 = world
        .node_as::<Controller>(fabric.controllers[2])
        .mastered();
    assert!(
        !r0.contains(&0) && r2.contains(&0),
        "pin not enforced: replica0={r0:?} replica2={r2:?}"
    );
    // The agent followed the handover.
    let agent = world.node_as::<SwitchAgent>(fabric.switches[0]);
    assert_eq!(
        agent.master_node(),
        Some(fabric.controllers[2]),
        "switch 0 not homed to the pinned replica"
    );
    assert_eq!(agent.stats.nonmaster_rejected, 0);
}

#[test]
fn digest_gossip_converges_like_suffix_with_fewer_entries_sent() {
    let run = |gossip: GossipMode| {
        let mut world = World::new(53);
        let fabric = consensus_fabric(
            &mut world,
            3,
            gossip,
            Some(0),
            None,
            None,
            Some(Workload::Ping {
                dst: default_ip(1),
                count: 20,
                interval: Duration::from_millis(50),
                start: ms(1500),
            }),
        );
        world.run_until(secs(3));
        let entries_sent: u64 = fabric
            .controllers
            .iter()
            .map(|&c| world.node_as::<Controller>(c).stats.ew_entries_sent)
            .sum();
        let views: Vec<usize> = fabric
            .controllers
            .iter()
            .map(|&c| world.node_as::<Controller>(c).view.links.len())
            .collect();
        let acls: Vec<Vec<FlowMatch>> = (0..3).map(|r| acl_committed(&world, &fabric, r)).collect();
        let pings = world
            .node_as::<Host>(fabric.hosts[0])
            .stats
            .ping_rtts
            .count();
        (entries_sent, views, acls, pings)
    };

    let (suffix_sent, suffix_views, suffix_acls, suffix_pings) = run(GossipMode::Suffix);
    let (digest_sent, digest_views, digest_acls, digest_pings) = run(GossipMode::Digest);

    // Both modes fully converge the replicated state…
    assert_eq!(suffix_views, vec![8, 8, 8]);
    assert_eq!(digest_views, vec![8, 8, 8]);
    assert_eq!(suffix_acls, digest_acls);
    assert_eq!(suffix_pings, 20);
    assert_eq!(digest_pings, 20);
    // …but digest mode pushes each entry once instead of resending the
    // unacked suffix every tick until the ack round-trips.
    assert!(
        digest_sent < suffix_sent,
        "digest gossip sent {digest_sent} entries, suffix {suffix_sent}"
    );
}

/// A replica partitioned across an ACL withdrawal that the leader then
/// compacts out of the log must rejoin via snapshot and *drop* the
/// stale deny: the withdrawal exists only as absence from the
/// snapshot's active set, so patching (replaying entries) can never
/// retract it. Guards the rebuild contract of
/// [`App::on_intent_snapshot`] end to end, down to the switch tables.
#[test]
fn healed_replica_rebuilds_acl_from_snapshot_dropping_withdrawn_deny() {
    let mut world = World::new(59);
    // Replica 0 seeds the deny. While replica 2 is partitioned,
    // replica 1 withdraws it and then churns enough pin intents
    // through the log to push the leader's compaction floor past the
    // withdrawal.
    let mut batch = vec![Intent::AclDeny {
        priority: 900,
        matcher: deny_udp_9(),
        install: false,
    }];
    batch.extend((0..40).map(|k| Intent::MastershipPin {
        dpid: 1000,
        replica: 0,
        pinned: k % 2 == 0,
    }));
    let fabric = consensus_fabric(
        &mut world,
        3,
        GossipMode::Digest,
        Some(0),
        None,
        Some((1, ms(2500), batch)),
        None,
    );
    world.run_until(secs(2));
    for r in 0..3 {
        assert_eq!(
            acl_committed(&world, &fabric, r),
            vec![deny_udp_9()],
            "replica {r} missing the deny pre-partition"
        );
    }
    world.set_fault_plan(
        FaultPlan::default().isolate(fabric.controllers[2], Window::new(secs(2), secs(5))),
    );
    world.run_until(secs(8));

    // The healed replica converged on the leader's log despite its
    // inflated self-campaign term from the partition.
    let caught_up = world
        .node_as::<Controller>(fabric.controllers[2])
        .intent_replica()
        .unwrap();
    let leader_log = world
        .node_as::<Controller>(fabric.controllers[0])
        .intent_replica()
        .unwrap();
    assert_eq!(
        (caught_up.term(), caught_up.commit()),
        (leader_log.term(), leader_log.commit()),
        "replica 2 did not converge on the leader's term and commit"
    );
    // Replica 2 rejoined past the floor: it caught up by snapshot, not
    // by replaying every commit it missed.
    let replayed = world
        .node_as::<Controller>(fabric.controllers[2])
        .stats
        .intents_committed;
    let full = world
        .node_as::<Controller>(fabric.controllers[0])
        .stats
        .intents_committed;
    assert!(
        replayed < full,
        "replica 2 replayed {replayed}/{full} commits — snapshot path not exercised"
    );
    // The withdrawn deny is gone everywhere — including on the replica
    // that never saw the withdrawal — and off every switch table.
    for r in 0..3 {
        assert!(
            acl_committed(&world, &fabric, r).is_empty(),
            "replica {r} kept the withdrawn deny"
        );
    }
    for i in 0..fabric.switches.len() {
        assert_eq!(
            acl_rules_installed(&world, &fabric, i),
            0,
            "switch {i} still carries the withdrawn deny"
        );
    }
}

/// Fixed-seed consensus soak (CI runs this): ACL intents and a
/// mastership pin ride the log while the consensus leader is killed
/// and healed — twice, from the same seed — and the end states must be
/// byte-identical. Guards election, log replication, snapshot
/// catch-up, digest anti-entropy, and intent dispatch against
/// nondeterminism.
#[test]
#[ignore = "consensus soak: run explicitly (CI does) — simulates ~6 s of fabric time twice"]
fn fixed_seed_consensus_soak_is_deterministic() {
    fn run_soak(seed: u64) -> String {
        let mut world = World::new(seed);
        let fabric = consensus_fabric(
            &mut world,
            3,
            GossipMode::Digest,
            Some(0),
            Some((
                2,
                ms(1950),
                Intent::MastershipPin {
                    dpid: 1,
                    replica: 2,
                    pinned: true,
                },
            )),
            None,
            Some(Workload::Udp {
                dst: default_ip(1),
                dst_port: 7,
                size: 100,
                count: 4000,
                interval: Duration::from_millis(1),
                start: ms(1500),
            }),
        );
        world.set_fault_plan(
            FaultPlan::default().isolate(fabric.controllers[0], Window::new(secs(2), ms(3500))),
        );
        world.run_until(secs(6));

        let mut digest = String::new();
        for (i, &sw) in fabric.switches.iter().enumerate() {
            let agent = world.node_as::<SwitchAgent>(sw);
            digest.push_str(&format!(
                "switch {i}: mods={} acl_rules={} master={:?} claim={:?}\n",
                agent.stats.flow_mods,
                agent
                    .dp
                    .table(0)
                    .entries()
                    .filter(|e| e.spec.cookie == ACL_COOKIE)
                    .count(),
                agent.master_node(),
                agent.master_claim(),
            ));
        }
        for (i, &c) in fabric.controllers.iter().enumerate() {
            let ctl = world.node_as::<Controller>(c);
            digest.push_str(&format!(
                "replica {i}: mastered={:?} term={:?} committed={:?} stats={:?}\n",
                ctl.mastered(),
                ctl.cluster_term(),
                ctl.find_app::<Acl>().unwrap().committed(),
                ctl.stats,
            ));
        }
        digest.push_str(&format!(
            "rx={}\n",
            world.node_as::<Host>(fabric.hosts[1]).stats.udp_rx
        ));
        digest
    }

    let first = run_soak(131);
    let second = run_soak(131);
    assert_eq!(first, second, "consensus soak is nondeterministic");
}
