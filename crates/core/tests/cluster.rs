//! Distributed control plane: per-switch mastership, replicated view,
//! and failover. Exercises the zen-cluster substrate end to end —
//! deterministic mastership election at the features handshake,
//! east-west view replication, lease-expiry takeover of a crashed
//! master's switches (with zero flow re-flood when the takeover is
//! clean), stamp-driven reprogramming when it is not, split-brain
//! resolution by term, and the non-master write fence at the agent.

use std::collections::BTreeMap;

use zen_core::apps::proactive::{StaticHost, FABRIC_MAC};
use zen_core::apps::ProactiveFabric;
use zen_core::harness::{
    build_cluster_fabric_with_hosts, build_fabric, default_host_mac, Fabric, FabricOptions,
};
use zen_core::{AgentConfig, Controller, ControllerConfig, SwitchAgent};
use zen_sim::{Duration, FaultPlan, Host, Instant, LinkParams, Topology, Window, Workload, World};
use zen_wire::Ipv4Address;

fn default_ip(i: usize) -> Ipv4Address {
    zen_core::harness::default_host_ip(i)
}

fn secs(s: u64) -> Instant {
    Instant::from_secs(s)
}

fn ms(v: u64) -> Instant {
    Instant::from_millis(v)
}

/// A 4-switch ring with hosts on switches 0 and 2, `n_controllers`
/// replicas each running its own ProactiveFabric instance, and host 0
/// optionally carrying a workload toward host 1.
fn cluster_ring_fabric(
    world: &mut World,
    n_controllers: usize,
    workload: Option<Workload>,
) -> Fabric {
    let mut topo = Topology::ring(4, LinkParams::default());
    topo.hosts = vec![0, 2];
    let inventory = {
        let mut scratch = World::new(99);
        build_fabric(&mut scratch, &topo, vec![], FabricOptions::default()).static_hosts()
    };
    let opts = FabricOptions {
        n_controllers,
        ..FabricOptions::default()
    };
    let expected_switches = topo.switches;
    let expected_links = 2 * topo.links.len();
    build_cluster_fabric_with_hosts(
        world,
        &topo,
        |_i| {
            vec![Box::new(ProactiveFabric::new(
                inventory.clone(),
                expected_switches,
                expected_links,
            ))]
        },
        opts,
        move |i, mac, ip| {
            let host = Host::new(mac, ip).with_static_arp(default_ip(1 - i), FABRIC_MAC);
            match (&workload, i) {
                (Some(w), 0) => host.with_workload(w.clone()),
                _ => host,
            }
        },
    )
}

/// dpid → replica index, asserting no switch is claimed by two live
/// replicas. `skip` excludes a replica (an isolated one still believes
/// it masters its switches — that belief is unreachable, not wrong).
fn mastership_map(world: &World, fabric: &Fabric, skip: Option<usize>) -> BTreeMap<u64, usize> {
    let mut map = BTreeMap::new();
    for (i, &c) in fabric.controllers.iter().enumerate() {
        if skip == Some(i) {
            continue;
        }
        for dpid in world.node_as::<Controller>(c).mastered() {
            if let Some(prev) = map.insert(dpid, i) {
                panic!("switch {dpid} mastered by replicas {prev} and {i}");
            }
        }
    }
    map
}

/// Deterministic digest of one switch's installed forwarding state:
/// flow specs (no counters) per table plus the group table.
fn table_digest(agent: &SwitchAgent) -> String {
    let mut out = String::new();
    for tid in 0..agent.dp.table_count() as u8 {
        let mut entries: Vec<String> = agent
            .dp
            .table(tid)
            .entries()
            .map(|e| format!("t{tid}|{:?}", e.spec))
            .collect();
        entries.sort();
        for line in entries {
            out.push_str(&line);
            out.push('\n');
        }
    }
    for (id, desc) in agent.dp.groups.iter() {
        out.push_str(&format!("g{id}|{desc:?}\n"));
    }
    out
}

fn agent_flow_mods(world: &World, fabric: &Fabric) -> Vec<u64> {
    fabric
        .switches
        .iter()
        .map(|&n| world.node_as::<SwitchAgent>(n).stats.flow_mods)
        .collect()
}

#[test]
fn three_replicas_partition_mastership_and_carry_traffic() {
    let mut world = World::new(61);
    let fabric = cluster_ring_fabric(
        &mut world,
        3,
        Some(Workload::Ping {
            dst: default_ip(1),
            count: 30,
            interval: Duration::from_millis(20),
            start: ms(1500),
        }),
    );
    world.run_until(secs(3));

    // Every switch has exactly one master, the assignment spreads over
    // all three replicas (4 switches mod 3 replicas), and each agent
    // agrees with the controller side about who that master is.
    let map = mastership_map(&world, &fabric, None);
    assert_eq!(map.len(), 4, "unmastered switches: {map:?}");
    for i in 0..3 {
        assert!(
            map.values().any(|&r| r == i),
            "replica {i} masters nothing: {map:?}"
        );
    }
    for (i, &sw) in fabric.switches.iter().enumerate() {
        let agent = world.node_as::<SwitchAgent>(sw);
        assert_eq!(
            agent.master_node(),
            Some(fabric.controllers[map[&(i as u64)]]),
            "agent {i} disagrees about its master"
        );
        assert!(
            !agent.dp.table(0).is_empty(),
            "switch {i} never got programmed"
        );
        assert_eq!(agent.stats.nonmaster_rejected, 0);
    }
    // The replicated view converged: every replica knows all 8 directed
    // links even though each discovered only its own switches' ports.
    for &c in &fabric.controllers {
        let ctl = world.node_as::<Controller>(c);
        assert_eq!(ctl.view.links.len(), 8, "replica view incomplete");
        assert_eq!(ctl.pending_mods(), 0);
        assert_eq!(ctl.stats.mods_failed, 0);
    }
    let h0 = world.node_as::<Host>(fabric.hosts[0]);
    assert_eq!(h0.stats.ping_rtts.count(), 30, "pings lost");
}

#[test]
fn clean_master_kill_fails_over_without_reflooding_flows() {
    let mut world = World::new(71);
    let fabric = cluster_ring_fabric(
        &mut world,
        3,
        Some(Workload::Udp {
            dst: default_ip(1),
            dst_port: 9,
            size: 100,
            count: 3000,
            interval: Duration::from_millis(1),
            start: ms(1500),
        }),
    );
    world.run_until(secs(2));
    let before = mastership_map(&world, &fabric, None);
    let mods_before = agent_flow_mods(&world, &fabric);
    let victim = before[&0];
    let orphans: Vec<u64> = before
        .iter()
        .filter(|&(_, &r)| r == victim)
        .map(|(&d, _)| d)
        .collect();
    assert!(!orphans.is_empty());

    // Crash the replica mastering switch 0 (isolation of a node with no
    // data ports is indistinguishable from a crash).
    world.set_fault_plan(FaultPlan::default().isolate(
        fabric.controllers[victim],
        Window::new(secs(2), Instant::from_nanos(u64::MAX)),
    ));
    world.run_until(secs(5));

    // Survivors took over every orphan.
    let after = mastership_map(&world, &fabric, Some(victim));
    assert_eq!(after.len(), 4, "orphans left unmastered: {after:?}");
    for &d in &orphans {
        assert_ne!(after[&d], victim);
    }
    for (i, &sw) in fabric.switches.iter().enumerate() {
        let agent = world.node_as::<SwitchAgent>(sw);
        assert_eq!(
            agent.master_node(),
            Some(fabric.controllers[after[&(i as u64)]]),
            "agent {i} not homed to the surviving master"
        );
    }
    // The kill happened with the fabric quiescent, so the takeover is
    // clean: the replicated program stamps match what the new masters
    // would install and *no* switch — orphaned or not — sees a single
    // new FLOW_MOD. This is the headline ONOS property: failover moves
    // mastership, not flow state.
    let mods_after = agent_flow_mods(&world, &fabric);
    assert_eq!(
        mods_before, mods_after,
        "clean failover re-flooded flow state"
    );
    // Datapath autonomy: the fabric forwarded every probe across the
    // controller crash.
    let h1 = world.node_as::<Host>(fabric.hosts[1]);
    assert_eq!(h1.stats.udp_rx, 3000, "probes lost during clean failover");
    for (i, &c) in fabric.controllers.iter().enumerate() {
        if i == victim {
            continue;
        }
        let ctl = world.node_as::<Controller>(c);
        assert_eq!(ctl.pending_mods(), 0);
        assert_eq!(ctl.stats.mods_failed, 0);
        assert!(ctl.stats.masterships_gained > 0);
    }
}

#[test]
fn master_killed_mid_convergence_is_repaired_by_new_master() {
    let mut world = World::new(81);
    let count = 4000;
    let fabric = cluster_ring_fabric(
        &mut world,
        3,
        Some(Workload::Udp {
            dst: default_ip(1),
            dst_port: 9,
            size: 100,
            count,
            interval: Duration::from_millis(1),
            start: ms(1500),
        }),
    );
    let cut_at = ms(2500);
    world.run_until(cut_at);
    let before = mastership_map(&world, &fabric, None);

    // Silently cut the busiest data link (no PORT_STATUS — only LLDP
    // drying up reveals it) and, at the same instant, crash the master
    // of switch 0 (the ingress). The dead master can never react; the
    // takeover replica must detect the lapsed lease, adopt the orphans,
    // see its desired program diverge from the replicated stamp, and
    // reprogram around the dead link.
    let topo_links = Topology::ring(4, LinkParams::default()).links;
    let busiest_pos = (0..fabric.switch_links.len())
        .max_by_key(|&p| {
            let link = world.link(fabric.switch_links[p]);
            link.ab.tx_bytes + link.ba.tx_bytes
        })
        .unwrap();
    world.schedule_link_state_silent(fabric.switch_links[busiest_pos], false, cut_at);
    let victim = before[&0];
    world.set_fault_plan(FaultPlan::default().isolate(
        fabric.controllers[victim],
        Window::new(cut_at, Instant::from_nanos(u64::MAX)),
    ));
    let rx_at_kill = world.node_as::<Host>(fabric.hosts[1]).stats.udp_rx;
    world.run_until(ms(6500));

    let after = mastership_map(&world, &fabric, Some(victim));
    assert_eq!(after.len(), 4);
    assert_ne!(after[&0], victim, "orphaned ingress not adopted");
    // The dead link is out of the survivors' replicated view and the
    // fabric was reprogrammed around it: traffic resumed after the
    // outage window (lease expiry + link max-age + reprogram).
    let cut_link = topo_links[busiest_pos];
    for (i, &c) in fabric.controllers.iter().enumerate() {
        if i == victim {
            continue;
        }
        let ctl = world.node_as::<Controller>(c);
        assert!(
            ctl.view.links.len() <= 6,
            "replica {i} still believes the cut link {:?} is up ({} links)",
            (cut_link.a, cut_link.b),
            ctl.view.links.len()
        );
        assert_eq!(ctl.stats.mods_failed, 0);
    }
    let rx_end = world.node_as::<Host>(fabric.hosts[1]).stats.udp_rx;
    assert!(
        rx_end > rx_at_kill + 1000,
        "traffic never resumed after mid-convergence failover \
         (rx {rx_end} at end vs {rx_at_kill} at kill)"
    );
    assert!(
        rx_end + 1500 >= count,
        "outage too long: only {rx_end}/{count} probes delivered"
    );
}

#[test]
fn split_brain_resolves_by_term_and_leaves_tables_identical() {
    // Run the same seeded world twice: once with an east-west partition
    // that isolates replica 2 from replicas 0 and 1 between t=2s and
    // t=3s (southbound intact — a pure control-plane split), and once
    // undisturbed. The split must resolve to the higher-term side
    // (replica 2 saw *two* peers die, so its term outbids both
    // survivors), heal back to the canonical assignment, and leave
    // every datapath's flow and group tables byte-identical to the
    // never-partitioned run.
    let build = |world: &mut World| {
        cluster_ring_fabric(
            world,
            3,
            Some(Workload::Ping {
                dst: default_ip(1),
                count: 30,
                interval: Duration::from_millis(100),
                start: ms(1500),
            }),
        )
    };

    let mut split_world = World::new(91);
    let split_fabric = build(&mut split_world);
    let window = Window::new(secs(2), secs(3));
    split_world.set_fault_plan(
        FaultPlan::default()
            .partition(
                split_fabric.controllers[2],
                split_fabric.controllers[0],
                window,
            )
            .partition(
                split_fabric.controllers[2],
                split_fabric.controllers[1],
                window,
            ),
    );

    // Mid-split: replica 2's lease on its peers lapsed, its term jumped
    // by two while the majority side's jumped by one, so its claims won
    // every switch.
    split_world.run_until(ms(2900));
    for (i, &sw) in split_fabric.switches.iter().enumerate() {
        let agent = split_world.node_as::<SwitchAgent>(sw);
        assert_eq!(
            agent.master_node(),
            Some(split_fabric.controllers[2]),
            "switch {i} not captured by the high-term minority side"
        );
        assert_eq!(agent.master_claim().1, 2);
    }

    // Post-heal: terms merge, liveness recovers, and the canonical
    // assignment (spread over all three replicas) is re-established —
    // the healed claims carry a term above the split-era floor.
    split_world.run_until(ms(4500));
    let map = mastership_map(&split_world, &split_fabric, None);
    assert_eq!(map.len(), 4);
    for i in 0..3 {
        assert!(
            map.values().any(|&r| r == i),
            "replica {i} not restored after heal: {map:?}"
        );
    }
    let terms: Vec<Option<u64>> = split_fabric
        .controllers
        .iter()
        .map(|&c| split_world.node_as::<Controller>(c).cluster_term())
        .collect();
    assert!(
        terms.iter().all(|&t| t == terms[0] && t >= Some(3)),
        "terms did not merge after heal: {terms:?}"
    );

    // Control run: same seed, no faults, same scheduling boundaries.
    let mut calm_world = World::new(91);
    let calm_fabric = build(&mut calm_world);
    calm_world.run_until(ms(2900));
    calm_world.run_until(ms(4500));

    for (i, (&s, &c)) in split_fabric
        .switches
        .iter()
        .zip(calm_fabric.switches.iter())
        .enumerate()
    {
        let split_digest = table_digest(split_world.node_as::<SwitchAgent>(s));
        let calm_digest = table_digest(calm_world.node_as::<SwitchAgent>(c));
        assert!(!calm_digest.is_empty(), "control run never programmed");
        assert_eq!(
            split_digest, calm_digest,
            "switch {i} flow state diverged from the never-partitioned run"
        );
    }
    // The split never touched the datapath, so no pings were lost.
    let h0 = split_world.node_as::<Host>(split_fabric.hosts[0]);
    assert_eq!(h0.stats.ping_rtts.count(), 30);
}

#[test]
fn nonmaster_mods_are_rejected_with_error_and_metric() {
    // A controller that never acquired the Master role (the agent is
    // built multi-homed, so its single connection starts Equal and the
    // unclustered controller never sends a ROLE_REQUEST) must have
    // every state mod bounced with a NOT_MASTER error frame, the
    // `fault.*` metric must count each rejection, and nothing may land
    // in the flow tables.
    let mut world = World::new(7);
    let inventory = vec![StaticHost {
        ip: default_ip(0),
        mac: default_host_mac(0),
        dpid: 0,
        port: 1,
    }];
    let controller = world.add_node(Box::new(Controller::with_config(
        vec![Box::new(ProactiveFabric::new(inventory, 1, 0))],
        ControllerConfig::default(),
    )));
    world.set_control_latency(Duration::from_micros(50));
    let agent_node = world.add_node(Box::new(SwitchAgent::with_controllers(
        0,
        2,
        vec![controller],
        AgentConfig::default(),
    )));
    world.run_until(secs(2));

    let agent = world.node_as::<SwitchAgent>(agent_node);
    assert!(
        agent.stats.nonmaster_rejected >= 1,
        "no mods were rejected: {:?}",
        agent.stats
    );
    assert_eq!(agent.master_node(), None);
    for tid in 0..agent.dp.table_count() as u8 {
        assert_eq!(
            agent.dp.table(tid).len(),
            0,
            "a non-master mod reached table {tid}"
        );
    }
    assert!(agent.dp.groups.is_empty());
    assert!(world.metrics().counter("fault.nonmaster_mod_rejected") >= 1);
    let ctl = world.node_as::<Controller>(controller);
    assert!(ctl.stats.nonmaster_errors >= 1);
    assert!(ctl.stats.mods_superseded >= 1, "rejected mods not retired");
    assert_eq!(ctl.pending_mods(), 0, "rejected mods left pending");
}

/// Fixed-seed failover soak (CI runs this): kill a master, let the
/// lease lapse and the survivors take over, heal, and let the victim
/// rejoin — twice, from the same seed — and require the end states to
/// be byte-identical. Guards the whole cluster path (election, EW
/// replication, takeover, rejoin) against nondeterminism.
#[test]
#[ignore = "failover soak: run explicitly (CI does) — simulates ~6 s of fabric time"]
fn fixed_seed_cluster_failover_soak_is_deterministic() {
    fn run_soak(seed: u64) -> String {
        let mut world = World::new(seed);
        let fabric = cluster_ring_fabric(
            &mut world,
            3,
            Some(Workload::Udp {
                dst: default_ip(1),
                dst_port: 9,
                size: 100,
                count: 4000,
                interval: Duration::from_millis(1),
                start: ms(1500),
            }),
        );
        world.set_fault_plan(
            FaultPlan::default().isolate(fabric.controllers[0], Window::new(secs(2), ms(3500))),
        );
        world.run_until(secs(6));

        let mut digest = String::new();
        for (i, &sw) in fabric.switches.iter().enumerate() {
            let agent = world.node_as::<SwitchAgent>(sw);
            digest.push_str(&format!(
                "switch {i}: mods={} pkt_ins={} rejected={} master={:?} claim={:?}\n",
                agent.stats.flow_mods,
                agent.stats.packet_ins,
                agent.stats.nonmaster_rejected,
                agent.master_node(),
                agent.master_claim(),
            ));
            digest.push_str(&table_digest(agent));
        }
        for (i, &c) in fabric.controllers.iter().enumerate() {
            let ctl = world.node_as::<Controller>(c);
            digest.push_str(&format!(
                "replica {i}: mastered={:?} term={:?} stats={:?}\n",
                ctl.mastered(),
                ctl.cluster_term(),
                ctl.stats,
            ));
        }
        digest.push_str(&format!(
            "rx={}\n",
            world.node_as::<Host>(fabric.hosts[1]).stats.udp_rx
        ));
        digest
    }

    let first = run_soak(123);
    let second = run_soak(123);
    assert_eq!(first, second, "cluster failover soak is nondeterministic");
}
