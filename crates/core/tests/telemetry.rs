//! The flight recorder end to end: a probe's full causal chain must be
//! reconstructible by trace id, and the telemetry export must be
//! byte-identical across runs of the same seeded scenario (the CI
//! determinism gate runs the second test twice via the harness).

use zen_core::apps::{Monitor, ReactiveForwarding};
use zen_core::harness::{build_fabric_with_hosts, default_host_ip, FabricOptions};
use zen_core::{export_jsonl, Controller};
use zen_sim::{Duration, Host, Instant, LinkParams, Topology, Workload, World};
use zen_telemetry::{CacheTier, TraceEvent, TraceRecord};

/// A two-switch line with a probing host pair, recorder on.
fn run_probed_world(seed: u64) -> (World, zen_sim::NodeId) {
    let topo = Topology::line(2, LinkParams::default()).with_host_per_switch();
    let mut world = World::new(seed);
    let fabric = build_fabric_with_hosts(
        &mut world,
        &topo,
        vec![
            Box::new(ReactiveForwarding::new()),
            Box::new(Monitor::new(4)),
        ],
        FabricOptions::default(),
        |i, mac, ip| {
            let host = Host::new(mac, ip).with_gratuitous_arp();
            if i == 0 {
                host.with_workload(Workload::Udp {
                    dst: default_host_ip(1),
                    dst_port: 9,
                    size: 120,
                    count: 10,
                    interval: Duration::from_millis(10),
                    start: Instant::from_millis(500),
                })
            } else {
                host
            }
        },
    );
    world.recorder().set_enabled(true);
    world.run_until(Instant::from_secs(2));
    (world, fabric.controller)
}

fn names(records: &[TraceRecord]) -> Vec<&'static str> {
    records.iter().map(|r| r.event.name()).collect()
}

fn pos(names: &[&str], wanted: &str) -> usize {
    names
        .iter()
        .position(|&n| n == wanted)
        .unwrap_or_else(|| panic!("no {wanted} in {names:?}"))
}

#[test]
fn first_probe_trace_reconstructs_full_causal_chain() {
    let (world, _) = run_probed_world(42);
    let recorder = world.recorder();

    // The first probe is the earliest host_emit on record.
    let all = recorder.records();
    let first_emit = all
        .iter()
        .find(|r| matches!(r.event, TraceEvent::HostEmit { .. }))
        .expect("a probe was emitted");
    let chain = recorder.trace_records(first_emit.trace);
    let chain_names = names(&chain);

    // Timestamps are non-decreasing along the chain.
    assert!(
        chain.windows(2).all(|w| w[0].at_nanos <= w[1].at_nanos),
        "trace not in causal order: {chain:?}"
    );

    // The cold-path chain: emitted, carried on a link, missed every
    // cache tier, punted, dispatched to the claiming app, which
    // installed flows that were applied and eventually barrier-acked —
    // and the probe still reached the far host.
    let emit = pos(&chain_names, "host_emit");
    let link = pos(&chain_names, "link_tx");
    let dp = pos(&chain_names, "dp_match");
    let punt = pos(&chain_names, "punt");
    let dispatch = pos(&chain_names, "app_dispatch");
    let sent = pos(&chain_names, "flow_mod_sent");
    let applied = pos(&chain_names, "flow_mod_applied");
    let acked = pos(&chain_names, "flow_mod_acked");
    let recv = pos(&chain_names, "host_recv");
    assert!(emit < link && link < dp && dp < punt && punt < dispatch);
    // Flow-mods go out while the chain runs, so they precede the
    // app_dispatch record that closes it.
    assert!(punt < sent && sent < applied && applied < acked);
    assert!(dispatch < recv);

    // The first classification happened at the ingress switch. (Its
    // tier is not necessarily Slow: a previous table-miss trajectory —
    // e.g. from ARP flooding — may be memoized as a megaflow whose
    // wildcard mask also covers this probe, so even the punt can be a
    // cache hit.)
    assert!(matches!(
        chain[dp].event,
        TraceEvent::DpMatch { dpid: 0, .. }
    ));
    assert!(matches!(
        chain[dispatch].event,
        TraceEvent::AppDispatch { claimed: true, .. }
    ));

    // A later probe rides the installed flows: its chain has cache-tier
    // hits and no punt.
    let last_emit = all
        .iter()
        .rev()
        .find(|r| matches!(r.event, TraceEvent::HostEmit { .. }))
        .unwrap();
    assert_ne!(last_emit.trace, first_emit.trace);
    let warm = recorder.trace_records(last_emit.trace);
    let warm_names = names(&warm);
    assert!(!warm_names.contains(&"punt"), "warm probe punted: {warm:?}");
    assert!(warm_names.contains(&"host_recv"));
    assert!(warm.iter().any(|r| matches!(
        r.event,
        TraceEvent::DpMatch {
            tier: CacheTier::Micro | CacheTier::Mega,
            ..
        }
    )));
}

#[test]
fn fixed_seed_export_is_byte_identical() {
    let run = || {
        let (mut world, controller) = run_probed_world(7);
        export_jsonl(&mut world, controller)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "telemetry export diverged across identical runs");

    // The export carries every section.
    for needle in [
        "\"type\":\"meta\"",
        "\"type\":\"counter\"",
        "\"type\":\"histogram\"",
        "\"type\":\"controller\"",
        "\"type\":\"monitor\"",
        "\"type\":\"monitor_flow\"",
        "\"type\":\"loop_span\"",
        "\"type\":\"trace\"",
        "\"type\":\"trace_ring\"",
    ] {
        assert!(a.contains(needle), "export missing {needle}:\n{a}");
    }
    // Every line parses as a JSON object at a glance: one object per line.
    assert!(a.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
}

#[test]
fn disabled_recorder_records_nothing() {
    let topo = Topology::line(2, LinkParams::default()).with_host_per_switch();
    let mut world = World::new(42);
    let _fabric = build_fabric_with_hosts(
        &mut world,
        &topo,
        vec![Box::new(ReactiveForwarding::new())],
        FabricOptions::default(),
        |i, mac, ip| {
            let host = Host::new(mac, ip).with_gratuitous_arp();
            if i == 0 {
                host.with_workload(Workload::Udp {
                    dst: default_host_ip(1),
                    dst_port: 9,
                    size: 120,
                    count: 5,
                    interval: Duration::from_millis(10),
                    start: Instant::from_millis(500),
                })
            } else {
                host
            }
        },
    );
    world.run_until(Instant::from_secs(2));
    assert!(world.recorder().records().is_empty());
    assert_eq!(world.recorder().dropped(), 0);
    assert!(world.recorder().loop_profile().is_empty());
}

#[test]
fn monitor_sees_flow_cookies_through_typed_stats() {
    let (world, controller) = run_probed_world(11);
    let ctl = world.node_as::<Controller>(controller);
    let monitor = ctl.find_app::<Monitor>().expect("monitor installed");
    assert!(monitor.polls > 0);
    // The reactive app's installed path shows up as per-cookie flow
    // counters with real traffic attributed.
    let top = monitor.top_flows(10);
    assert!(!top.is_empty(), "no flow stats folded");
    assert!(top[0].1.bytes > 0);
    assert!(monitor.cache_hit_rate(0).is_some());
}
