//! Shard-determinism soak: the Datapath-backed fat-tree fabric, run on
//! the sharded engine at 1, 2 and 4 shards from the same seed, must
//! produce **byte-identical** results — the full per-event FNV digest,
//! every merged counter, the event total, and every host's delivery
//! count. A mid-run link flap on a core uplink exercises the replicated
//! admin path as well.
//!
//! Ignored by default (it simulates a 180-switch fabric three times
//! over); CI runs it explicitly:
//!
//! ```text
//! cargo test --release -p zen-core --test shard -- --ignored
//! ```

use zen_core::shard_fabric::{build_shard_fat_tree, ShardSwitch, ShardTrafficHost};
use zen_sim::topo::FatTreeIndex;
use zen_sim::{Duration, Instant, LinkParams, ShardedWorld};

/// The fixed seed. The whole scenario is a pure function of it; any
/// failure reproduces exactly by rerunning.
const SOAK_SEED: u64 = 0x5AA4_D001;

/// Fat-tree arity: 180 switches, 648 hosts.
const K: usize = 12;

/// Everything observable the run produced, compared across shard counts.
#[derive(Debug, PartialEq, Eq)]
struct RunDigest {
    digest: u64,
    events: u64,
    counters: Vec<(String, u64)>,
    per_host_rx: Vec<u64>,
    punts: u64,
}

fn run(n_shards: usize) -> RunDigest {
    let mut world = ShardedWorld::new(SOAK_SEED);
    let fabric = build_shard_fat_tree(
        &mut world,
        K,
        LinkParams::new(
            Duration::from_micros(5),
            10_000_000_000, // 10 Gbps: serialization delays in play
            256 * 1024,
        ),
        LinkParams::instant(Duration::from_micros(2)),
        Duration::from_micros(100),
        6,
    );

    // Flap an agg→core uplink mid-run: the admin event is replicated
    // into every shard and must flip identically everywhere.
    let idx = FatTreeIndex::new(K);
    let agg = fabric.switches[idx.agg(0, 0)];
    let core = fabric.switches[idx.core(0)];
    let (flapped, _, _) = world.connect(agg, core, LinkParams::instant(Duration::from_micros(5)));
    world.schedule_link_state(flapped, false, Instant::from_millis(2));
    world.schedule_link_state(flapped, true, Instant::from_millis(4));

    world.set_digest_enabled(true);
    world.run_until(Instant::from_millis(6), n_shards);

    RunDigest {
        digest: world.digest().expect("digest enabled"),
        events: world.events_processed(),
        counters: world
            .metrics()
            .counters()
            .map(|(name, v)| (name.to_string(), v))
            .collect(),
        per_host_rx: fabric
            .hosts
            .iter()
            .map(|&id| world.node_as::<ShardTrafficHost>(id).rx)
            .collect(),
        punts: fabric
            .switches
            .iter()
            .map(|&id| world.node_as::<ShardSwitch>(id).punts)
            .sum(),
    }
}

#[test]
#[ignore = "release soak: run explicitly in CI"]
fn sharded_fat_tree_is_byte_identical_across_shard_counts() {
    let one = run(1);
    assert!(
        one.events > 100_000,
        "soak too small: {} events",
        one.events
    );
    assert!(
        one.per_host_rx.iter().sum::<u64>() > 10_000,
        "soak delivered too little"
    );
    assert_eq!(one.punts, 0, "fully-routed fabric never punts");

    let two = run(2);
    let four = run(4);
    assert_eq!(one, two, "1-shard vs 2-shard runs diverge");
    assert_eq!(one, four, "1-shard vs 4-shard runs diverge");
}
