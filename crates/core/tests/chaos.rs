//! Chaos soak: a 20-switch fat-tree under a randomized fault plan —
//! sustained control-channel loss and duplication, a hard 500 ms
//! controller partition, and two data-plane link flaps — must
//! reconverge completely after the faults heal.
//!
//! Ignored by default (it simulates ~9 s of fabric time); CI runs it
//! explicitly:
//!
//! ```text
//! cargo test --release -p zen-core --test chaos -- --ignored
//! ```

use zen_core::apps::proactive::FABRIC_MAC;
use zen_core::apps::ProactiveFabric;
use zen_core::harness::{build_fabric, build_fabric_with_hosts, FabricOptions};
use zen_core::Controller;
use zen_sim::{Duration, FaultPlan, Host, Instant, LinkParams, Topology, Window, Workload, World};

/// The fixed seed. The whole scenario is a pure function of it; any
/// failure reproduces exactly by rerunning.
const SOAK_SEED: u64 = 0xC4A0_5001;

/// Everything observable the run produced, compared across replays.
#[derive(Debug, PartialEq, Eq)]
struct TraceDigest {
    events: u64,
    control_dropped: u64,
    control_duplicated: u64,
    control_partitioned: u64,
    msgs_sent: u64,
    msgs_received: u64,
    mods_acked: u64,
    mods_retransmitted: u64,
    pings_answered: usize,
}

fn ms(v: u64) -> Instant {
    Instant::from_millis(v)
}

fn soak(seed: u64) -> TraceDigest {
    let topo = Topology::fat_tree(4, LinkParams::default());
    assert_eq!(topo.switches, 20);
    assert_eq!(topo.host_count(), 16);
    let inventory = {
        let mut scratch = World::new(seed);
        build_fabric(&mut scratch, &topo, vec![], FabricOptions::default()).static_hosts()
    };
    let n_hosts = topo.host_count();
    let host_ips: Vec<_> = (0..n_hosts)
        .map(zen_core::harness::default_host_ip)
        .collect();

    let mut world = World::new(seed);
    let fabric = build_fabric_with_hosts(
        &mut world,
        &topo,
        vec![Box::new(ProactiveFabric::new(
            inventory,
            topo.switches,
            2 * topo.links.len(),
        ))],
        FabricOptions::default(),
        |i, mac, ip| {
            // Post-heal all-pairs ping wave: every host probes every
            // other host twice, staggered per source to spread load.
            let mut host = Host::new(mac, ip);
            for (j, &dst) in host_ips.iter().enumerate() {
                if j == i {
                    continue;
                }
                host = host
                    .with_static_arp(dst, FABRIC_MAC)
                    .with_workload(Workload::Ping {
                        dst,
                        count: 2,
                        interval: Duration::from_millis(40),
                        start: ms(7000 + 10 * i as u64 + 160 * (j as u64 % 4)),
                    });
            }
            host
        },
    );

    // The fault plan: ≥1% control loss plus duplication for 5 s, and a
    // hard 500 ms partition between the controller and one edge switch
    // (which has hosts behind it, so its state matters).
    let fault_window = Window::new(ms(1000), ms(6000));
    world.set_fault_plan(
        FaultPlan::default()
            .control_loss(0.015, fault_window)
            .duplicate(0.01, fault_window)
            .partition(
                fabric.controller,
                fabric.switches[0],
                Window::new(ms(2000), ms(2500)),
            ),
    );
    // Two link flaps (announced via PORT_STATUS, unlike the silent
    // cuts the LLDP-aging tests use).
    let flap_a = fabric.switch_links[0];
    let flap_b = fabric.switch_links[17];
    world.schedule_link_state(flap_a, false, ms(2800));
    world.schedule_link_state(flap_a, true, ms(3300));
    world.schedule_link_state(flap_b, false, ms(4000));
    world.schedule_link_state(flap_b, true, ms(4500));

    world.run_until(Instant::from_secs(10));

    // --- post-heal reconvergence ----------------------------------
    let controller = world.node_as::<Controller>(fabric.controller);
    assert_eq!(
        controller.view.switches.len(),
        20,
        "view lost switches (seed {seed:#x})"
    );
    assert_eq!(
        controller.view.links.len(),
        2 * topo.links.len(),
        "controller view does not match the live topology (seed {seed:#x})"
    );
    assert!(
        controller.view.quarantined().is_empty(),
        "quarantine never lifted: {:?} (seed {seed:#x})",
        controller.view.quarantined()
    );
    assert_eq!(
        controller.pending_mods(),
        0,
        "mods still pending after heal (seed {seed:#x})"
    );
    assert_eq!(
        controller.stats.mods_failed, 0,
        "flow-mods permanently lost (seed {seed:#x})"
    );
    // The partition outlasted the dead-after deadline, so the machinery
    // demonstrably engaged (this is a soak, not a no-op).
    assert!(
        controller.stats.quarantines >= 1,
        "partition never tripped quarantine (seed {seed:#x})"
    );
    assert!(
        controller.stats.resyncs_clean + controller.stats.resyncs_dirty >= 1,
        "no resync handshake ran (seed {seed:#x})"
    );
    let dropped = world.metrics().counter("fault.control_dropped");
    assert!(dropped > 0, "fault plan injected nothing (seed {seed:#x})");

    // All host pairs reachable: every ping of the wave came back.
    let mut pings_answered = 0;
    for (i, &h) in fabric.hosts.iter().enumerate() {
        let host = world.node_as::<Host>(h);
        let got = host.stats.ping_rtts.count();
        assert_eq!(
            got,
            2 * (n_hosts - 1),
            "host {i} lost pings (seed {seed:#x})"
        );
        pings_answered += got;
    }

    let stats = world.node_as::<Controller>(fabric.controller).stats;
    TraceDigest {
        events: world.events_processed(),
        control_dropped: dropped,
        control_duplicated: world.metrics().counter("fault.control_duplicated"),
        control_partitioned: world.metrics().counter("fault.control_partitioned"),
        msgs_sent: stats.msgs_sent,
        msgs_received: stats.msgs_received,
        mods_acked: stats.mods_acked,
        mods_retransmitted: stats.mods_retransmitted,
        pings_answered,
    }
}

#[test]
#[ignore = "chaos soak: run explicitly (CI does) — simulates ~10 s of fabric time"]
fn chaos_soak_fat_tree_reconverges() {
    let first = soak(SOAK_SEED);
    // The run is a pure function of the seed: a replay must produce an
    // identical trace, or debugging a chaos failure is hopeless.
    let second = soak(SOAK_SEED);
    assert_eq!(
        first, second,
        "replay diverged from first run (seed {SOAK_SEED:#x})"
    );
}
