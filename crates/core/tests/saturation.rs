//! Saturation smoke gate: a short fixed-seed cbench run against the
//! controller must sustain a conservative flow-setup rate and replay
//! byte-identically.
//!
//! This is the CI tripwire in front of the full E17 saturation sweep
//! (`cargo bench -p zen-bench --bench expt_saturation`): four emulated
//! switches blast closed-loop PACKET_INs for 200 ms of fabric time,
//! twice from the same seed. The runs must agree on every
//! deterministic observable — punt counts, setups, simulated
//! latencies, decode errors — and the wall-clock setup rate must clear
//! a floor set far below the measured peak, so only an order-of-
//! magnitude regression (an accidental copy storm, a quadratic
//! dispatch path) trips it, never scheduler noise.
//!
//! Ignored by default (the floor is meaningless in debug builds); CI
//! runs it explicitly:
//!
//! ```text
//! cargo test --release -p zen-core --test saturation -- --ignored
//! ```

use zen_core::apps::L2Learning;
use zen_core::{CbenchConfig, CbenchMode, CbenchSwitch, Controller};
use zen_sim::{Instant, NodeId, World};

/// The fixed seed. The simulated side of the run is a pure function
/// of it; any digest mismatch reproduces exactly by rerunning.
const SMOKE_SEED: u64 = 0xE17_5304;

/// Emulated switches blasting the controller.
const SWITCHES: usize = 4;

/// Punts kept in flight per switch.
const OUTSTANDING: usize = 8;

/// Fabric time simulated per run.
const RUN_MS: u64 = 200;

/// Wall-clock setups/sec the release build must sustain. The measured
/// peak for this configuration is well over 200k/s; the floor only
/// exists to catch order-of-magnitude regressions on the decode and
/// dispatch path, so it sits ~10x below slow-CI-runner reality.
const SETUPS_PER_SEC_FLOOR: f64 = 20_000.0;

/// Everything deterministic a run produces, compared across replays.
/// Wall-clock latencies stay out: they are real time, not fabric time.
#[derive(Debug, PartialEq, Eq)]
struct ReplayDigest {
    punts_sent: Vec<u64>,
    flow_mods: Vec<u64>,
    packet_outs: Vec<u64>,
    barriers: Vec<u64>,
    decode_errors: Vec<u64>,
    /// Per-switch simulated punt-to-FLOW_MOD latencies, every sample.
    sim_setup_ns: Vec<Vec<u64>>,
}

struct RunOutcome {
    digest: ReplayDigest,
    total_setups: u64,
    total_punts: u64,
    wall_secs: f64,
}

fn run_once() -> RunOutcome {
    let mut world = World::new(SMOKE_SEED);
    let controller = world.add_node(Box::new(Controller::new(vec![Box::new(L2Learning::new())])));
    let cfg = CbenchConfig {
        mode: CbenchMode::Closed {
            outstanding: OUTSTANDING,
        },
        sources: 64,
        payload_len: 64,
        ..CbenchConfig::default()
    };
    let switches: Vec<NodeId> = (0..SWITCHES)
        .map(|dpid| world.add_node(Box::new(CbenchSwitch::new(dpid as u64, controller, cfg))))
        .collect();

    let started = std::time::Instant::now();
    world.run_until(Instant::from_millis(RUN_MS));
    let wall_secs = started.elapsed().as_secs_f64();

    let mut digest = ReplayDigest {
        punts_sent: Vec::new(),
        flow_mods: Vec::new(),
        packet_outs: Vec::new(),
        barriers: Vec::new(),
        decode_errors: Vec::new(),
        sim_setup_ns: Vec::new(),
    };
    for &id in &switches {
        let sw = world.node_as::<CbenchSwitch>(id);
        digest.punts_sent.push(sw.stats.punts_sent);
        digest.flow_mods.push(sw.stats.flow_mods);
        digest.packet_outs.push(sw.stats.packet_outs);
        digest.barriers.push(sw.stats.barriers);
        digest.decode_errors.push(sw.stats.decode_errors);
        digest.sim_setup_ns.push(sw.sim_setup_ns.clone());
    }
    RunOutcome {
        total_setups: digest.flow_mods.iter().sum(),
        total_punts: digest.punts_sent.iter().sum(),
        digest,
        wall_secs,
    }
}

#[test]
#[ignore = "wall-clock floor; CI runs it in release explicitly"]
fn saturation_smoke_floor_and_replay() {
    let first = run_once();

    // The channel is healthy: every punt decoded, and the closed loop
    // kept the pipeline full (punts lead setups by at most the
    // in-flight window).
    assert_eq!(
        first.digest.decode_errors,
        vec![0; SWITCHES],
        "decode errors on a clean channel"
    );
    assert!(
        first.total_setups > 1_000,
        "closed loop stalled: only {} setups in {RUN_MS} ms of fabric time",
        first.total_setups
    );
    let in_flight_cap = (SWITCHES * OUTSTANDING) as u64;
    assert!(
        first.total_punts - first.total_setups <= in_flight_cap,
        "punts ({}) lead setups ({}) by more than the in-flight window",
        first.total_punts,
        first.total_setups
    );

    // The wall-clock floor: conservative on purpose (see module docs).
    let rate = first.total_setups as f64 / first.wall_secs;
    assert!(
        rate >= SETUPS_PER_SEC_FLOOR,
        "setup rate regressed: {:.0}/s < floor {:.0}/s ({} setups in {:.1} ms, seed {SMOKE_SEED:#x})",
        rate,
        SETUPS_PER_SEC_FLOOR,
        first.total_setups,
        first.wall_secs * 1e3,
    );

    // Byte-identical replay: the same seed must reproduce every
    // deterministic observable exactly.
    let second = run_once();
    assert_eq!(
        first.digest, second.digest,
        "replay diverged (seed {SMOKE_SEED:#x})"
    );
}
