//! End-to-end tests of the SDN fabric: discovery, reactive forwarding,
//! ACL enforcement, proactive ECMP programming, failover, and TE
//! tunnels — all through real control-protocol messages.

use zen_core::apps::proactive::FABRIC_MAC;
use zen_core::apps::te::SiteDemand;
use zen_core::apps::{Acl, L2Learning, ProactiveFabric, ReactiveForwarding, TrafficEngineering};
use zen_core::harness::{build_fabric, build_fabric_with_hosts, site_host_ip, FabricOptions};
use zen_core::{Controller, SwitchAgent};
use zen_dataplane::FlowMatch;
use zen_sim::{Duration, Host, Instant, LinkParams, Topology, Workload, World};
use zen_wire::Ipv4Address;

fn default_ip(i: usize) -> Ipv4Address {
    zen_core::harness::default_host_ip(i)
}

#[test]
fn discovery_learns_full_topology_and_hosts() {
    let topo = Topology::ring(4, LinkParams::default()).with_host_per_switch();
    let mut world = World::new(1);
    let fabric = build_fabric(
        &mut world,
        &topo,
        vec![Box::new(ReactiveForwarding::new())],
        FabricOptions::default(),
    );
    world.run_until(Instant::from_secs(1));

    let controller = world.node_as::<Controller>(fabric.controller);
    assert_eq!(controller.view.switches.len(), 4);
    // Every physical link discovered in both directions.
    assert_eq!(controller.view.links.len(), 2 * topo.links.len());
    // Gratuitous ARPs revealed every host with its IP.
    assert_eq!(controller.view.hosts.len(), 4);
    for (i, mac) in fabric.host_macs.iter().enumerate() {
        let entry = controller.view.hosts.get(mac).expect("host learned");
        assert_eq!(entry.ip, Some(fabric.host_ips[i]));
        assert_eq!(entry.dpid, fabric.host_attach[i].0 as u64);
        assert_eq!(entry.port, fabric.host_attach[i].1);
    }
}

#[test]
fn reactive_forwarding_pings_across_ring() {
    let topo = Topology::ring(4, LinkParams::default()).with_host_per_switch();
    let mut world = World::new(7);
    let fabric = build_fabric_with_hosts(
        &mut world,
        &topo,
        vec![Box::new(ReactiveForwarding::new())],
        FabricOptions::default(),
        |i, mac, ip| {
            let host = Host::new(mac, ip).with_gratuitous_arp();
            if i == 0 {
                host.with_workload(Workload::Ping {
                    dst: default_ip(2), // the far side of the ring
                    count: 10,
                    interval: Duration::from_millis(20),
                    start: Instant::from_millis(500),
                })
            } else {
                host
            }
        },
    );
    world.run_until(Instant::from_secs(2));

    let h0 = world.node_as::<Host>(fabric.hosts[0]);
    assert_eq!(h0.stats.ping_rtts.count(), 10, "all pings answered");
    let controller = world.node_as::<Controller>(fabric.controller);
    let app = controller
        .app(0)
        .as_any()
        .downcast_ref::<ReactiveForwarding>()
        .unwrap();
    assert!(app.paths_installed >= 1);
    // Most pings ride installed flows: far fewer punts than data packets.
    assert!(
        controller.stats.packet_ins < 20,
        "too many packet-ins: {}",
        controller.stats.packet_ins
    );
}

#[test]
fn first_packet_pays_setup_latency() {
    let topo = Topology::line(3, LinkParams::default()).with_host_per_switch();
    let mut world = World::new(3);
    let fabric = build_fabric_with_hosts(
        &mut world,
        &topo,
        vec![Box::new(ReactiveForwarding::new())],
        FabricOptions::default(),
        |i, mac, ip| {
            let host = Host::new(mac, ip).with_gratuitous_arp();
            if i == 0 {
                host.with_workload(Workload::Udp {
                    dst: default_ip(2),
                    dst_port: 9,
                    size: 100,
                    count: 20,
                    interval: Duration::from_millis(10),
                    start: Instant::from_millis(500),
                })
            } else {
                host
            }
        },
    );
    world.run_until(Instant::from_secs(2));

    let h2 = world.node_as::<Host>(fabric.hosts[2]);
    assert!(h2.stats.udp_rx >= 19, "only {} delivered", h2.stats.udp_rx);
    let samples = h2.stats.udp_latency.samples();
    let first = samples[0];
    let later: f64 = samples[5..].iter().copied().fold(f64::MAX, f64::min);
    assert!(
        first > later * 2.0,
        "first-packet latency {first} not above installed-path latency {later}"
    );
}

#[test]
fn l2_learning_works_on_a_tree() {
    let topo = Topology::star(3, LinkParams::default()).with_host_per_switch();
    let mut world = World::new(5);
    let fabric = build_fabric_with_hosts(
        &mut world,
        &topo,
        vec![Box::new(L2Learning::new())],
        FabricOptions::default(),
        |i, mac, ip| {
            let host = Host::new(mac, ip).with_gratuitous_arp();
            if i == 1 {
                host.with_workload(Workload::Ping {
                    dst: default_ip(3),
                    count: 5,
                    interval: Duration::from_millis(20),
                    start: Instant::from_millis(500),
                })
            } else {
                host
            }
        },
    );
    world.run_until(Instant::from_secs(2));
    let h1 = world.node_as::<Host>(fabric.hosts[1]);
    assert_eq!(h1.stats.ping_rtts.count(), 5);
}

#[test]
fn acl_blocks_matching_traffic_only() {
    let topo = Topology::line(2, LinkParams::default()).with_host_per_switch();
    let deny_udp_9 = FlowMatch::ANY.with_ip_proto(17).with_l4_dst(9);
    let mut world = World::new(2);
    let fabric = build_fabric_with_hosts(
        &mut world,
        &topo,
        vec![
            Box::new(Acl::new(vec![deny_udp_9])),
            Box::new(ReactiveForwarding::new()),
        ],
        FabricOptions::default(),
        |i, mac, ip| {
            let host = Host::new(mac, ip).with_gratuitous_arp();
            if i == 0 {
                host.with_workload(Workload::Udp {
                    dst: default_ip(1),
                    dst_port: 9, // denied
                    size: 64,
                    count: 5,
                    interval: Duration::from_millis(10),
                    start: Instant::from_millis(500),
                })
                .with_workload(Workload::Udp {
                    dst: default_ip(1),
                    dst_port: 10, // allowed
                    size: 64,
                    count: 5,
                    interval: Duration::from_millis(10),
                    start: Instant::from_millis(500),
                })
            } else {
                host
            }
        },
    );
    world.run_until(Instant::from_secs(2));
    let h1 = world.node_as::<Host>(fabric.hosts[1]);
    assert_eq!(h1.stats.udp_rx, 5, "only the allowed flow arrives");
}

#[test]
fn proactive_fabric_full_reachability_with_zero_data_punts() {
    let topo = Topology::fat_tree(4, LinkParams::default());
    let n_hosts = topo.host_count();
    let expected_links = 2 * topo.links.len();

    // First pass: build to learn addressing, then construct for real.
    let mut world = World::new(9);
    let host_inventory: Vec<zen_core::apps::proactive::StaticHost> = {
        // Predict attachments: build a scratch world.
        let mut scratch = World::new(9);
        let f = build_fabric(&mut scratch, &topo, vec![], FabricOptions::default());
        f.static_hosts()
    };

    let fabric = build_fabric_with_hosts(
        &mut world,
        &topo,
        vec![Box::new(ProactiveFabric::new(
            host_inventory,
            topo.switches,
            expected_links,
        ))],
        FabricOptions::default(),
        |i, mac, ip| {
            // Every host sends to the "next" host, addressed to the
            // fabric gateway MAC (no ARP).
            let dst = default_ip((i + 1) % n_hosts);
            Host::new(mac, ip)
                .with_static_arp(dst, FABRIC_MAC)
                .with_workload(Workload::Udp {
                    dst,
                    dst_port: 9,
                    size: 200,
                    count: 20,
                    interval: Duration::from_millis(5),
                    start: Instant::from_secs(1), // after programming
                })
        },
    );
    world.run_until(Instant::from_secs(3));

    // Every host received its 20 datagrams.
    for (i, &host) in fabric.hosts.iter().enumerate() {
        let h = world.node_as::<Host>(host);
        assert_eq!(h.stats.udp_rx, 20, "host {i} missed traffic");
    }
    // The data plane handled everything: no data-driven packet-ins after
    // programming (gratuitous ARPs at t=0 are the only punts).
    let controller = world.node_as::<Controller>(fabric.controller);
    let app = controller
        .app(0)
        .as_any()
        .downcast_ref::<ProactiveFabric>()
        .unwrap();
    assert!(app.programmed());
    assert!(
        controller.stats.packet_ins <= n_hosts as u64 + 5,
        "data traffic reached the controller: {} punts",
        controller.stats.packet_ins
    );
}

#[test]
fn proactive_fabric_survives_link_failure() {
    // Diamond: two disjoint paths between edge switches.
    let mut topo = Topology::ring(4, LinkParams::default());
    topo.hosts = vec![0, 2];
    let expected_links = 2 * topo.links.len();

    let inventory = {
        let mut scratch = World::new(4);
        build_fabric(&mut scratch, &topo, vec![], FabricOptions::default()).static_hosts()
    };

    let mut world = World::new(4);
    let fabric = build_fabric_with_hosts(
        &mut world,
        &topo,
        vec![Box::new(ProactiveFabric::new(
            inventory,
            topo.switches,
            expected_links,
        ))],
        FabricOptions::default(),
        |i, mac, ip| {
            let dst = default_ip(1 - i);
            Host::new(mac, ip)
                .with_static_arp(dst, FABRIC_MAC)
                .with_workload(Workload::Udp {
                    dst,
                    dst_port: 9,
                    size: 200,
                    count: 200,
                    interval: Duration::from_millis(10),
                    start: Instant::from_secs(1),
                })
        },
    );

    // Cut one ring link mid-run (t = 2s, during the flow).
    world.run_until(Instant::from_secs(2));
    let h1_before = world.node_as::<Host>(fabric.hosts[1]).stats.udp_rx;
    assert!(h1_before > 50, "traffic must be flowing before the cut");
    world.set_link_state(fabric.switch_links[0], false);
    world.run_until(Instant::from_secs(4));

    let h1 = world.node_as::<Host>(fabric.hosts[1]);
    // Some loss during reconvergence is allowed, but traffic must resume:
    // at least 90% of the 200 datagrams arrive.
    assert!(
        h1.stats.udp_rx >= 180,
        "too much loss after failure: {}/200",
        h1.stats.udp_rx
    );
}

#[test]
fn te_tunnels_carry_site_traffic() {
    // Triangle of sites, one host each; site i owns 10.i.0.0/16.
    let topo = {
        let mut t = Topology::ring(3, LinkParams::default());
        t.hosts = vec![0, 1, 2];
        t
    };
    let expected_links = 2 * topo.links.len();

    let site_ip = |site: usize| site_host_ip(site, 0);
    let inventory: Vec<zen_core::apps::proactive::StaticHost> = {
        let mut scratch = World::new(11);
        let f = build_fabric_with_hosts(
            &mut scratch,
            &topo,
            vec![],
            FabricOptions::default(),
            |i, mac, _| Host::new(mac, site_ip(i)),
        );
        f.static_hosts()
    };
    let prefixes = (0..3u64)
        .map(|s| (s, format!("10.{s}.0.0/16").parse().unwrap()))
        .collect();
    let demands = vec![
        SiteDemand {
            src: 0,
            dst: 1,
            rate_bps: 10_000_000,
        },
        SiteDemand {
            src: 0,
            dst: 2,
            rate_bps: 10_000_000,
        },
    ];
    let te = TrafficEngineering::new(
        prefixes,
        inventory,
        demands,
        1_000_000_000,
        2,
        3,
        expected_links,
    );

    let mut world = World::new(11);
    let fabric = build_fabric_with_hosts(
        &mut world,
        &topo,
        vec![Box::new(te)],
        FabricOptions::default(),
        |i, mac, _| {
            let host = Host::new(mac, site_ip(i));
            if i == 0 {
                host.with_static_arp(site_ip(1), FABRIC_MAC)
                    .with_static_arp(site_ip(2), FABRIC_MAC)
                    .with_workload(Workload::Udp {
                        dst: site_ip(1),
                        dst_port: 9,
                        size: 400,
                        count: 50,
                        interval: Duration::from_millis(5),
                        start: Instant::from_secs(1),
                    })
                    .with_workload(Workload::Udp {
                        dst: site_ip(2),
                        dst_port: 9,
                        size: 400,
                        count: 50,
                        interval: Duration::from_millis(5),
                        start: Instant::from_secs(1),
                    })
            } else {
                host
            }
        },
    );
    world.run_until(Instant::from_secs(3));

    for i in [1, 2] {
        let h = world.node_as::<Host>(fabric.hosts[i]);
        assert_eq!(h.stats.udp_rx, 50, "site {i} missed tunnel traffic");
    }
    let controller = world.node_as::<Controller>(fabric.controller);
    let app = controller
        .app(0)
        .as_any()
        .downcast_ref::<TrafficEngineering>()
        .unwrap();
    assert!(app.programmed());
    assert_eq!(app.last_rates.len(), 2);
    assert!(app.last_rates.iter().all(|&r| r == 10_000_000));
}

#[test]
fn agent_answers_echo_and_stats() {
    // Direct agent exercise without apps: check the switch side of the
    // protocol state machine through a raw controller.
    let topo = Topology::line(2, LinkParams::default()).with_host_per_switch();
    let mut world = World::new(21);
    let fabric = build_fabric(
        &mut world,
        &topo,
        vec![Box::new(ReactiveForwarding::new())],
        FabricOptions::default(),
    );
    world.run_until(Instant::from_secs(1));
    // Count: every switch registered and received feature handshakes.
    let controller = world.node_as::<Controller>(fabric.controller);
    assert!(controller.stats.msgs_received > 0);
    let agent = world.node_as::<SwitchAgent>(fabric.switches[0]);
    assert_eq!(agent.stats.decode_errors, 0);
    assert!(agent.stats.packet_outs > 0, "discovery LLDPs executed");
}

#[test]
fn silent_failure_detected_by_lldp_aging() {
    // Cut a ring link silently; the controller's LLDP aging must drop it
    // from the view and the fabric must reprogram around it.
    let mut topo = Topology::ring(4, LinkParams::default());
    topo.hosts = vec![0, 2];
    let inventory = {
        let mut scratch = World::new(6);
        build_fabric(&mut scratch, &topo, vec![], FabricOptions::default()).static_hosts()
    };
    let mut world = World::new(6);
    let fabric = build_fabric_with_hosts(
        &mut world,
        &topo,
        vec![Box::new(ProactiveFabric::new(
            inventory,
            topo.switches,
            2 * topo.links.len(),
        ))],
        FabricOptions::default(),
        |i, mac, ip| {
            let dst = default_ip(1 - i);
            Host::new(mac, ip)
                .with_static_arp(dst, zen_core::apps::proactive::FABRIC_MAC)
                .with_workload(Workload::Udp {
                    dst,
                    dst_port: 9,
                    size: 100,
                    count: 3000,
                    interval: Duration::from_millis(1),
                    start: Instant::from_secs(1),
                })
        },
    );
    world.run_until(Instant::from_millis(1500));
    let links_before = world
        .node_as::<Controller>(fabric.controller)
        .view
        .links
        .len();
    assert_eq!(links_before, 8);

    // Find and silently cut the loaded link.
    let victim = fabric
        .switch_links
        .iter()
        .copied()
        .max_by_key(|&l| {
            let link = world.link(l);
            link.ab.tx_bytes + link.ba.tx_bytes
        })
        .unwrap();
    world.schedule_link_state_silent(victim, false, Instant::from_secs(2));
    world.run_until(Instant::from_secs(5));

    let controller = world.node_as::<Controller>(fabric.controller);
    assert!(
        controller.view.links.len() <= 6,
        "silent failure never aged out: {} links",
        controller.view.links.len()
    );
    // Probes resumed: lose at most ~300 of 3000 (the aging window).
    let rx = world.node_as::<Host>(fabric.hosts[1]).stats.udp_rx;
    assert!(rx >= 2700, "too much loss after silent failure: {rx}/3000");
}

#[test]
fn monitor_app_collects_port_and_table_stats() {
    use zen_core::apps::Monitor;

    let topo = Topology::line(3, LinkParams::default()).with_host_per_switch();
    let mut world = World::new(12);
    let fabric = build_fabric_with_hosts(
        &mut world,
        &topo,
        vec![
            Box::new(ReactiveForwarding::new()),
            Box::new(Monitor::new(4)),
        ],
        FabricOptions::default(),
        |i, mac, ip| {
            let host = Host::new(mac, ip).with_gratuitous_arp();
            if i == 0 {
                host.with_workload(Workload::Udp {
                    dst: default_ip(2),
                    dst_port: 9,
                    size: 500,
                    count: 100,
                    interval: Duration::from_millis(10),
                    start: Instant::from_millis(500),
                })
            } else {
                host
            }
        },
    );
    world.run_until(Instant::from_secs(3));

    let controller = world.node_as::<Controller>(fabric.controller);
    let monitor = controller
        .app(1)
        .as_any()
        .downcast_ref::<Monitor>()
        .unwrap();
    assert!(monitor.polls > 0);
    assert!(monitor.replies >= monitor.polls, "every poll answered");
    // All three switches reported table stats with installed flows.
    let active_total: u32 = monitor
        .tables
        .iter()
        .filter(|((_, table), _)| *table == 0)
        .map(|(_, sample)| sample.active)
        .sum();
    assert!(active_total > 0, "no flows visible through stats");
    // The middle switch's transit ports carried the stream.
    assert!(monitor.total_tx_bytes() > 50_000);
    let busiest = monitor.busiest_ports();
    assert!(!busiest.is_empty());
    assert!(busiest[0].1 > 0.0, "no positive rate estimate");
}

#[test]
fn make_before_break_reconfig_is_hitless_under_jitter() {
    use zen_core::apps::te::UpdateStrategy;

    // A triangle of sites; site 0 streams to site 1 continuously while
    // the demand matrix changes at t=2s, forcing a live tunnel
    // reconfiguration under 10 ms control-channel jitter.
    fn run(strategy: UpdateStrategy) -> u64 {
        let topo = {
            let mut t = Topology::ring(3, LinkParams::default());
            t.hosts = vec![0, 1, 2];
            t
        };
        let expected_links = 2 * topo.links.len();
        let site_ip = |site: usize| site_host_ip(site, 0);
        let inventory: Vec<zen_core::apps::proactive::StaticHost> = {
            let mut scratch = World::new(13);
            let f = build_fabric_with_hosts(
                &mut scratch,
                &topo,
                vec![],
                FabricOptions::default(),
                |i, mac, _| Host::new(mac, site_ip(i)),
            );
            f.static_hosts()
        };
        let prefixes = (0..3u64)
            .map(|s| (s, format!("10.{s}.0.0/16").parse().unwrap()))
            .collect();
        let initial = vec![SiteDemand {
            src: 0,
            dst: 1,
            rate_bps: 50_000_000,
        }];
        let changed = vec![
            SiteDemand {
                src: 0,
                dst: 1,
                rate_bps: 200_000_000,
            },
            SiteDemand {
                src: 0,
                dst: 2,
                rate_bps: 200_000_000,
            },
        ];
        let mut te = TrafficEngineering::new(
            prefixes,
            inventory,
            initial,
            1_000_000_000,
            2,
            3,
            expected_links,
        );
        te.strategy = strategy;
        te.scheduled_demands = Some((2_000_000_000, changed));

        let mut world = World::new(13);
        let probes = 4000u64;
        let fabric = build_fabric_with_hosts(
            &mut world,
            &topo,
            vec![Box::new(te)],
            FabricOptions::default(),
            |i, mac, _| {
                let host = Host::new(mac, site_ip(i))
                    .with_static_arp(site_ip(1), FABRIC_MAC)
                    .with_static_arp(site_ip(2), FABRIC_MAC)
                    .with_static_arp(site_ip(0), FABRIC_MAC);
                if i == 0 {
                    host.with_workload(Workload::Udp {
                        dst: site_ip(1),
                        dst_port: 9,
                        size: 200,
                        count: probes,
                        interval: Duration::from_micros(500), // 2 kHz
                        start: Instant::from_secs(1),
                    })
                } else {
                    host
                }
            },
        );
        world.set_control_jitter(Duration::from_millis(10));
        world.run_until(Instant::from_secs(4));

        let controller = world.node_as::<Controller>(fabric.controller);
        let app = controller
            .app(0)
            .as_any()
            .downcast_ref::<TrafficEngineering>()
            .unwrap();
        assert!(app.installs >= 2, "reconfiguration never happened");
        probes - world.node_as::<Host>(fabric.hosts[1]).stats.udp_rx
    }

    let hitless = run(UpdateStrategy::MakeBeforeBreak);
    let teardown = run(UpdateStrategy::TearDownFirst);
    assert_eq!(hitless, 0, "make-before-break must be hitless");
    assert!(
        teardown > hitless,
        "teardown-first should lose packets under jitter (lost {teardown})"
    );
}
