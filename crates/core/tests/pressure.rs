//! Table-pressure soak: a two-switch fabric with tiny capacity-bounded
//! flow tables under sustained host-pair churn.
//!
//! The evict-policy soak asserts the full backpressure loop: occupancy
//! never exceeds the bound, every capacity eviction surfaces at the
//! controller as `FlowRemoved { reason: Eviction }`, no flow-mod acks
//! are lost, and a fixed-seed replay is byte-identical down to the
//! telemetry export. Ignored by default; CI runs it explicitly:
//!
//! ```text
//! cargo test --release -p zen-core --test pressure -- --ignored
//! ```
//!
//! The refuse-policy test (normal pass) asserts the other overflow
//! mode: bounced adds come back as TABLE_FULL, the ack machinery
//! retires them as failed instead of retransmitting forever, the app
//! backs off, and traffic still flows controller-mediated.

use zen_core::apps::{Monitor, ReactiveForwarding};
use zen_core::harness::{build_fabric_with_hosts, default_host_ip, FabricOptions};
use zen_core::{export_jsonl, AgentConfig, Controller, SwitchAgent};
use zen_dataplane::OverflowPolicy;
use zen_sim::{Duration, Host, Instant, LinkParams, Topology, Workload, World};

/// The fixed seed. The whole scenario is a pure function of it; any
/// failure reproduces exactly by rerunning.
const SOAK_SEED: u64 = 0x7AB1_E501;

/// The soak runs at the acceptance bound: 24 hosts each streaming to 16
/// neighbours demand ~288 distinct (src, dst) entries per switch —
/// comfortably past a 256-entry table.
const SOAK_HOSTS: usize = 24;
const SOAK_FANOUT: usize = 16;
const SOAK_CAP: usize = 256;

/// Everything observable the run produced, compared across replays.
#[derive(Debug, PartialEq, Eq)]
struct PressureDigest {
    events: u64,
    msgs_sent: u64,
    msgs_received: u64,
    mods_acked: u64,
    evictions_noted: u64,
    evictions_reported: u64,
    final_occupancy: Vec<usize>,
    udp_delivered: u64,
    export: String,
}

/// A two-switch line with hosts split evenly, every host streaming UDP
/// to its next `fanout` neighbours with staggered starts — enough
/// distinct (src, dst) pairs to churn a `cap`-entry table. Workload
/// starts are spread over ~0.5–4.5 s so churn is sustained, not a
/// single burst.
fn churn_world(
    seed: u64,
    n_hosts: usize,
    fanout: usize,
    cap: usize,
    policy: OverflowPolicy,
) -> (World, zen_core::harness::Fabric) {
    let mut topo = Topology::line(2, LinkParams::default());
    topo.hosts = (0..n_hosts).map(|i| i % 2).collect();
    let mut world = World::new(seed);
    let opts = FabricOptions {
        agent_cfg: AgentConfig {
            table_limit: Some((cap, policy)),
            ..AgentConfig::default()
        },
        ..FabricOptions::default()
    };
    let fabric = build_fabric_with_hosts(
        &mut world,
        &topo,
        vec![
            Box::new(ReactiveForwarding::new()),
            Box::new(Monitor::new(4)),
        ],
        opts,
        |i, mac, ip| {
            let mut host = Host::new(mac, ip).with_gratuitous_arp();
            for k in 1..=fanout {
                let dst = (i + k) % n_hosts;
                let slot = (i * fanout + k) as u64;
                host = host.with_workload(Workload::Udp {
                    dst: default_host_ip(dst),
                    dst_port: 7000 + k as u16,
                    size: 64,
                    count: 20,
                    interval: Duration::from_millis(15),
                    start: Instant::from_millis(500 + slot * 4_000 / (n_hosts * fanout) as u64),
                });
            }
            host
        },
    );
    (world, fabric)
}

fn evict_soak(seed: u64) -> PressureDigest {
    let (mut world, fabric) = churn_world(
        seed,
        SOAK_HOSTS,
        SOAK_FANOUT,
        SOAK_CAP,
        OverflowPolicy::Evict,
    );
    world.run_until(Instant::from_secs(5));

    let mut evictions_reported = 0;
    let mut final_occupancy = Vec::new();
    for (i, &sw) in fabric.switches.iter().enumerate() {
        let agent = world.node_as::<SwitchAgent>(sw);
        // The capacity bound held: the table never grows past it, so
        // the final occupancy cannot exceed it either.
        let table = agent.dp.table(0);
        assert!(
            table.len() <= SOAK_CAP,
            "switch {i} occupancy {} over bound {SOAK_CAP} (seed {seed:#x})",
            table.len()
        );
        assert!(
            table.evictions > 0,
            "switch {i} never evicted — the workload is not pressuring (seed {seed:#x})"
        );
        assert_eq!(
            table.refusals, 0,
            "evict policy must never refuse (seed {seed:#x})"
        );
        evictions_reported += agent.stats.evictions_reported;
        final_occupancy.push(table.len());
    }

    let controller = world.node_as::<Controller>(fabric.controller);
    // Every eviction the switches performed surfaced at the master as
    // FLOW_REMOVED { reason: Eviction } — none were silently dropped.
    assert!(evictions_reported > 0, "no evictions reported");
    assert_eq!(
        controller.stats.evictions_noted, evictions_reported,
        "eviction notices lost between agent and master (seed {seed:#x})"
    );
    // Zero lost acks: nothing pending, nothing failed, nothing bounced.
    assert_eq!(controller.pending_mods(), 0, "mods still pending");
    assert_eq!(controller.stats.mods_failed, 0, "mods lost");
    assert_eq!(
        controller.stats.table_full_errors, 0,
        "evict policy bounced"
    );
    // The Monitor folded the pressure into its typed stats.
    let monitor = controller.find_app::<Monitor>().expect("monitor installed");
    assert!(monitor.total_evictions() > 0, "monitor saw no evictions");
    for (i, _) in fabric.switches.iter().enumerate() {
        let occ = monitor
            .table_occupancy(i as u64, 0)
            .expect("bounded table has occupancy");
        assert!(occ <= 1.0, "monitor occupancy {occ} over 1.0");
    }

    // Churned or not, the traffic itself was delivered.
    let mut udp_delivered = 0;
    for &h in &fabric.hosts {
        udp_delivered += world.node_as::<Host>(h).stats.udp_rx;
    }
    assert!(
        udp_delivered >= (SOAK_HOSTS * SOAK_FANOUT * 20) as u64 * 9 / 10,
        "churn dropped traffic: {udp_delivered} (seed {seed:#x})"
    );

    let stats = world.node_as::<Controller>(fabric.controller).stats;
    let export = export_jsonl(&mut world, fabric.controller);
    PressureDigest {
        events: world.events_processed(),
        msgs_sent: stats.msgs_sent,
        msgs_received: stats.msgs_received,
        mods_acked: stats.mods_acked,
        evictions_noted: stats.evictions_noted,
        evictions_reported,
        final_occupancy,
        udp_delivered,
        export,
    }
}

#[test]
#[ignore = "table-pressure soak: run explicitly (CI does) — simulates ~5 s of fabric time twice"]
fn evict_soak_bounds_occupancy_and_replays_identically() {
    let first = evict_soak(SOAK_SEED);
    // The run is a pure function of the seed: a replay must produce an
    // identical trace down to the telemetry export bytes.
    let second = evict_soak(SOAK_SEED);
    assert_eq!(
        first, second,
        "replay diverged from first run (seed {SOAK_SEED:#x})"
    );
}

#[test]
fn refuse_policy_reports_failed_mods_and_backpressures() {
    let (n_hosts, fanout, cap) = (8, 4, 8);
    let (mut world, fabric) = churn_world(SOAK_SEED, n_hosts, fanout, cap, OverflowPolicy::Refuse);
    world.run_until(Instant::from_secs(5));

    let mut rejected = 0;
    for (i, &sw) in fabric.switches.iter().enumerate() {
        let agent = world.node_as::<SwitchAgent>(sw);
        let table = agent.dp.table(0);
        assert!(
            table.len() <= cap,
            "switch {i} occupancy {} over bound {cap}",
            table.len()
        );
        assert_eq!(table.evictions, 0, "refuse policy must never evict");
        rejected += agent.stats.table_full_rejected;
    }
    assert!(rejected > 0, "workload never filled a table");

    let controller = world.node_as::<Controller>(fabric.controller);
    // Every bounce surfaced as a TABLE_FULL error and retired its mod
    // through the ack machinery: nothing pending, nothing silently
    // retransmitting against a full table. Retransmissions that crossed
    // the error in flight can bounce again, so errors >= failures.
    assert!(controller.stats.table_full_errors > 0, "no TABLE_FULL seen");
    assert!(controller.stats.mods_failed > 0, "bounced mods not retired");
    assert!(
        controller.stats.mods_failed <= controller.stats.table_full_errors,
        "more retirements than errors"
    );
    assert_eq!(controller.pending_mods(), 0, "mods still pending");
    // Every sent flow-mod was accounted for: acked or retired. No
    // silent drops.
    assert_eq!(
        controller.stats.mods_acked + controller.stats.mods_failed,
        controller.stats.flow_mods,
        "flow-mods neither acked nor retired"
    );
    // The app heard the backpressure and backed off.
    let fwd = controller
        .find_app::<ReactiveForwarding>()
        .expect("forwarder installed");
    assert!(fwd.table_full_events > 0, "app never notified");
    // Refused installs or not, traffic still moved controller-mediated.
    let mut udp_delivered = 0;
    for &h in &fabric.hosts {
        udp_delivered += world.node_as::<Host>(h).stats.udp_rx;
    }
    assert!(
        udp_delivered >= (n_hosts * fanout * 20) as u64 * 9 / 10,
        "refusals dropped traffic: {udp_delivered}"
    );
}
