//! Property tests for the path algorithms on random graphs.

use proptest::prelude::*;
use std::collections::BTreeSet;

use zen_graph::{
    bellman_ford, connected_components, dijkstra, dists_to, ecmp_next_hops, k_shortest_paths,
    max_flow, min_spanning_tree, Graph,
};

/// A random graph as (node count, edge list).
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(u32, u32, u64, u64)>)> {
    (2usize..20).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (
                0..n as u32,
                0..n as u32,
                1u64..100,
                1u64..1000,
            ),
            0..60,
        );
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(u32, u32, u64, u64)]) -> Graph {
    let mut g = Graph::with_nodes(n);
    for &(a, b, w, c) in edges {
        if a != b {
            g.add_edge(a, b, w, c);
        }
    }
    g
}

proptest! {
    #[test]
    fn dijkstra_matches_bellman_ford((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        for src in 0..n as u32 {
            prop_assert_eq!(dijkstra(&g, src).dist, bellman_ford(&g, src));
        }
    }

    #[test]
    fn shortest_paths_are_consistent((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let sp = dijkstra(&g, 0);
        for v in 0..n as u32 {
            if let Some(path) = sp.path_to(&g, v) {
                // The reconstructed path is connected, starts at 0, ends
                // at v, and its edge weights sum to dist.
                prop_assert_eq!(path.nodes[0], 0);
                prop_assert_eq!(*path.nodes.last().unwrap(), v);
                let mut cost = 0;
                for (i, &e) in path.edges.iter().enumerate() {
                    let edge = g.edge(e);
                    prop_assert_eq!(edge.from, path.nodes[i]);
                    prop_assert_eq!(edge.to, path.nodes[i + 1]);
                    cost += edge.weight;
                }
                prop_assert_eq!(cost, sp.dist[v as usize]);
            }
        }
    }

    #[test]
    fn yen_paths_sorted_distinct_loopless((n, edges) in arb_graph(), k in 1usize..6) {
        let g = build(n, &edges);
        let dst = (n - 1) as u32;
        let paths = k_shortest_paths(&g, 0, dst, k);
        prop_assert!(paths.len() <= k);
        // Sorted by cost.
        for w in paths.windows(2) {
            prop_assert!(w[0].cost <= w[1].cost);
        }
        // Distinct and loopless; first equals Dijkstra's optimum.
        let mut seen = BTreeSet::new();
        for p in &paths {
            prop_assert!(seen.insert(p.nodes.clone()), "duplicate path");
            let set: BTreeSet<_> = p.nodes.iter().collect();
            prop_assert_eq!(set.len(), p.nodes.len(), "loop in path");
        }
        if let Some(first) = paths.first() {
            prop_assert_eq!(first.cost, dijkstra(&g, 0).dist[dst as usize]);
        }
    }

    #[test]
    fn ecmp_hops_all_lie_on_shortest_paths((n, edges) in arb_graph()) {
        // Symmetrize so dists_to is valid.
        let mut g = Graph::with_nodes(n);
        for &(a, b, w, c) in &edges {
            if a != b {
                g.add_undirected(a, b, w, c);
            }
        }
        let dst = (n - 1) as u32;
        let dist = dists_to(&g, dst);
        for u in 0..n as u32 {
            for e in ecmp_next_hops(&g, u, &dist) {
                let edge = g.edge(e);
                prop_assert_eq!(
                    edge.weight + dist[edge.to as usize],
                    dist[u as usize],
                    "edge {}->{} not on a shortest path", edge.from, edge.to
                );
            }
        }
    }

    #[test]
    fn max_flow_bounded_by_cuts((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let dst = (n - 1) as u32;
        let flow = max_flow(&g, 0, dst);
        // Source-side and sink-side degree cuts bound the flow.
        let out_cap: u64 = g.out_edges(0).iter().map(|&e| g.edge(e).capacity).sum();
        let in_cap: u64 = g.in_edges(dst).iter().map(|&e| g.edge(e).capacity).sum();
        prop_assert!(flow <= out_cap);
        prop_assert!(flow <= in_cap);
        // Flow is positive iff dst is reachable with positive capacity.
        let reachable = dijkstra(&g, 0).reachable(dst);
        if !reachable {
            prop_assert_eq!(flow, 0);
        }
    }

    #[test]
    fn mst_connects_components((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let comps_before = {
            let ids = connected_components(&g);
            ids.iter().collect::<BTreeSet<_>>().len()
        };
        let mst = min_spanning_tree(&g);
        // |MST| == n - #components.
        prop_assert_eq!(mst.len(), n - comps_before);
        // The MST edges alone reproduce the same components.
        let mut tree = Graph::with_nodes(n);
        for &e in &mst {
            let edge = g.edge(e);
            tree.add_edge(edge.from, edge.to, edge.weight, 0);
        }
        let a = connected_components(&g);
        let b = connected_components(&tree);
        // Same partition (up to renaming): equal pairs-in-same-set.
        for x in 0..n {
            for y in 0..n {
                prop_assert_eq!(a[x] == a[y], b[x] == b[y]);
            }
        }
    }
}
