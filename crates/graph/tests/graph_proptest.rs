//! Randomized tests for the path algorithms on random graphs.
//!
//! Driven by the in-tree deterministic [`Lcg`] generator with fixed
//! seeds, so every run exercises the same reproducible graphs.

use std::collections::BTreeSet;

use zen_graph::{
    bellman_ford, connected_components, dijkstra, dists_to, ecmp_next_hops, k_shortest_paths,
    max_flow, min_spanning_tree, Graph,
};
use zen_wire::lcg::Lcg;

const CASES: usize = 150;

/// A random graph as (node count, edge list).
fn gen_graph(rng: &mut Lcg) -> (usize, Vec<(u32, u32, u64, u64)>) {
    let n = 2 + rng.gen_index(18);
    let edges = (0..rng.gen_index(60))
        .map(|_| {
            (
                rng.gen_range(n as u64) as u32,
                rng.gen_range(n as u64) as u32,
                1 + rng.gen_range(99),
                1 + rng.gen_range(999),
            )
        })
        .collect();
    (n, edges)
}

fn build(n: usize, edges: &[(u32, u32, u64, u64)]) -> Graph {
    let mut g = Graph::with_nodes(n);
    for &(a, b, w, c) in edges {
        if a != b {
            g.add_edge(a, b, w, c);
        }
    }
    g
}

#[test]
fn dijkstra_matches_bellman_ford() {
    let mut rng = Lcg::new(0x6A01);
    for _ in 0..CASES {
        let (n, edges) = gen_graph(&mut rng);
        let g = build(n, &edges);
        for src in 0..n as u32 {
            assert_eq!(dijkstra(&g, src).dist, bellman_ford(&g, src));
        }
    }
}

#[test]
fn shortest_paths_are_consistent() {
    let mut rng = Lcg::new(0x6A02);
    for _ in 0..CASES {
        let (n, edges) = gen_graph(&mut rng);
        let g = build(n, &edges);
        let sp = dijkstra(&g, 0);
        for v in 0..n as u32 {
            if let Some(path) = sp.path_to(&g, v) {
                // The reconstructed path is connected, starts at 0, ends
                // at v, and its edge weights sum to dist.
                assert_eq!(path.nodes[0], 0);
                assert_eq!(*path.nodes.last().unwrap(), v);
                let mut cost = 0;
                for (i, &e) in path.edges.iter().enumerate() {
                    let edge = g.edge(e);
                    assert_eq!(edge.from, path.nodes[i]);
                    assert_eq!(edge.to, path.nodes[i + 1]);
                    cost += edge.weight;
                }
                assert_eq!(cost, sp.dist[v as usize]);
            }
        }
    }
}

#[test]
fn yen_paths_sorted_distinct_loopless() {
    let mut rng = Lcg::new(0x6A03);
    for _ in 0..CASES {
        let (n, edges) = gen_graph(&mut rng);
        let k = 1 + rng.gen_index(5);
        let g = build(n, &edges);
        let dst = (n - 1) as u32;
        let paths = k_shortest_paths(&g, 0, dst, k);
        assert!(paths.len() <= k);
        // Sorted by cost.
        for w in paths.windows(2) {
            assert!(w[0].cost <= w[1].cost);
        }
        // Distinct and loopless; first equals Dijkstra's optimum.
        let mut seen = BTreeSet::new();
        for p in &paths {
            assert!(seen.insert(p.nodes.clone()), "duplicate path");
            let set: BTreeSet<_> = p.nodes.iter().collect();
            assert_eq!(set.len(), p.nodes.len(), "loop in path");
        }
        if let Some(first) = paths.first() {
            assert_eq!(first.cost, dijkstra(&g, 0).dist[dst as usize]);
        }
    }
}

#[test]
fn ecmp_hops_all_lie_on_shortest_paths() {
    let mut rng = Lcg::new(0x6A04);
    for _ in 0..CASES {
        let (n, edges) = gen_graph(&mut rng);
        // Symmetrize so dists_to is valid.
        let mut g = Graph::with_nodes(n);
        for &(a, b, w, c) in &edges {
            if a != b {
                g.add_undirected(a, b, w, c);
            }
        }
        let dst = (n - 1) as u32;
        let dist = dists_to(&g, dst);
        for u in 0..n as u32 {
            for e in ecmp_next_hops(&g, u, &dist) {
                let edge = g.edge(e);
                assert_eq!(
                    edge.weight + dist[edge.to as usize],
                    dist[u as usize],
                    "edge {}->{} not on a shortest path",
                    edge.from,
                    edge.to
                );
            }
        }
    }
}

#[test]
fn max_flow_bounded_by_cuts() {
    let mut rng = Lcg::new(0x6A05);
    for _ in 0..CASES {
        let (n, edges) = gen_graph(&mut rng);
        let g = build(n, &edges);
        let dst = (n - 1) as u32;
        let flow = max_flow(&g, 0, dst);
        // Source-side and sink-side degree cuts bound the flow.
        let out_cap: u64 = g.out_edges(0).iter().map(|&e| g.edge(e).capacity).sum();
        let in_cap: u64 = g.in_edges(dst).iter().map(|&e| g.edge(e).capacity).sum();
        assert!(flow <= out_cap);
        assert!(flow <= in_cap);
        // Flow is positive iff dst is reachable with positive capacity.
        let reachable = dijkstra(&g, 0).reachable(dst);
        if !reachable {
            assert_eq!(flow, 0);
        }
    }
}

#[test]
fn mst_connects_components() {
    let mut rng = Lcg::new(0x6A06);
    for _ in 0..CASES {
        let (n, edges) = gen_graph(&mut rng);
        let g = build(n, &edges);
        let comps_before = {
            let ids = connected_components(&g);
            ids.iter().collect::<BTreeSet<_>>().len()
        };
        let mst = min_spanning_tree(&g);
        // |MST| == n - #components.
        assert_eq!(mst.len(), n - comps_before);
        // The MST edges alone reproduce the same components.
        let mut tree = Graph::with_nodes(n);
        for &e in &mst {
            let edge = g.edge(e);
            tree.add_edge(edge.from, edge.to, edge.weight, 0);
        }
        let a = connected_components(&g);
        let b = connected_components(&tree);
        // Same partition (up to renaming): equal pairs-in-same-set.
        for x in 0..n {
            for y in 0..n {
                assert_eq!(a[x] == a[y], b[x] == b[y]);
            }
        }
    }
}
