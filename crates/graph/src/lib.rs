//! # zen-graph — network graphs and path algorithms
//!
//! The routing substrate shared by the SDN controller, the distributed
//! routing baselines, and the traffic-engineering crate: a compact
//! directed weighted graph plus the path algorithms network control
//! planes are built from — Dijkstra, Bellman-Ford, equal-cost multipath
//! next-hop sets, Yen's k-shortest paths, BFS, connected components,
//! minimum spanning trees, and Edmonds-Karp max-flow.
//!
//! Nodes are dense `u32` indices; edges are directed and carry an integer
//! `weight` (metric) and `capacity` (e.g. bits/sec), so one graph serves
//! both shortest-path routing and flow allocation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flow;
pub mod paths;

pub use flow::max_flow;
pub use paths::{
    bellman_ford, bfs_tree, connected_components, dijkstra, dists_to, ecmp_next_hops,
    k_shortest_paths, Path, ShortestPaths,
};

/// A node index in a [`Graph`].
pub type NodeIx = u32;

/// An edge index in a [`Graph`].
pub type EdgeIx = u32;

/// A directed edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Source node.
    pub from: NodeIx,
    /// Destination node.
    pub to: NodeIx,
    /// Routing metric (additive along a path).
    pub weight: u64,
    /// Capacity, e.g. in bits/sec; used by flow algorithms, ignored by
    /// shortest paths.
    pub capacity: u64,
}

/// A directed weighted graph with dense node indices.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    edges: Vec<Edge>,
    out: Vec<Vec<EdgeIx>>,
    r#in: Vec<Vec<EdgeIx>>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Graph {
        Graph::default()
    }

    /// A graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Graph {
        Graph {
            edges: Vec::new(),
            out: vec![Vec::new(); n],
            r#in: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Add a node, returning its index.
    pub fn add_node(&mut self) -> NodeIx {
        self.out.push(Vec::new());
        self.r#in.push(Vec::new());
        (self.out.len() - 1) as NodeIx
    }

    /// Add a directed edge.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: NodeIx, to: NodeIx, weight: u64, capacity: u64) -> EdgeIx {
        assert!((from as usize) < self.out.len() && (to as usize) < self.out.len());
        let ix = self.edges.len() as EdgeIx;
        self.edges.push(Edge {
            from,
            to,
            weight,
            capacity,
        });
        self.out[from as usize].push(ix);
        self.r#in[to as usize].push(ix);
        ix
    }

    /// Add a pair of opposing directed edges; returns their indices.
    pub fn add_undirected(
        &mut self,
        a: NodeIx,
        b: NodeIx,
        weight: u64,
        capacity: u64,
    ) -> (EdgeIx, EdgeIx) {
        (
            self.add_edge(a, b, weight, capacity),
            self.add_edge(b, a, weight, capacity),
        )
    }

    /// Look up an edge.
    pub fn edge(&self, ix: EdgeIx) -> &Edge {
        &self.edges[ix as usize]
    }

    /// All edges in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Outgoing edge indices of `node`.
    pub fn out_edges(&self, node: NodeIx) -> &[EdgeIx] {
        &self.out[node as usize]
    }

    /// Incoming edge indices of `node`.
    pub fn in_edges(&self, node: NodeIx) -> &[EdgeIx] {
        &self.r#in[node as usize]
    }

    /// The first edge from `from` to `to`, if any.
    pub fn find_edge(&self, from: NodeIx, to: NodeIx) -> Option<EdgeIx> {
        self.out[from as usize]
            .iter()
            .copied()
            .find(|&e| self.edges[e as usize].to == to)
    }

    /// Out-neighbours of `node` (may repeat under parallel edges).
    pub fn neighbors(&self, node: NodeIx) -> impl Iterator<Item = NodeIx> + '_ {
        self.out[node as usize]
            .iter()
            .map(move |&e| self.edges[e as usize].to)
    }
}

/// A disjoint-set (union-find) structure with path compression and union
/// by rank.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    /// The representative of `x`'s set.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Merge the sets containing `a` and `b`. Returns `false` if they were
    /// already joined.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        true
    }
}

/// Kruskal's minimum spanning tree over the *undirected interpretation*
/// of the graph (each directed edge considered as an undirected
/// candidate). Returns chosen edge indices.
pub fn min_spanning_tree(graph: &Graph) -> Vec<EdgeIx> {
    let mut order: Vec<EdgeIx> = (0..graph.edge_count() as EdgeIx).collect();
    order.sort_by_key(|&e| graph.edge(e).weight);
    let mut uf = UnionFind::new(graph.node_count());
    let mut chosen = Vec::new();
    for e in order {
        let edge = graph.edge(e);
        if uf.union(edge.from, edge.to) {
            chosen.push(e);
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut g = Graph::with_nodes(3);
        let e = g.add_edge(0, 1, 5, 100);
        g.add_undirected(1, 2, 3, 50);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.edge(e).weight, 5);
        assert_eq!(g.find_edge(0, 1), Some(e));
        assert_eq!(g.find_edge(1, 0), None);
        assert_eq!(g.neighbors(1).collect::<Vec<_>>(), vec![2]);
        assert_eq!(g.in_edges(1).len(), 2);
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.find(0), uf.find(2));
        assert_ne!(uf.find(0), uf.find(3));
    }

    #[test]
    fn mst_picks_light_edges() {
        // Triangle 0-1 (1), 1-2 (2), 0-2 (10): MST = the two light edges.
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1, 1, 0);
        g.add_edge(1, 2, 2, 0);
        g.add_edge(0, 2, 10, 0);
        let mst = min_spanning_tree(&g);
        assert_eq!(mst.len(), 2);
        let total: u64 = mst.iter().map(|&e| g.edge(e).weight).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn mst_spans_components_independently() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(0, 1, 1, 0);
        g.add_edge(2, 3, 1, 0);
        assert_eq!(min_spanning_tree(&g).len(), 2);
    }
}
