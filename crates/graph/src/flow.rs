//! Maximum flow via Edmonds-Karp (BFS augmenting paths).
//!
//! Used by the traffic-engineering crate to bound achievable throughput
//! between sites, and by tests as an oracle for allocation quality.

use std::collections::VecDeque;

use crate::{Graph, NodeIx};

/// The value of a maximum `src`→`dst` flow respecting edge capacities.
///
/// Edge `weight` is ignored; parallel edges contribute their combined
/// capacity. Returns 0 if `src == dst` has no outgoing capacity path.
pub fn max_flow(graph: &Graph, src: NodeIx, dst: NodeIx) -> u64 {
    if src == dst {
        return 0;
    }
    let n = graph.node_count();
    // Build a residual adjacency matrix-free representation: for each
    // original edge create a forward arc with its capacity and a backward
    // arc with 0.
    #[derive(Clone, Copy)]
    struct Arc {
        to: u32,
        cap: u64,
        rev: usize, // index of reverse arc in adj[to]
    }
    let mut adj: Vec<Vec<Arc>> = vec![Vec::new(); n];
    for edge in graph.edges() {
        let (u, v) = (edge.from as usize, edge.to as usize);
        let rev_u = adj[v].len();
        let rev_v = adj[u].len();
        adj[u].push(Arc {
            to: edge.to,
            cap: edge.capacity,
            rev: rev_u,
        });
        adj[v].push(Arc {
            to: edge.from,
            cap: 0,
            rev: rev_v,
        });
    }

    let mut flow = 0u64;
    loop {
        // BFS for an augmenting path, recording (node, arc index) parents.
        let mut parent: Vec<Option<(u32, usize)>> = vec![None; n];
        let mut seen = vec![false; n];
        seen[src as usize] = true;
        let mut queue = VecDeque::from([src]);
        'bfs: while let Some(u) = queue.pop_front() {
            for (i, arc) in adj[u as usize].iter().enumerate() {
                if arc.cap > 0 && !seen[arc.to as usize] {
                    seen[arc.to as usize] = true;
                    parent[arc.to as usize] = Some((u, i));
                    if arc.to == dst {
                        break 'bfs;
                    }
                    queue.push_back(arc.to);
                }
            }
        }
        if !seen[dst as usize] {
            break;
        }
        // Find the bottleneck.
        let mut bottleneck = u64::MAX;
        let mut v = dst;
        while v != src {
            let (u, i) = parent[v as usize].unwrap();
            bottleneck = bottleneck.min(adj[u as usize][i].cap);
            v = u;
        }
        // Apply.
        let mut v = dst;
        while v != src {
            let (u, i) = parent[v as usize].unwrap();
            adj[u as usize][i].cap -= bottleneck;
            let rev = adj[u as usize][i].rev;
            adj[v as usize][rev].cap += bottleneck;
            v = u;
        }
        flow += bottleneck;
    }
    flow
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_path() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1, 1, 10);
        g.add_edge(1, 2, 1, 7);
        assert_eq!(max_flow(&g, 0, 2), 7);
    }

    #[test]
    fn parallel_paths_add() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(0, 1, 1, 10);
        g.add_edge(1, 3, 1, 10);
        g.add_edge(0, 2, 1, 5);
        g.add_edge(2, 3, 1, 5);
        assert_eq!(max_flow(&g, 0, 3), 15);
    }

    #[test]
    fn classic_crossover_network() {
        // The textbook example where a naive greedy needs the residual
        // back-edge: 0→1 (cap 10), 0→2 (10), 1→2 (1), 1→3 (10), 2→3 (10).
        let mut g = Graph::with_nodes(4);
        g.add_edge(0, 1, 1, 10);
        g.add_edge(0, 2, 1, 10);
        g.add_edge(1, 2, 1, 1);
        g.add_edge(1, 3, 1, 10);
        g.add_edge(2, 3, 1, 10);
        assert_eq!(max_flow(&g, 0, 3), 20);
    }

    #[test]
    fn disconnected_is_zero() {
        let g = Graph::with_nodes(2);
        assert_eq!(max_flow(&g, 0, 1), 0);
    }

    #[test]
    fn src_equals_dst() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(0, 1, 1, 5);
        assert_eq!(max_flow(&g, 0, 0), 0);
    }

    #[test]
    fn respects_min_cut() {
        // Two fat sources into a thin middle pipe.
        let mut g = Graph::with_nodes(5);
        g.add_edge(0, 1, 1, 100);
        g.add_edge(0, 2, 1, 100);
        g.add_edge(1, 3, 1, 100);
        g.add_edge(2, 3, 1, 100);
        g.add_edge(3, 4, 1, 9);
        assert_eq!(max_flow(&g, 0, 4), 9);
    }
}
