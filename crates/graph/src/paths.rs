//! Shortest paths, equal-cost multipath, and k-shortest paths.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};

use crate::{EdgeIx, Graph, NodeIx};

/// The result of a single-source shortest-path computation.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    /// The source node.
    pub source: NodeIx,
    /// `dist[v]` is the distance from the source, or `u64::MAX` if
    /// unreachable.
    pub dist: Vec<u64>,
    /// `parent_edge[v]` is the edge used to reach `v` on one shortest
    /// path, or `None` for the source and unreachable nodes.
    pub parent_edge: Vec<Option<EdgeIx>>,
}

impl ShortestPaths {
    /// Whether `v` is reachable from the source.
    pub fn reachable(&self, v: NodeIx) -> bool {
        self.dist[v as usize] != u64::MAX
    }

    /// Reconstruct a shortest path from the source to `dst`, as a node
    /// sequence `[source, ..., dst]`. `None` if unreachable.
    pub fn path_to(&self, graph: &Graph, dst: NodeIx) -> Option<Path> {
        if !self.reachable(dst) {
            return None;
        }
        let mut nodes = vec![dst];
        let mut edges = Vec::new();
        let mut cur = dst;
        while let Some(e) = self.parent_edge[cur as usize] {
            let edge = graph.edge(e);
            edges.push(e);
            cur = edge.from;
            nodes.push(cur);
        }
        nodes.reverse();
        edges.reverse();
        Some(Path {
            nodes,
            edges,
            cost: self.dist[dst as usize],
        })
    }
}

/// A path: node sequence, edge sequence, and total weight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// Nodes from source to destination, inclusive.
    pub nodes: Vec<NodeIx>,
    /// The edges traversed (`nodes.len() - 1` of them).
    pub edges: Vec<EdgeIx>,
    /// Sum of edge weights.
    pub cost: u64,
}

impl Path {
    /// Number of hops (edges).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the path is a single node (source == destination).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Dijkstra's algorithm from `source`. Ties are broken deterministically
/// by node index.
pub fn dijkstra(graph: &Graph, source: NodeIx) -> ShortestPaths {
    dijkstra_filtered(graph, source, &BTreeSet::new(), &BTreeSet::new())
}

/// Dijkstra with edge and node exclusion sets (the primitive Yen's
/// algorithm needs). Excluded nodes cannot be traversed (the source is
/// never excluded).
pub fn dijkstra_filtered(
    graph: &Graph,
    source: NodeIx,
    banned_edges: &BTreeSet<EdgeIx>,
    banned_nodes: &BTreeSet<NodeIx>,
) -> ShortestPaths {
    let n = graph.node_count();
    let mut dist = vec![u64::MAX; n];
    let mut parent_edge = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[source as usize] = 0;
    heap.push(Reverse((0u64, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for &e in graph.out_edges(u) {
            if banned_edges.contains(&e) {
                continue;
            }
            let edge = graph.edge(e);
            if banned_nodes.contains(&edge.to) {
                continue;
            }
            let nd = d.saturating_add(edge.weight);
            let entry = &mut dist[edge.to as usize];
            if nd < *entry
                || (nd == *entry && better_parent(graph, parent_edge[edge.to as usize], e))
            {
                let improved = nd < *entry;
                *entry = nd;
                parent_edge[edge.to as usize] = Some(e);
                if improved {
                    heap.push(Reverse((nd, edge.to)));
                }
            }
        }
    }
    ShortestPaths {
        source,
        dist,
        parent_edge,
    }
}

/// Deterministic tie-break: prefer the parent edge whose source node
/// index (then edge index) is smaller.
fn better_parent(graph: &Graph, current: Option<EdgeIx>, candidate: EdgeIx) -> bool {
    match current {
        None => true,
        Some(cur) => {
            let (cf, nf) = (graph.edge(cur).from, graph.edge(candidate).from);
            (nf, candidate) < (cf, cur)
        }
    }
}

/// Bellman-Ford from `source`. Weights are unsigned so no negative cycles
/// exist; provided as an independent oracle for property tests and as the
/// basis of distance-vector routing.
pub fn bellman_ford(graph: &Graph, source: NodeIx) -> Vec<u64> {
    let n = graph.node_count();
    let mut dist = vec![u64::MAX; n];
    dist[source as usize] = 0;
    for _ in 0..n.saturating_sub(1) {
        let mut changed = false;
        for edge in graph.edges() {
            let du = dist[edge.from as usize];
            if du == u64::MAX {
                continue;
            }
            let nd = du.saturating_add(edge.weight);
            if nd < dist[edge.to as usize] {
                dist[edge.to as usize] = nd;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

/// Breadth-first tree from `source`: `parent[v]` is the previous node, or
/// `None` for the source/unreachable.
pub fn bfs_tree(graph: &Graph, source: NodeIx) -> Vec<Option<NodeIx>> {
    let n = graph.node_count();
    let mut parent = vec![None; n];
    let mut seen = vec![false; n];
    seen[source as usize] = true;
    let mut queue = VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        for v in graph.neighbors(u) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                parent[v as usize] = Some(u);
                queue.push_back(v);
            }
        }
    }
    parent
}

/// Weakly connected components (edges treated as undirected). Returns a
/// component id per node, ids dense from 0.
pub fn connected_components(graph: &Graph) -> Vec<u32> {
    let n = graph.node_count();
    let mut uf = crate::UnionFind::new(n);
    for edge in graph.edges() {
        uf.union(edge.from, edge.to);
    }
    let mut ids = vec![u32::MAX; n];
    let mut next = 0;
    for v in 0..n as u32 {
        let root = uf.find(v);
        if ids[root as usize] == u32::MAX {
            ids[root as usize] = next;
            next += 1;
        }
        ids[v as usize] = ids[root as usize];
    }
    ids
}

/// The equal-cost next hops from `u` toward `dst`: every out-edge `(u,v)`
/// with `w(u,v) + dist(v, dst) == dist(u, dst)`.
///
/// `dist_to_dst` must be distances *to* `dst` — compute them with
/// [`dijkstra`] on the reversed graph, or use [`dists_to`] on a symmetric
/// graph.
pub fn ecmp_next_hops(graph: &Graph, u: NodeIx, dist_to_dst: &[u64]) -> Vec<EdgeIx> {
    let du = dist_to_dst[u as usize];
    if du == 0 || du == u64::MAX {
        return Vec::new();
    }
    graph
        .out_edges(u)
        .iter()
        .copied()
        .filter(|&e| {
            let edge = graph.edge(e);
            let dv = dist_to_dst[edge.to as usize];
            dv != u64::MAX && edge.weight.saturating_add(dv) == du
        })
        .collect()
}

/// Distances from every node *to* `dst`, assuming the graph is symmetric
/// (every edge has an equal-weight reverse edge), in which case they equal
/// distances *from* `dst`.
pub fn dists_to(graph: &Graph, dst: NodeIx) -> Vec<u64> {
    dijkstra(graph, dst).dist
}

/// Yen's algorithm: up to `k` loopless shortest paths from `src` to
/// `dst`, in nondecreasing cost order.
pub fn k_shortest_paths(graph: &Graph, src: NodeIx, dst: NodeIx, k: usize) -> Vec<Path> {
    let mut result: Vec<Path> = Vec::new();
    if k == 0 {
        return result;
    }
    let first = dijkstra(graph, src);
    let Some(best) = first.path_to(graph, dst) else {
        return result;
    };
    result.push(best);

    // Candidate set ordered by (cost, node sequence) for determinism,
    // plus the set of node sequences already consumed — candidates are
    // regenerated from the same spur roots every round, so without this
    // tombstone set a duplicate candidate would be re-inserted and
    // re-popped forever.
    let mut candidates: BTreeSet<(u64, Vec<NodeIx>, Vec<EdgeIx>)> = BTreeSet::new();
    let mut consumed: BTreeSet<Vec<NodeIx>> = BTreeSet::new();
    consumed.insert(result[0].nodes.clone());

    while result.len() < k {
        let last = result.last().unwrap().clone();
        for i in 0..last.edges.len() {
            let spur_node = last.nodes[i];
            let root_nodes = &last.nodes[..=i];
            let root_edges = &last.edges[..i];
            let root_cost: u64 = root_edges.iter().map(|&e| graph.edge(e).weight).sum();

            // Ban edges that would recreate already-found paths sharing
            // this root.
            let mut banned_edges = BTreeSet::new();
            for p in &result {
                if p.nodes.len() > i && p.nodes[..=i] == *root_nodes {
                    banned_edges.insert(p.edges[i]);
                }
            }
            // Ban root nodes (except the spur) to keep paths loopless.
            let banned_nodes: BTreeSet<NodeIx> = root_nodes[..i].iter().copied().collect();

            let spur = dijkstra_filtered(graph, spur_node, &banned_edges, &banned_nodes);
            if let Some(spur_path) = spur.path_to(graph, dst) {
                let mut nodes = root_nodes.to_vec();
                nodes.extend_from_slice(&spur_path.nodes[1..]);
                let mut edges = root_edges.to_vec();
                edges.extend_from_slice(&spur_path.edges);
                let cost = root_cost + spur_path.cost;
                if !consumed.contains(&nodes) {
                    candidates.insert((cost, nodes, edges));
                }
            }
        }
        let Some(next) = candidates.iter().next().cloned() else {
            break;
        };
        candidates.remove(&next);
        let (cost, nodes, edges) = next;
        consumed.insert(nodes.clone());
        result.push(Path { nodes, edges, cost });
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diamond: 0→1→3 (cost 2), 0→2→3 (cost 2), plus a slow direct 0→3.
    fn diamond() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_edge(0, 1, 1, 0);
        g.add_edge(1, 3, 1, 0);
        g.add_edge(0, 2, 1, 0);
        g.add_edge(2, 3, 1, 0);
        g.add_edge(0, 3, 5, 0);
        g
    }

    #[test]
    fn dijkstra_distances() {
        let g = diamond();
        let sp = dijkstra(&g, 0);
        assert_eq!(sp.dist, vec![0, 1, 1, 2]);
        let path = sp.path_to(&g, 3).unwrap();
        assert_eq!(path.cost, 2);
        assert_eq!(path.nodes.len(), 3);
    }

    #[test]
    fn dijkstra_unreachable() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1, 1, 0);
        let sp = dijkstra(&g, 0);
        assert!(!sp.reachable(2));
        assert!(sp.path_to(&g, 2).is_none());
    }

    #[test]
    fn dijkstra_deterministic_tiebreak() {
        // Two equal paths to 3; the parent must pick the smaller node.
        let g = diamond();
        let sp = dijkstra(&g, 0);
        let path = sp.path_to(&g, 3).unwrap();
        assert_eq!(path.nodes, vec![0, 1, 3]);
    }

    #[test]
    fn bellman_ford_matches_dijkstra() {
        let g = diamond();
        assert_eq!(bellman_ford(&g, 0), dijkstra(&g, 0).dist);
    }

    #[test]
    fn bfs_tree_reaches_all() {
        let g = diamond();
        let parent = bfs_tree(&g, 0);
        assert_eq!(parent[0], None);
        assert!(parent[1].is_some() && parent[2].is_some() && parent[3].is_some());
    }

    #[test]
    fn components() {
        let mut g = Graph::with_nodes(5);
        g.add_edge(0, 1, 1, 0);
        g.add_edge(2, 3, 1, 0);
        let ids = connected_components(&g);
        assert_eq!(ids[0], ids[1]);
        assert_eq!(ids[2], ids[3]);
        assert_ne!(ids[0], ids[2]);
        assert_ne!(ids[4], ids[0]);
        assert_ne!(ids[4], ids[2]);
    }

    #[test]
    fn ecmp_finds_both_diamond_arms() {
        let mut g = Graph::with_nodes(4);
        g.add_undirected(0, 1, 1, 0);
        g.add_undirected(1, 3, 1, 0);
        g.add_undirected(0, 2, 1, 0);
        g.add_undirected(2, 3, 1, 0);
        let dist = dists_to(&g, 3);
        let hops = ecmp_next_hops(&g, 0, &dist);
        assert_eq!(hops.len(), 2);
        let targets: Vec<NodeIx> = hops.iter().map(|&e| g.edge(e).to).collect();
        assert!(targets.contains(&1) && targets.contains(&2));
        // At the destination there are no next hops.
        assert!(ecmp_next_hops(&g, 3, &dist).is_empty());
    }

    #[test]
    fn yen_enumerates_in_cost_order() {
        let g = diamond();
        let paths = k_shortest_paths(&g, 0, 3, 5);
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].cost, 2);
        assert_eq!(paths[1].cost, 2);
        assert_eq!(paths[2].cost, 5);
        // All distinct.
        assert_ne!(paths[0].nodes, paths[1].nodes);
    }

    #[test]
    fn yen_loopless() {
        // Ring of 5: two simple paths between any pair.
        let mut g = Graph::with_nodes(5);
        for i in 0..5 {
            g.add_undirected(i, (i + 1) % 5, 1, 0);
        }
        let paths = k_shortest_paths(&g, 0, 2, 10);
        assert_eq!(paths.len(), 2);
        for p in &paths {
            let set: BTreeSet<_> = p.nodes.iter().collect();
            assert_eq!(set.len(), p.nodes.len(), "loop in {:?}", p.nodes);
        }
        assert_eq!(paths[0].cost, 2);
        assert_eq!(paths[1].cost, 3);
    }

    #[test]
    fn yen_k_zero_or_unreachable() {
        let g = diamond();
        assert!(k_shortest_paths(&g, 0, 3, 0).is_empty());
        let mut g2 = Graph::with_nodes(2);
        g2.add_node();
        assert!(k_shortest_paths(&g2, 0, 1, 3).is_empty());
    }
}
