//! # zen-te — centralized traffic engineering
//!
//! The algorithmic heart of B4/SWAN-style WAN controllers: given a
//! topology with link capacities and a demand matrix, compute an
//! approximately max-min fair allocation of rates onto a small set of
//! candidate paths per demand, with path splitting.
//!
//! The allocator is *quantum-based water-filling*: demands take turns
//! claiming one quantum of bandwidth along their best candidate path
//! that still has residual capacity (candidates are the k shortest
//! paths). A demand freezes when it is satisfied or no candidate has
//! room. With `k = 1` this degrades to single-shortest-path routing —
//! the baseline the TE experiments compare against.
//!
//! [`quantize_splits`] converts a fractional allocation into integer
//! bucket weights for SELECT-group installation (largest-remainder
//! method), mirroring how B4 quantizes splits into hardware ECMP
//! tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use zen_graph::{k_shortest_paths, EdgeIx, Graph, NodeIx, Path};

/// One entry of a demand matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Demand {
    /// Source node.
    pub src: NodeIx,
    /// Destination node.
    pub dst: NodeIx,
    /// Requested rate in bits/sec.
    pub rate_bps: u64,
}

/// A set of demands with convenience constructors.
#[derive(Debug, Clone, Default)]
pub struct DemandMatrix {
    /// The demands, in a fixed order (allocation is order-independent up
    /// to quantum granularity, but determinism matters).
    pub demands: Vec<Demand>,
}

impl DemandMatrix {
    /// An empty matrix.
    pub fn new() -> DemandMatrix {
        DemandMatrix::default()
    }

    /// Add one demand.
    pub fn push(&mut self, src: NodeIx, dst: NodeIx, rate_bps: u64) {
        self.demands.push(Demand { src, dst, rate_bps });
    }

    /// Uniform all-pairs demands of `rate_bps` between the given sites.
    pub fn all_pairs(sites: &[NodeIx], rate_bps: u64) -> DemandMatrix {
        let mut m = DemandMatrix::new();
        for &a in sites {
            for &b in sites {
                if a != b {
                    m.push(a, b, rate_bps);
                }
            }
        }
        m
    }

    /// Deterministic pseudo-random demands: `n` pairs drawn from `sites`
    /// with rates in `[lo, hi]`, from `seed`.
    pub fn random(sites: &[NodeIx], n: usize, lo: u64, hi: u64, seed: u64) -> DemandMatrix {
        assert!(sites.len() >= 2 && hi >= lo);
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut m = DemandMatrix::new();
        while m.demands.len() < n {
            let a = sites[(next() % sites.len() as u64) as usize];
            let b = sites[(next() % sites.len() as u64) as usize];
            if a == b {
                continue;
            }
            let rate = lo + next() % (hi - lo + 1);
            m.push(a, b, rate);
        }
        m
    }

    /// Total requested rate.
    pub fn total(&self) -> u64 {
        self.demands.iter().map(|d| d.rate_bps).sum()
    }
}

/// The result of an allocation.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Granted rate per demand, parallel to the input demand list.
    pub rates: Vec<u64>,
    /// Per demand: the candidate paths used and the rate on each.
    pub paths: Vec<Vec<(Path, u64)>>,
    /// Load per directed edge in bits/sec.
    pub link_load: BTreeMap<EdgeIx, u64>,
}

impl Allocation {
    /// Total granted rate.
    pub fn total(&self) -> u64 {
        self.rates.iter().sum()
    }

    /// Jain's fairness index of the *satisfaction ratios* (granted /
    /// requested); 1.0 is perfectly fair.
    pub fn jain_index(&self, demands: &[Demand]) -> f64 {
        let ratios: Vec<f64> = demands
            .iter()
            .zip(&self.rates)
            .filter(|(d, _)| d.rate_bps > 0)
            .map(|(d, &r)| r as f64 / d.rate_bps as f64)
            .collect();
        if ratios.is_empty() {
            return 1.0;
        }
        let sum: f64 = ratios.iter().sum();
        let sumsq: f64 = ratios.iter().map(|r| r * r).sum();
        if sumsq == 0.0 {
            return 1.0;
        }
        sum * sum / (ratios.len() as f64 * sumsq)
    }

    /// Utilization of every edge carrying load, as (edge, fraction).
    pub fn utilizations(&self, graph: &Graph) -> Vec<(EdgeIx, f64)> {
        self.link_load
            .iter()
            .map(|(&e, &load)| {
                let cap = graph.edge(e).capacity;
                (
                    e,
                    if cap == 0 {
                        0.0
                    } else {
                        load as f64 / cap as f64
                    },
                )
            })
            .collect()
    }

    /// The highest edge utilization (0.0 when nothing is loaded).
    pub fn max_utilization(&self, graph: &Graph) -> f64 {
        self.utilizations(graph)
            .into_iter()
            .map(|(_, u)| u)
            .fold(0.0, f64::max)
    }

    /// Mean utilization over *all* edges of the graph (idle edges count
    /// as zero), the "drive links to high utilization" headline metric.
    pub fn mean_utilization(&self, graph: &Graph) -> f64 {
        if graph.edge_count() == 0 {
            return 0.0;
        }
        let total: f64 = (0..graph.edge_count() as u32)
            .map(|e| {
                let cap = graph.edge(e).capacity;
                let load = self.link_load.get(&e).copied().unwrap_or(0);
                if cap == 0 {
                    0.0
                } else {
                    load as f64 / cap as f64
                }
            })
            .sum();
        total / graph.edge_count() as f64
    }
}

/// Allocate `demands` onto `graph` using quantum water-filling over the
/// `k` shortest candidate paths per demand.
///
/// `quantum` is the per-turn increment in bits/sec; smaller quanta give
/// fairer (and slower) allocations. A good default is
/// `min_link_capacity / 100`.
pub fn allocate(graph: &Graph, matrix: &DemandMatrix, k: usize, quantum: u64) -> Allocation {
    assert!(k >= 1 && quantum > 0);
    let demands = &matrix.demands;
    let mut residual: Vec<u64> = graph.edges().iter().map(|e| e.capacity).collect();

    // Candidate paths per demand, shortest first.
    let candidates: Vec<Vec<Path>> = demands
        .iter()
        .map(|d| k_shortest_paths(graph, d.src, d.dst, k))
        .collect();

    let mut granted = vec![0u64; demands.len()];
    // Rate per (demand, candidate index).
    let mut per_path: Vec<Vec<u64>> = candidates.iter().map(|c| vec![0u64; c.len()]).collect();
    let mut frozen = vec![false; demands.len()];

    let mut active = demands.len();
    while active > 0 {
        let mut progressed = false;
        for (i, demand) in demands.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            if granted[i] >= demand.rate_bps {
                frozen[i] = true;
                active -= 1;
                continue;
            }
            let want = quantum.min(demand.rate_bps - granted[i]);
            // Best candidate: shortest path whose bottleneck fits `want`.
            let mut placed = false;
            for (ci, path) in candidates[i].iter().enumerate() {
                let fits = path.edges.iter().all(|&e| residual[e as usize] >= want);
                if fits {
                    for &e in &path.edges {
                        residual[e as usize] -= want;
                    }
                    per_path[i][ci] += want;
                    granted[i] += want;
                    placed = true;
                    progressed = true;
                    break;
                }
            }
            if !placed {
                frozen[i] = true;
                active -= 1;
            }
        }
        if !progressed {
            break;
        }
    }

    // Assemble the result.
    let mut link_load: BTreeMap<EdgeIx, u64> = BTreeMap::new();
    let mut out_paths = Vec::with_capacity(demands.len());
    for (i, cands) in candidates.into_iter().enumerate() {
        let mut used = Vec::new();
        for (ci, path) in cands.into_iter().enumerate() {
            let rate = per_path[i][ci];
            if rate > 0 {
                for &e in &path.edges {
                    *link_load.entry(e).or_insert(0) += rate;
                }
                used.push((path, rate));
            }
        }
        out_paths.push(used);
    }
    Allocation {
        rates: granted,
        paths: out_paths,
        link_load,
    }
}

/// Quantize fractional path rates into `buckets` integer weights via the
/// largest-remainder method. Returns one weight per path (weights sum to
/// `buckets` unless all rates are zero). Paths with zero weight can be
/// omitted from the installed group.
pub fn quantize_splits(rates: &[u64], buckets: u32) -> Vec<u32> {
    let total: u64 = rates.iter().sum();
    if total == 0 || buckets == 0 {
        return vec![0; rates.len()];
    }
    let exact: Vec<f64> = rates
        .iter()
        .map(|&r| r as f64 * buckets as f64 / total as f64)
        .collect();
    let mut weights: Vec<u32> = exact.iter().map(|&e| e.floor() as u32).collect();
    let assigned: u32 = weights.iter().sum();
    let mut order: Vec<usize> = (0..rates.len()).collect();
    order.sort_by(|&a, &b| {
        let ra = exact[a] - exact[a].floor();
        let rb = exact[b] - exact[b].floor();
        rb.partial_cmp(&ra).unwrap().then(a.cmp(&b))
    });
    for &i in order.iter().take((buckets - assigned) as usize) {
        weights[i] += 1;
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two disjoint unit-capacity paths between 0 and 3 plus a direct
    /// longer one.
    fn diamond(cap: u64) -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_undirected(0, 1, 1, cap);
        g.add_undirected(1, 3, 1, cap);
        g.add_undirected(0, 2, 1, cap);
        g.add_undirected(2, 3, 1, cap);
        g
    }

    #[test]
    fn single_demand_single_path() {
        let g = diamond(1000);
        let mut m = DemandMatrix::new();
        m.push(0, 3, 500);
        let alloc = allocate(&g, &m, 1, 10);
        assert_eq!(alloc.rates, vec![500]);
        assert_eq!(alloc.paths[0].len(), 1);
        assert_eq!(alloc.total(), 500);
    }

    #[test]
    fn k2_doubles_capacity() {
        let g = diamond(1000);
        let mut m = DemandMatrix::new();
        m.push(0, 3, 2000);
        // k=1: capped at one path's 1000.
        let sp = allocate(&g, &m, 1, 10);
        assert_eq!(sp.rates, vec![1000]);
        // k=2: both arms used.
        let te = allocate(&g, &m, 2, 10);
        assert_eq!(te.rates, vec![2000]);
        assert_eq!(te.paths[0].len(), 2);
        // Achieves the max-flow bound.
        assert_eq!(te.rates[0], zen_graph::max_flow(&g, 0, 3));
    }

    #[test]
    fn contending_demands_share_fairly() {
        // Two demands over the same single link.
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1, 1, 1000);
        g.add_edge(1, 2, 1, 1000);
        let mut m = DemandMatrix::new();
        m.push(0, 2, 10_000);
        m.push(0, 2, 10_000);
        let alloc = allocate(&g, &m, 1, 10);
        assert_eq!(alloc.total(), 1000);
        let diff = alloc.rates[0].abs_diff(alloc.rates[1]);
        assert!(diff <= 10, "unfair split {:?}", alloc.rates);
        assert!(alloc.jain_index(&m.demands) > 0.99);
    }

    #[test]
    fn max_min_protects_small_demands() {
        // A small demand and a huge demand share a 1000-unit link.
        let mut g = Graph::with_nodes(2);
        g.add_edge(0, 1, 1, 1000);
        let mut m = DemandMatrix::new();
        m.push(0, 1, 100);
        m.push(0, 1, 1_000_000);
        let alloc = allocate(&g, &m, 1, 10);
        assert_eq!(alloc.rates[0], 100, "small demand fully satisfied");
        assert_eq!(alloc.rates[1], 900);
    }

    #[test]
    fn utilization_metrics() {
        let g = diamond(1000);
        let mut m = DemandMatrix::new();
        m.push(0, 3, 10_000);
        let alloc = allocate(&g, &m, 2, 10);
        let max_util = alloc.max_utilization(&g);
        assert!((max_util - 1.0).abs() < 0.05, "max util {max_util}");
        assert!(alloc.mean_utilization(&g) > 0.4);
    }

    #[test]
    fn link_load_consistent_with_rates() {
        let g = diamond(1000);
        let mut m = DemandMatrix::new();
        m.push(0, 3, 1500);
        let alloc = allocate(&g, &m, 2, 10);
        // Each used path contributes its rate to each of its edges.
        let per_path_sum: u64 = alloc.paths[0].iter().map(|(_, r)| r).sum();
        assert_eq!(per_path_sum, alloc.rates[0]);
        let total_load: u64 = alloc.link_load.values().sum();
        // Both paths have 2 hops.
        assert_eq!(total_load, 2 * alloc.rates[0]);
    }

    #[test]
    fn all_pairs_and_random_matrices() {
        let m = DemandMatrix::all_pairs(&[0, 1, 2], 10);
        assert_eq!(m.demands.len(), 6);
        assert_eq!(m.total(), 60);

        let r1 = DemandMatrix::random(&[0, 1, 2, 3], 10, 5, 50, 7);
        let r2 = DemandMatrix::random(&[0, 1, 2, 3], 10, 5, 50, 7);
        assert_eq!(r1.demands, r2.demands);
        assert!(r1.demands.iter().all(|d| (5..=50).contains(&d.rate_bps)));
        assert!(r1.demands.iter().all(|d| d.src != d.dst));
    }

    #[test]
    fn quantize_largest_remainder() {
        // 1/3 : 2/3 into 4 buckets -> 1 : 3 (remainders .33 vs .67).
        assert_eq!(quantize_splits(&[100, 200], 4), vec![1, 3]);
        // Equal rates split evenly.
        assert_eq!(quantize_splits(&[5, 5], 4), vec![2, 2]);
        // Zero rates.
        assert_eq!(quantize_splits(&[0, 0], 4), vec![0, 0]);
        // Weights always sum to the bucket count.
        let w = quantize_splits(&[7, 11, 3], 16);
        assert_eq!(w.iter().sum::<u32>(), 16);
    }

    #[test]
    fn unreachable_demand_gets_zero() {
        let g = Graph::with_nodes(2);
        let mut m = DemandMatrix::new();
        m.push(0, 1, 100);
        let alloc = allocate(&g, &m, 2, 10);
        assert_eq!(alloc.rates, vec![0]);
        assert!(alloc.paths[0].is_empty());
    }
}
