//! Property tests for the TE allocator's safety and quality invariants.

use proptest::prelude::*;
use std::collections::BTreeMap;

use zen_graph::Graph;
use zen_te::{allocate, quantize_splits, DemandMatrix};

/// (node, node, value) triples for edges and demands.
type Triples = Vec<(u32, u32, u64)>;

/// Random symmetric graphs with capacities, plus random demands.
fn arb_case() -> impl Strategy<Value = (usize, Triples, Triples)> {
    (3usize..10).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (0..n as u32, 0..n as u32, 100u64..10_000),
            n..3 * n,
        );
        let demands = proptest::collection::vec(
            (0..n as u32, 0..n as u32, 1u64..20_000),
            1..8,
        );
        (Just(n), edges, demands)
    })
}

proptest! {
    #[test]
    fn allocation_respects_capacity_and_demand((n, edges, demands) in arb_case(), k in 1usize..4) {
        let mut g = Graph::with_nodes(n);
        for &(a, b, c) in &edges {
            if a != b {
                g.add_undirected(a, b, 1, c);
            }
        }
        let mut m = DemandMatrix::new();
        for &(s, t, r) in &demands {
            if s != t {
                m.push(s, t, r);
            }
        }
        if m.demands.is_empty() {
            return Ok(());
        }
        let alloc = allocate(&g, &m, k, 50);

        // Never grant more than requested.
        for (d, &r) in m.demands.iter().zip(&alloc.rates) {
            prop_assert!(r <= d.rate_bps, "overgrant {r} > {}", d.rate_bps);
        }
        // Never exceed any link capacity.
        for (&e, &load) in &alloc.link_load {
            prop_assert!(
                load <= g.edge(e).capacity,
                "edge {e} overloaded: {load} > {}",
                g.edge(e).capacity
            );
        }
        // Per-demand path rates sum to the granted rate.
        for (i, paths) in alloc.paths.iter().enumerate() {
            let sum: u64 = paths.iter().map(|(_, r)| r).sum();
            prop_assert_eq!(sum, alloc.rates[i]);
            // Paths actually connect the demand endpoints.
            for (p, _) in paths {
                prop_assert_eq!(p.nodes[0], m.demands[i].src);
                prop_assert_eq!(*p.nodes.last().unwrap(), m.demands[i].dst);
            }
        }
    }

    #[test]
    fn more_candidates_never_hurt_a_single_demand((n, edges, demands) in arb_case()) {
        // NOTE: with *multiple* demands, greedy water-filling over more
        // candidates can admit less total traffic (one demand's detour
        // may starve another) — that is a real property of greedy TE,
        // so monotonicity is only asserted per single demand.
        let mut g = Graph::with_nodes(n);
        for &(a, b, c) in &edges {
            if a != b {
                g.add_undirected(a, b, 1, c);
            }
        }
        let Some(&(s, t, r)) = demands.iter().find(|(s, t, _)| s != t) else {
            return Ok(());
        };
        let mut m = DemandMatrix::new();
        m.push(s, t, r);
        let k1 = allocate(&g, &m, 1, 50).total();
        let k3 = allocate(&g, &m, 3, 50).total();
        prop_assert!(k3 + 50 >= k1, "k=3 total {k3} worse than k=1 total {k1}");
        // And never above the max-flow bound.
        prop_assert!(k3 <= zen_graph::max_flow(&g, s, t).max(k3.min(r)));
    }

    #[test]
    fn quantize_preserves_total_and_order(rates in proptest::collection::vec(0u64..1_000_000, 1..8),
                                          buckets in 1u32..64) {
        let w = quantize_splits(&rates, buckets);
        prop_assert_eq!(w.len(), rates.len());
        let total: u64 = rates.iter().sum();
        let wsum: u32 = w.iter().sum();
        if total == 0 {
            prop_assert_eq!(wsum, 0);
        } else {
            prop_assert_eq!(wsum, buckets);
            // Weight error is at most 1 bucket from the exact share.
            for (i, &r) in rates.iter().enumerate() {
                let exact = r as f64 * buckets as f64 / total as f64;
                prop_assert!((w[i] as f64 - exact).abs() <= 1.0,
                    "weight {} for exact {exact}", w[i]);
            }
        }
    }

    #[test]
    fn random_demand_matrix_well_formed(seed in any::<u64>()) {
        let sites: Vec<u32> = (0..6).collect();
        let m = DemandMatrix::random(&sites, 12, 10, 100, seed);
        prop_assert_eq!(m.demands.len(), 12);
        for d in &m.demands {
            prop_assert!(d.src != d.dst);
            prop_assert!((10..=100).contains(&d.rate_bps));
            prop_assert!(sites.contains(&d.src) && sites.contains(&d.dst));
        }
    }
}

#[test]
fn b4_like_case_allocation_sane() {
    // A concrete WAN-shaped case as a regression anchor.
    let mut g = Graph::with_nodes(6);
    let caps: BTreeMap<(u32, u32), u64> = [
        ((0u32, 1u32), 1000u64),
        ((1, 2), 1000),
        ((0, 3), 1000),
        ((3, 4), 1000),
        ((4, 2), 1000),
        ((1, 4), 500),
    ]
    .into_iter()
    .collect();
    for (&(a, b), &c) in &caps {
        g.add_undirected(a, b, 1, c);
    }
    let mut m = DemandMatrix::new();
    m.push(0, 2, 3000);
    let sp = allocate(&g, &m, 1, 10);
    let te = allocate(&g, &m, 3, 10);
    assert_eq!(sp.rates[0], 1000, "single path caps at one trunk");
    assert!(te.rates[0] >= 1990, "TE should find both 2-trunk paths");
    assert_eq!(te.rates[0], zen_graph::max_flow(&g, 0, 2).min(3000));
}
