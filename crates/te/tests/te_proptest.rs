//! Randomized tests for the TE allocator's safety and quality invariants.
//!
//! Driven by the in-tree deterministic [`Lcg`] generator with fixed
//! seeds, so every run exercises the same reproducible cases.

use std::collections::BTreeMap;

use zen_graph::Graph;
use zen_te::{allocate, quantize_splits, DemandMatrix};
use zen_wire::lcg::Lcg;

/// (node, node, value) triples for edges and demands.
type Triples = Vec<(u32, u32, u64)>;

/// Random symmetric graphs with capacities, plus random demands.
fn gen_case(rng: &mut Lcg) -> (usize, Triples, Triples) {
    let n = 3 + rng.gen_index(7);
    let n_edges = n + rng.gen_index(2 * n);
    let edges = (0..n_edges)
        .map(|_| {
            (
                rng.gen_range(n as u64) as u32,
                rng.gen_range(n as u64) as u32,
                100 + rng.gen_range(9_900),
            )
        })
        .collect();
    let demands = (0..1 + rng.gen_index(7))
        .map(|_| {
            (
                rng.gen_range(n as u64) as u32,
                rng.gen_range(n as u64) as u32,
                1 + rng.gen_range(19_999),
            )
        })
        .collect();
    (n, edges, demands)
}

#[test]
fn allocation_respects_capacity_and_demand() {
    let mut rng = Lcg::new(0x7E01);
    for _ in 0..100 {
        let (n, edges, demands) = gen_case(&mut rng);
        let k = 1 + rng.gen_index(3);
        let mut g = Graph::with_nodes(n);
        for &(a, b, c) in &edges {
            if a != b {
                g.add_undirected(a, b, 1, c);
            }
        }
        let mut m = DemandMatrix::new();
        for &(s, t, r) in &demands {
            if s != t {
                m.push(s, t, r);
            }
        }
        if m.demands.is_empty() {
            continue;
        }
        let alloc = allocate(&g, &m, k, 50);

        // Never grant more than requested.
        for (d, &r) in m.demands.iter().zip(&alloc.rates) {
            assert!(r <= d.rate_bps, "overgrant {r} > {}", d.rate_bps);
        }
        // Never exceed any link capacity.
        for (&e, &load) in &alloc.link_load {
            assert!(
                load <= g.edge(e).capacity,
                "edge {e} overloaded: {load} > {}",
                g.edge(e).capacity
            );
        }
        // Per-demand path rates sum to the granted rate.
        for (i, paths) in alloc.paths.iter().enumerate() {
            let sum: u64 = paths.iter().map(|(_, r)| r).sum();
            assert_eq!(sum, alloc.rates[i]);
            // Paths actually connect the demand endpoints.
            for (p, _) in paths {
                assert_eq!(p.nodes[0], m.demands[i].src);
                assert_eq!(*p.nodes.last().unwrap(), m.demands[i].dst);
            }
        }
    }
}

#[test]
fn more_candidates_never_hurt_a_single_demand() {
    // NOTE: with *multiple* demands, greedy water-filling over more
    // candidates can admit less total traffic (one demand's detour
    // may starve another) — that is a real property of greedy TE,
    // so monotonicity is only asserted per single demand.
    let mut rng = Lcg::new(0x7E02);
    for _ in 0..100 {
        let (n, edges, demands) = gen_case(&mut rng);
        let mut g = Graph::with_nodes(n);
        for &(a, b, c) in &edges {
            if a != b {
                g.add_undirected(a, b, 1, c);
            }
        }
        let Some(&(s, t, r)) = demands.iter().find(|(s, t, _)| s != t) else {
            continue;
        };
        let mut m = DemandMatrix::new();
        m.push(s, t, r);
        let k1 = allocate(&g, &m, 1, 50).total();
        let k3 = allocate(&g, &m, 3, 50).total();
        assert!(k3 + 50 >= k1, "k=3 total {k3} worse than k=1 total {k1}");
        // And never above the max-flow bound.
        assert!(k3 <= zen_graph::max_flow(&g, s, t).max(k3.min(r)));
    }
}

#[test]
fn quantize_preserves_total_and_order() {
    let mut rng = Lcg::new(0x7E03);
    for _ in 0..500 {
        let rates: Vec<u64> = (0..1 + rng.gen_index(7))
            .map(|_| rng.gen_range(1_000_000))
            .collect();
        let buckets = 1 + rng.gen_range(63) as u32;
        let w = quantize_splits(&rates, buckets);
        assert_eq!(w.len(), rates.len());
        let total: u64 = rates.iter().sum();
        let wsum: u32 = w.iter().sum();
        if total == 0 {
            assert_eq!(wsum, 0);
        } else {
            assert_eq!(wsum, buckets);
            // Weight error is at most 1 bucket from the exact share.
            for (i, &r) in rates.iter().enumerate() {
                let exact = r as f64 * buckets as f64 / total as f64;
                assert!(
                    (w[i] as f64 - exact).abs() <= 1.0,
                    "weight {} for exact {exact}",
                    w[i]
                );
            }
        }
    }
}

#[test]
fn random_demand_matrix_well_formed() {
    let mut rng = Lcg::new(0x7E04);
    for _ in 0..100 {
        let seed = rng.next_u64();
        let sites: Vec<u32> = (0..6).collect();
        let m = DemandMatrix::random(&sites, 12, 10, 100, seed);
        assert_eq!(m.demands.len(), 12);
        for d in &m.demands {
            assert!(d.src != d.dst);
            assert!((10..=100).contains(&d.rate_bps));
            assert!(sites.contains(&d.src) && sites.contains(&d.dst));
        }
    }
}

#[test]
fn b4_like_case_allocation_sane() {
    // A concrete WAN-shaped case as a regression anchor.
    let mut g = Graph::with_nodes(6);
    let caps: BTreeMap<(u32, u32), u64> = [
        ((0u32, 1u32), 1000u64),
        ((1, 2), 1000),
        ((0, 3), 1000),
        ((3, 4), 1000),
        ((4, 2), 1000),
        ((1, 4), 500),
    ]
    .into_iter()
    .collect();
    for (&(a, b), &c) in &caps {
        g.add_undirected(a, b, 1, c);
    }
    let mut m = DemandMatrix::new();
    m.push(0, 2, 3000);
    let sp = allocate(&g, &m, 1, 10);
    let te = allocate(&g, &m, 3, 10);
    assert_eq!(sp.rates[0], 1000, "single path caps at one trunk");
    assert!(te.rates[0] >= 1990, "TE should find both 2-trunk paths");
    assert_eq!(te.rates[0], zen_graph::max_flow(&g, 0, 2).min(3000));
}
