//! A transparent learning bridge with a simplified spanning tree.
//!
//! The pre-SDN L2 fabric: flood-and-learn forwarding, kept loop-free by
//! an 802.1D-style spanning tree — root election by lowest bridge id,
//! per-port role computation (root / designated / blocked), periodic
//! BPDUs with max-age expiry. Compared against the SDN controller's
//! global view, which needs no tree and uses all links.

use std::any::Any;
use std::collections::BTreeMap;

use zen_sim::{Context, CounterId, Duration, Instant, Node, PortNo};
use zen_wire::builder::PacketBuilder;
use zen_wire::ethernet::{EtherType, Frame};
use zen_wire::EthernetAddress;

use crate::proto::Bpdu;
use crate::ROUTING_ETHERTYPE;

const TIMER_HELLO: u64 = 1;

/// The BPDU multicast address (same as real STP).
pub const STP_MULTICAST: EthernetAddress = EthernetAddress([0x01, 0x80, 0xc2, 0x00, 0x00, 0x00]);

/// Timing knobs.
#[derive(Debug, Clone, Copy)]
pub struct StpConfig {
    /// BPDU period.
    pub hello_interval: Duration,
    /// Stored BPDU expiry.
    pub max_age: Duration,
    /// MAC table entry lifetime.
    pub mac_age: Duration,
}

impl Default for StpConfig {
    fn default() -> StpConfig {
        StpConfig {
            hello_interval: Duration::from_millis(100),
            max_age: Duration::from_millis(400),
            mac_age: Duration::from_secs(300),
        }
    }
}

/// The role of a bridge port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortRole {
    /// Toward the root bridge.
    Root,
    /// The designated forwarder for its segment.
    Designated,
    /// Blocked to break a loop.
    Blocked,
}

/// A learning switch with spanning tree.
pub struct LearningSwitch {
    bridge_id: u64,
    cfg: StpConfig,
    stp_enabled: bool,
    mac_table: BTreeMap<EthernetAddress, (PortNo, Instant)>,
    /// Best BPDU heard per port, with receipt time.
    heard: BTreeMap<PortNo, (Bpdu, Instant)>,
    /// Typed handle for the shared `stp.bpdus` counter, registered
    /// lazily so the hello path never does a string lookup.
    bpdus_id: Option<CounterId>,
    /// Frames flooded (experiment metric).
    pub floods: u64,
    /// Frames forwarded to a learned port.
    pub directed: u64,
    /// Data frames dropped on blocked ports.
    pub blocked_drops: u64,
}

impl LearningSwitch {
    /// A switch with STP enabled and default timers.
    pub fn new(bridge_id: u64) -> LearningSwitch {
        LearningSwitch {
            bridge_id,
            cfg: StpConfig::default(),
            stp_enabled: true,
            mac_table: BTreeMap::new(),
            heard: BTreeMap::new(),
            bpdus_id: None,
            floods: 0,
            directed: 0,
            blocked_drops: 0,
        }
    }

    /// Disable spanning tree (only safe on loop-free topologies).
    pub fn without_stp(mut self) -> LearningSwitch {
        self.stp_enabled = false;
        self
    }

    /// The bridge id.
    pub fn bridge_id(&self) -> u64 {
        self.bridge_id
    }

    /// This bridge's current notion of (root id, own cost to root,
    /// root port).
    pub fn root_view(&self) -> (u64, u32, Option<PortNo>) {
        let best = self
            .heard
            .iter()
            .map(|(&port, &(b, _))| (b.root_id, b.root_cost + 1, b.sender_id, port))
            .min();
        match best {
            Some((root, cost, _, port)) if root < self.bridge_id => (root, cost, Some(port)),
            _ => (self.bridge_id, 0, None),
        }
    }

    /// The role of `port` under the current BPDU state.
    pub fn port_role(&self, port: PortNo) -> PortRole {
        if !self.stp_enabled {
            return PortRole::Designated;
        }
        let (root, my_cost, root_port) = self.root_view();
        if Some(port) == root_port {
            return PortRole::Root;
        }
        match self.heard.get(&port) {
            None => PortRole::Designated, // host or silent segment
            Some(&(bpdu, _)) => {
                // We are designated if our offer beats what we hear.
                let mine = (root, my_cost, self.bridge_id);
                let theirs = (bpdu.root_id, bpdu.root_cost, bpdu.sender_id);
                if mine < theirs {
                    PortRole::Designated
                } else {
                    PortRole::Blocked
                }
            }
        }
    }

    fn forwarding(&self, port: PortNo) -> bool {
        self.port_role(port) != PortRole::Blocked
    }

    fn send_bpdus(&mut self, ctx: &mut Context<'_>) {
        let (root, my_cost, _) = self.root_view();
        let bpdu = Bpdu {
            root_id: root,
            root_cost: my_cost,
            sender_id: self.bridge_id,
        };
        let frame = PacketBuilder::ethernet(
            EthernetAddress::from_id(0x30_0000 + self.bridge_id),
            STP_MULTICAST,
            EtherType::Unknown(ROUTING_ETHERTYPE),
            &bpdu.encode(),
        );
        let id = *self
            .bpdus_id
            .get_or_insert_with(|| ctx.metrics().register_counter("stp.bpdus"));
        for port in ctx.ports() {
            ctx.metrics().incr(id);
            ctx.transmit(port, frame.clone());
        }
    }

    fn age_out(&mut self, now: Instant) {
        let max_age = self.cfg.max_age;
        self.heard
            .retain(|_, (_, at)| now.duration_since(*at) < max_age);
        let mac_age = self.cfg.mac_age;
        self.mac_table
            .retain(|_, (_, at)| now.duration_since(*at) < mac_age);
    }

    fn handle_data(&mut self, ctx: &mut Context<'_>, in_port: PortNo, frame: &[u8]) {
        if !self.forwarding(in_port) {
            self.blocked_drops += 1;
            return;
        }
        let Ok(eth) = Frame::new_checked(frame) else {
            return;
        };
        let now = ctx.now();
        // Learn.
        if eth.src_addr().is_unicast() {
            self.mac_table.insert(eth.src_addr(), (in_port, now));
        }
        // Forward.
        let dst = eth.dst_addr();
        if !dst.is_multicast() {
            if let Some(&(port, _)) = self.mac_table.get(&dst) {
                if port != in_port && self.forwarding(port) {
                    self.directed += 1;
                    ctx.transmit(port, frame.to_vec());
                }
                return;
            }
        }
        // Flood on all forwarding ports except ingress.
        self.floods += 1;
        for port in ctx.ports() {
            if port != in_port && self.forwarding(port) {
                ctx.transmit(port, frame.to_vec());
            }
        }
    }
}

impl Node for LearningSwitch {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if self.stp_enabled {
            self.send_bpdus(ctx);
            ctx.set_timer(self.cfg.hello_interval, TIMER_HELLO);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        if token == TIMER_HELLO {
            self.age_out(ctx.now());
            self.send_bpdus(ctx);
            ctx.set_timer(self.cfg.hello_interval, TIMER_HELLO);
        }
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, port: PortNo, frame: &[u8]) {
        let Ok(eth) = Frame::new_checked(frame) else {
            return;
        };
        if eth.ethertype() == EtherType::Unknown(ROUTING_ETHERTYPE)
            && eth.dst_addr() == STP_MULTICAST
        {
            if let Some(bpdu) = Bpdu::decode(eth.payload()) {
                let now = ctx.now();
                // Keep the better of (stored, new) per port.
                let keep_new = match self.heard.get(&port) {
                    None => true,
                    Some(&(old, _)) => {
                        (bpdu.root_id, bpdu.root_cost, bpdu.sender_id)
                            <= (old.root_id, old.root_cost, old.sender_id)
                    }
                };
                if keep_new {
                    self.heard.insert(port, (bpdu, now));
                }
            }
            return;
        }
        self.handle_data(ctx, port, frame);
    }

    fn on_link_status(&mut self, ctx: &mut Context<'_>, port: PortNo, up: bool) {
        if !up {
            self.heard.remove(&port);
            self.mac_table.retain(|_, (p, _)| *p != port);
            let _ = ctx;
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zen_sim::{Host, LinkParams, Topology, Workload, World};
    use zen_wire::Ipv4Address;

    fn build_l2(topo: &Topology, seed: u64) -> (World, Vec<zen_sim::NodeId>, Vec<zen_sim::NodeId>) {
        let mut world = World::new(seed);
        let switches: Vec<_> = (0..topo.switches)
            .map(|i| world.add_node(Box::new(LearningSwitch::new(i as u64))))
            .collect();
        for l in &topo.links {
            world.connect(switches[l.a], switches[l.b], l.params);
        }
        let hosts: Vec<_> = topo
            .hosts
            .iter()
            .enumerate()
            .map(|(i, &sw)| {
                let host = Host::new(
                    EthernetAddress::from_id(0x50_0000 + i as u64),
                    Ipv4Address::new(10, 0, 0, (i + 1) as u8),
                );
                let id = world.add_node(Box::new(host));
                world.connect(id, switches[sw], LinkParams::default());
                id
            })
            .collect();
        (world, switches, hosts)
    }

    #[test]
    fn learning_cuts_flooding() {
        let mut world = World::new(1);
        let s: Vec<_> = (0..2)
            .map(|i| world.add_node(Box::new(LearningSwitch::new(i as u64))))
            .collect();
        world.connect(s[0], s[1], LinkParams::default());
        let h0 = world.add_node(Box::new(
            Host::new(EthernetAddress::from_id(1), Ipv4Address::new(10, 0, 0, 1)).with_workload(
                Workload::Ping {
                    dst: Ipv4Address::new(10, 0, 0, 2),
                    count: 5,
                    interval: Duration::from_millis(50),
                    start: Instant::from_millis(500), // after STP settles
                },
            ),
        ));
        world.connect(h0, s[0], LinkParams::default());
        let h1 = world.add_node(Box::new(Host::new(
            EthernetAddress::from_id(2),
            Ipv4Address::new(10, 0, 0, 2),
        )));
        world.connect(h1, s[1], LinkParams::default());
        world.run_until(Instant::from_secs(2));

        let h0 = world.node_as::<Host>(h0);
        assert_eq!(h0.stats.ping_rtts.count(), 5, "pings completed");
        let sw0 = world.node_as::<LearningSwitch>(s[0]);
        // ARP broadcast floods; replies and echoes go directed.
        assert!(sw0.directed > 0, "learning never kicked in");
    }

    #[test]
    fn ring_converges_loop_free() {
        let topo = Topology::ring(4, LinkParams::default());
        let (mut world, switches, _) = build_l2(&topo, 1);
        world.run_until(Instant::from_secs(2));
        // Exactly one bridge (id 0) is root; every other bridge has a
        // root port; exactly one link in the ring is blocked (one side).
        let mut blocked_ports = 0;
        for &s in &switches {
            let sw = world.node_as::<LearningSwitch>(s);
            let (root, _, root_port) = sw.root_view();
            assert_eq!(root, 0, "all bridges agree on the root");
            if sw.bridge_id() != 0 {
                assert!(root_port.is_some());
            }
            for port in 1..=2 {
                if sw.port_role(port) == PortRole::Blocked {
                    blocked_ports += 1;
                }
            }
        }
        assert_eq!(blocked_ports, 1, "a 4-ring blocks exactly one port");
    }

    #[test]
    fn broadcast_does_not_storm_in_a_ring() {
        // Inject one broadcast into a ring with STP and count deliveries.
        let mut topo = Topology::ring(3, LinkParams::default());
        topo.hosts = vec![0, 1, 2];
        let (mut world, _, hosts) = build_l2(&topo, 1);
        world.run_until(Instant::from_millis(800)); // settle STP

        // Send a single gratuitous-style broadcast from host 0 by giving
        // it a ping to an address nobody owns (ARP will broadcast and
        // never resolve).
        // Instead: count frames over a quiet window with no workloads —
        // the ring must be silent apart from periodic BPDUs.
        let before = world.metrics().counter("sim.tx_frames");
        world.run_for(Duration::from_millis(500));
        let after = world.metrics().counter("sim.tx_frames");
        let frames = after - before;
        // 3 switches x 2 ports x 5 BPDU rounds = 30, plus slack; a storm
        // would be unbounded (thousands).
        assert!(frames < 100, "unexpected traffic volume {frames}");
        let _ = hosts;
    }

    #[test]
    fn without_stp_on_tree_topology_works() {
        let mut world = World::new(1);
        let s0 = world.add_node(Box::new(LearningSwitch::new(0).without_stp()));
        let h0 = world.add_node(Box::new(
            Host::new(EthernetAddress::from_id(1), Ipv4Address::new(10, 0, 0, 1)).with_workload(
                Workload::Udp {
                    dst: Ipv4Address::new(10, 0, 0, 2),
                    dst_port: 7,
                    size: 64,
                    count: 3,
                    interval: Duration::from_millis(10),
                    start: Instant::from_millis(1),
                },
            ),
        ));
        let h1 = world.add_node(Box::new(Host::new(
            EthernetAddress::from_id(2),
            Ipv4Address::new(10, 0, 0, 2),
        )));
        world.connect(h0, s0, LinkParams::default());
        world.connect(h1, s0, LinkParams::default());
        world.run_until(Instant::from_secs(1));
        assert_eq!(world.node_as::<Host>(h1).stats.udp_rx, 3);
    }
}
