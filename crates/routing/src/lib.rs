//! # zen-routing — distributed control-plane baselines
//!
//! The architecture SDN replaced: control logic distributed across the
//! devices themselves, converging by message exchange. These baselines
//! run *for real* on `zen-sim` — hellos time out, LSAs flood hop by hop,
//! distance vectors count to infinity — so centralized-vs-distributed
//! experiments compare actual protocol dynamics, not idealized models.
//!
//! * [`l2::LearningSwitch`] — transparent bridging with MAC learning and
//!   a simplified IEEE 802.1D spanning tree (root election, port
//!   blocking), the pre-SDN L2 fabric.
//! * [`linkstate::LinkStateRouter`] — an OSPF-style router: hello-based
//!   neighbor discovery with dead intervals, sequence-numbered LSA
//!   flooding, full-topology Dijkstra, and an LPM FIB (`zen-fib`).
//! * [`distvec::DistanceVectorRouter`] — a RIP-style router: periodic and
//!   triggered vector advertisements, split horizon with poisoned
//!   reverse, and a 16-hop infinity.
//!
//! Routers attach hosts with proxy ARP (the router answers every ARP
//! query on a host port with its own MAC) and advertise learned host
//! /32s into the routing protocol, so unmodified [`zen_sim::Host`]
//! workloads run over either control plane — or over the SDN fabric —
//! unchanged.
//!
//! [`proto`] defines the routing-protocol wire format, carried in
//! Ethernet frames with EtherType `0x88b5` (IEEE experimental).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chassis;
pub mod distvec;
pub mod l2;
pub mod linkstate;
pub mod proto;

pub use distvec::DistanceVectorRouter;
pub use l2::LearningSwitch;
pub use linkstate::LinkStateRouter;

/// EtherType used by the distributed routing protocols (IEEE 802 local
/// experimental 1).
pub const ROUTING_ETHERTYPE: u16 = 0x88b5;
