//! Shared router machinery: proxy-ARP host attachment, host learning,
//! and the IPv4 forwarding fast path over an LPM FIB.
//!
//! Both the link-state and distance-vector routers delegate everything
//! that is not protocol logic to a [`Chassis`].

use std::collections::BTreeMap;

use zen_dataplane::action::{apply_rewrite, Rewrite};
use zen_dataplane::Action;
use zen_fib::{Fib, NextHop, RadixTrieFib};
use zen_sim::{Context, PortNo};
use zen_wire::builder::PacketBuilder;
use zen_wire::ethernet::Frame;
use zen_wire::{arp, ipv4, EthernetAddress, Ipv4Address, Ipv4Cidr};

/// Where a route points: an egress port and the next-hop router's MAC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Adjacency {
    /// Egress port.
    pub port: PortNo,
    /// Next-hop MAC address.
    pub mac: EthernetAddress,
}

/// Counters the experiments read.
#[derive(Debug, Default, Clone, Copy)]
pub struct ChassisStats {
    /// IPv4 frames forwarded toward another router.
    pub forwarded: u64,
    /// IPv4 frames delivered to a locally attached host.
    pub delivered_local: u64,
    /// IPv4 frames dropped for lack of a route.
    pub dropped_no_route: u64,
    /// Frames dropped by TTL expiry.
    pub dropped_ttl: u64,
    /// Proxy-ARP replies sent.
    pub proxy_arp_replies: u64,
}

/// The data plane of a traditional router.
#[derive(Debug)]
pub struct Chassis {
    /// This router's id (also used to derive its MAC).
    pub router_id: u64,
    /// The router's own MAC address (one per chassis, as on a
    /// router-on-a-stick).
    pub mac: EthernetAddress,
    fib: RadixTrieFib,
    adjacencies: Vec<Adjacency>,
    /// Hosts learned on local ports: address → (port, MAC).
    pub local_hosts: BTreeMap<Ipv4Address, (PortNo, EthernetAddress)>,
    /// Forwarding counters.
    pub stats: ChassisStats,
}

impl Chassis {
    /// A chassis for `router_id`, with a MAC derived from it.
    pub fn new(router_id: u64) -> Chassis {
        Chassis {
            router_id,
            mac: EthernetAddress::from_id(0x10_0000 + router_id),
            fib: RadixTrieFib::new(),
            adjacencies: Vec::new(),
            local_hosts: BTreeMap::new(),
            stats: ChassisStats::default(),
        }
    }

    /// Replace the FIB wholesale (after an SPF run or vector update):
    /// `routes` maps host /32 prefixes to adjacencies.
    pub fn install_routes(&mut self, routes: &[(Ipv4Cidr, Adjacency)]) {
        self.fib = RadixTrieFib::new();
        self.adjacencies.clear();
        for &(prefix, adjacency) in routes {
            let nh = self.intern_adjacency(adjacency);
            self.fib.insert(prefix, nh);
        }
    }

    fn intern_adjacency(&mut self, adjacency: Adjacency) -> NextHop {
        if let Some(i) = self.adjacencies.iter().position(|a| *a == adjacency) {
            return i as NextHop;
        }
        self.adjacencies.push(adjacency);
        (self.adjacencies.len() - 1) as NextHop
    }

    /// Number of installed prefixes.
    pub fn route_count(&self) -> usize {
        self.fib.len()
    }

    /// The route for an address, if any (diagnostics).
    pub fn route_for(&self, addr: Ipv4Address) -> Option<Adjacency> {
        self.fib
            .lookup(addr)
            .map(|nh| self.adjacencies[nh as usize])
    }

    /// Learn (or refresh) a locally attached host. Returns `true` if it
    /// is a *new* host, which protocols use to trigger advertisement.
    pub fn learn_host(&mut self, ip: Ipv4Address, port: PortNo, mac: EthernetAddress) -> bool {
        if !ip.is_unicast() {
            return false;
        }
        self.local_hosts.insert(ip, (port, mac)).is_none()
    }

    /// Handle an ARP payload heard on `port`. Replies with the router's
    /// own MAC to any request (proxy ARP), and learns the sender as a
    /// local host. Returns the newly learned host address, if any.
    pub fn handle_arp(
        &mut self,
        ctx: &mut Context<'_>,
        port: PortNo,
        payload: &[u8],
    ) -> Option<Ipv4Address> {
        let packet = arp::Packet::new_checked(payload).ok()?;
        let repr = arp::Repr::parse(&packet).ok()?;
        let newly_learned = if repr.sender_protocol_addr.is_unicast() {
            let prev = self
                .local_hosts
                .insert(repr.sender_protocol_addr, (port, repr.sender_hardware_addr));
            if prev.is_none() {
                Some(repr.sender_protocol_addr)
            } else {
                None
            }
        } else {
            None
        };
        if repr.operation == arp::Operation::Request
            && repr.target_protocol_addr != repr.sender_protocol_addr
        {
            // Proxy ARP: we claim every address; hosts send everything to
            // the router. (Gratuitous ARP — target == sender — is not
            // answered.)
            self.stats.proxy_arp_replies += 1;
            let reply = PacketBuilder::arp_reply(&repr, self.mac);
            ctx.transmit(port, reply);
        }
        newly_learned
    }

    /// Forward an IPv4 frame: deliver locally, or rewrite and send
    /// toward the FIB next hop.
    pub fn forward_ipv4(&mut self, ctx: &mut Context<'_>, frame: &[u8]) {
        let Ok(eth) = Frame::new_checked(frame) else {
            return;
        };
        let Ok(ip) = ipv4::Packet::new_checked(eth.payload()) else {
            return;
        };
        let dst = ip.dst_addr();

        let (out_port, dst_mac) = if let Some(&(port, mac)) = self.local_hosts.get(&dst) {
            self.stats.delivered_local += 1;
            (port, mac)
        } else if let Some(adjacency) = self.fib.lookup(dst).map(|nh| self.adjacencies[nh as usize])
        {
            self.stats.forwarded += 1;
            (adjacency.port, adjacency.mac)
        } else {
            self.stats.dropped_no_route += 1;
            return;
        };

        let mut out = frame.to_vec();
        if apply_rewrite(Action::DecTtl, &mut out) == Rewrite::Drop {
            self.stats.dropped_ttl += 1;
            return;
        }
        apply_rewrite(Action::SetEthSrc(self.mac), &mut out);
        apply_rewrite(Action::SetEthDst(dst_mac), &mut out);
        ctx.transmit(out_port, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;
    use zen_sim::{Duration, Instant, LinkParams, Node, World};

    /// Captures everything it receives.
    struct Capture {
        frames: Vec<(PortNo, Vec<u8>)>,
    }

    impl Node for Capture {
        fn on_packet(&mut self, _ctx: &mut Context<'_>, port: PortNo, frame: &[u8]) {
            self.frames.push((port, frame.to_vec()));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// A probe node hosting a chassis so we can exercise it in a world.
    struct ChassisProbe {
        chassis: Chassis,
        script: Vec<(PortNo, Vec<u8>)>,
    }

    impl Node for ChassisProbe {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for (port, frame) in std::mem::take(&mut self.script) {
                // Treat scripted frames as if they arrived on `port`.
                let eth = Frame::new_checked(&frame[..]).unwrap();
                match eth.ethertype() {
                    zen_wire::ethernet::EtherType::Arp => {
                        self.chassis.handle_arp(ctx, port, eth.payload());
                    }
                    zen_wire::ethernet::EtherType::Ipv4 => {
                        self.chassis.forward_ipv4(ctx, &frame);
                    }
                    _ => {}
                }
            }
        }
        fn on_packet(&mut self, _: &mut Context<'_>, _: PortNo, _: &[u8]) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    const HOST_MAC: EthernetAddress = EthernetAddress([2, 0, 0, 0, 0, 9]);
    const HOST_IP: Ipv4Address = Ipv4Address::new(10, 0, 0, 9);
    const FAR_IP: Ipv4Address = Ipv4Address::new(10, 0, 1, 1);

    #[test]
    fn proxy_arp_reply_and_host_learning() {
        let mut world = World::new(1);
        let chassis = Chassis::new(1);
        let probe = world.add_node(Box::new(ChassisProbe {
            chassis,
            script: vec![(1, PacketBuilder::arp_request(HOST_MAC, HOST_IP, FAR_IP))],
        }));
        let cap = world.add_node(Box::new(Capture { frames: vec![] }));
        world.connect(probe, cap, LinkParams::instant(Duration::from_micros(1)));
        world.run_until(Instant::from_millis(1));

        let cap = world.node_as::<Capture>(cap);
        assert_eq!(cap.frames.len(), 1, "proxy ARP reply expected");
        let eth = Frame::new_checked(&cap.frames[0].1[..]).unwrap();
        let reply = arp::Repr::parse(&arp::Packet::new_checked(eth.payload()).unwrap()).unwrap();
        assert_eq!(reply.operation, arp::Operation::Reply);
        assert_eq!(reply.sender_protocol_addr, FAR_IP);
        assert_eq!(reply.target_hardware_addr, HOST_MAC);

        let probe = world.node_as::<ChassisProbe>(probe);
        assert_eq!(
            probe.chassis.local_hosts.get(&HOST_IP),
            Some(&(1, HOST_MAC))
        );
        assert_eq!(probe.chassis.stats.proxy_arp_replies, 1);
    }

    #[test]
    fn gratuitous_arp_learns_but_does_not_reply() {
        let mut world = World::new(1);
        let probe = world.add_node(Box::new(ChassisProbe {
            chassis: Chassis::new(1),
            script: vec![(1, PacketBuilder::arp_request(HOST_MAC, HOST_IP, HOST_IP))],
        }));
        let cap = world.add_node(Box::new(Capture { frames: vec![] }));
        world.connect(probe, cap, LinkParams::instant(Duration::from_micros(1)));
        world.run_until(Instant::from_millis(1));
        assert!(world.node_as::<Capture>(cap).frames.is_empty());
        let probe = world.node_as::<ChassisProbe>(probe);
        assert!(probe.chassis.local_hosts.contains_key(&HOST_IP));
    }

    #[test]
    fn forwards_via_fib_with_rewrite() {
        let mut world = World::new(1);
        let mut chassis = Chassis::new(1);
        let next_mac = EthernetAddress::from_id(0x20);
        chassis.install_routes(&[(
            Ipv4Cidr::new(FAR_IP, 32).unwrap(),
            Adjacency {
                port: 1,
                mac: next_mac,
            },
        )]);
        let frame = PacketBuilder::udp(HOST_MAC, HOST_IP, 1, chassis.mac, FAR_IP, 2, b"hi");
        let router_mac = chassis.mac;
        let probe = world.add_node(Box::new(ChassisProbe {
            chassis,
            script: vec![(2, frame)],
        }));
        let cap = world.add_node(Box::new(Capture { frames: vec![] }));
        world.connect(probe, cap, LinkParams::instant(Duration::from_micros(1)));
        world.run_until(Instant::from_millis(1));

        let cap = world.node_as::<Capture>(cap);
        assert_eq!(cap.frames.len(), 1);
        let eth = Frame::new_checked(&cap.frames[0].1[..]).unwrap();
        assert_eq!(eth.src_addr(), router_mac);
        assert_eq!(eth.dst_addr(), next_mac);
        let ip = ipv4::Packet::new_checked(eth.payload()).unwrap();
        assert_eq!(ip.ttl(), 63);
        assert!(ip.verify_checksum());
        let probe = world.node_as::<ChassisProbe>(probe);
        assert_eq!(probe.chassis.stats.forwarded, 1);
    }

    #[test]
    fn local_delivery_beats_fib() {
        let mut world = World::new(1);
        let mut chassis = Chassis::new(1);
        chassis.install_routes(&[(
            "10.0.0.0/8".parse().unwrap(),
            Adjacency {
                port: 2,
                mac: EthernetAddress::from_id(0x20),
            },
        )]);
        chassis.local_hosts.insert(HOST_IP, (1, HOST_MAC));
        let frame = PacketBuilder::udp(
            EthernetAddress::from_id(3),
            FAR_IP,
            5,
            chassis.mac,
            HOST_IP,
            6,
            b"x",
        );
        let probe = world.add_node(Box::new(ChassisProbe {
            chassis,
            script: vec![(2, frame)],
        }));
        let cap = world.add_node(Box::new(Capture { frames: vec![] }));
        world.connect(probe, cap, LinkParams::instant(Duration::from_micros(1)));
        world.run_until(Instant::from_millis(1));
        let cap = world.node_as::<Capture>(cap);
        assert_eq!(cap.frames.len(), 1);
        let eth = Frame::new_checked(&cap.frames[0].1[..]).unwrap();
        assert_eq!(eth.dst_addr(), HOST_MAC, "delivered to the host MAC");
    }

    #[test]
    fn no_route_drops() {
        let mut world = World::new(1);
        let chassis = Chassis::new(1);
        let mac = chassis.mac;
        let frame = PacketBuilder::udp(HOST_MAC, HOST_IP, 1, mac, FAR_IP, 2, b"hi");
        let probe = world.add_node(Box::new(ChassisProbe {
            chassis,
            script: vec![(1, frame)],
        }));
        let cap = world.add_node(Box::new(Capture { frames: vec![] }));
        world.connect(probe, cap, LinkParams::instant(Duration::from_micros(1)));
        world.run_until(Instant::from_millis(1));
        assert!(world.node_as::<Capture>(cap).frames.is_empty());
        let probe = world.node_as::<ChassisProbe>(probe);
        assert_eq!(probe.chassis.stats.dropped_no_route, 1);
    }
}
