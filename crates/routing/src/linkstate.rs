//! An OSPF-style link-state router.
//!
//! Each router multicasts hellos on every port; ports where a hello is
//! answered become router adjacencies (with dead-interval expiry), other
//! ports are host ports. Topology and host attachment are flooded as
//! sequence-numbered LSAs; every router runs Dijkstra over its LSDB and
//! installs host routes into an LPM FIB. Physical port-down events
//! trigger immediate re-origination, the fast path real IGPs rely on;
//! silent failures are caught by the dead interval.

use std::any::Any;
use std::collections::BTreeMap;

use zen_fib::Ipv4Cidr;
use zen_graph::{dijkstra, Graph};
use zen_sim::{Context, CounterId, Duration, Instant, Node, PortNo};
use zen_wire::builder::PacketBuilder;
use zen_wire::ethernet::{EtherType, Frame};
use zen_wire::{EthernetAddress, Ipv4Address};

use crate::chassis::{Adjacency, Chassis};
use crate::proto::{RoutingMsg, ROUTERS_MULTICAST};
use crate::ROUTING_ETHERTYPE;

const TIMER_HELLO: u64 = 1;
const TIMER_SWEEP: u64 = 2;

/// Protocol timing knobs.
#[derive(Debug, Clone, Copy)]
pub struct LsConfig {
    /// Hello period.
    pub hello_interval: Duration,
    /// Adjacency expiry when hellos stop.
    pub dead_interval: Duration,
}

impl Default for LsConfig {
    fn default() -> LsConfig {
        LsConfig {
            hello_interval: Duration::from_millis(100),
            dead_interval: Duration::from_millis(350),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Neighbor {
    router_id: u64,
    mac: EthernetAddress,
    last_hello: Instant,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct LsaRecord {
    seq: u64,
    links: Vec<(u64, u32)>,
    hosts: Vec<Ipv4Address>,
}

/// The link-state router node.
pub struct LinkStateRouter {
    /// Forwarding machinery and counters.
    pub chassis: Chassis,
    cfg: LsConfig,
    neighbors: BTreeMap<PortNo, Neighbor>,
    lsdb: BTreeMap<u64, LsaRecord>,
    my_seq: u64,
    /// Typed handle for the shared `routing.msgs` counter, registered
    /// lazily so the send path never does a string lookup.
    msgs_id: Option<CounterId>,
    /// Number of SPF runs (experiment metric).
    pub spf_runs: u64,
    /// Routing-protocol messages sent (experiment metric).
    pub control_msgs_sent: u64,
}

impl LinkStateRouter {
    /// A router with the given id and default timers.
    pub fn new(router_id: u64) -> LinkStateRouter {
        LinkStateRouter::with_config(router_id, LsConfig::default())
    }

    /// A router with explicit timers.
    pub fn with_config(router_id: u64, cfg: LsConfig) -> LinkStateRouter {
        LinkStateRouter {
            chassis: Chassis::new(router_id),
            cfg,
            neighbors: BTreeMap::new(),
            lsdb: BTreeMap::new(),
            my_seq: 0,
            msgs_id: None,
            spf_runs: 0,
            control_msgs_sent: 0,
        }
    }

    /// This router's id.
    pub fn router_id(&self) -> u64 {
        self.chassis.router_id
    }

    fn send_routing(&mut self, ctx: &mut Context<'_>, port: PortNo, msg: &RoutingMsg) {
        let frame = PacketBuilder::ethernet(
            self.chassis.mac,
            ROUTERS_MULTICAST,
            EtherType::Unknown(ROUTING_ETHERTYPE),
            &msg.encode(),
        );
        self.control_msgs_sent += 1;
        let id = *self
            .msgs_id
            .get_or_insert_with(|| ctx.metrics().register_counter("routing.msgs"));
        ctx.metrics().incr(id);
        ctx.transmit(port, frame);
    }

    fn send_hellos(&mut self, ctx: &mut Context<'_>) {
        let msg = RoutingMsg::Hello {
            router_id: self.chassis.router_id,
        };
        for port in ctx.ports() {
            self.send_routing(ctx, port, &msg);
        }
    }

    /// Re-originate our own LSA (adjacency or host set changed).
    fn originate(&mut self, ctx: &mut Context<'_>) {
        self.my_seq += 1;
        let record = LsaRecord {
            seq: self.my_seq,
            links: self
                .neighbors
                .values()
                .map(|n| (n.router_id, 1u32))
                .collect(),
            hosts: self.chassis.local_hosts.keys().copied().collect(),
        };
        self.lsdb.insert(self.chassis.router_id, record.clone());
        self.flood(ctx, self.chassis.router_id, &record, None);
    }

    fn flood(
        &mut self,
        ctx: &mut Context<'_>,
        origin: u64,
        record: &LsaRecord,
        except_port: Option<PortNo>,
    ) {
        let msg = RoutingMsg::Lsa {
            origin,
            seq: record.seq,
            links: record.links.clone(),
            hosts: record.hosts.clone(),
        };
        let router_ports: Vec<PortNo> = self.neighbors.keys().copied().collect();
        for port in router_ports {
            if Some(port) != except_port {
                self.send_routing(ctx, port, &msg);
            }
        }
    }

    /// Send the whole LSDB to a newly adjacent neighbor (database sync).
    fn sync_to(&mut self, ctx: &mut Context<'_>, port: PortNo) {
        let snapshot: Vec<(u64, LsaRecord)> =
            self.lsdb.iter().map(|(&o, r)| (o, r.clone())).collect();
        for (origin, record) in snapshot {
            let msg = RoutingMsg::Lsa {
                origin,
                seq: record.seq,
                links: record.links,
                hosts: record.hosts,
            };
            self.send_routing(ctx, port, &msg);
        }
    }

    /// Dijkstra over the LSDB, then rebuild the FIB.
    fn run_spf(&mut self) {
        self.spf_runs += 1;
        // Map router ids to dense graph indices.
        let ids: Vec<u64> = self.lsdb.keys().copied().collect();
        let index: BTreeMap<u64, u32> = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i as u32))
            .collect();
        let mut graph = Graph::with_nodes(ids.len());
        for (&origin, record) in &self.lsdb {
            for &(neighbor, cost) in &record.links {
                // Require the reverse adjacency too (OSPF's two-way check).
                let reverse = self
                    .lsdb
                    .get(&neighbor)
                    .is_some_and(|r| r.links.iter().any(|&(n, _)| n == origin));
                if reverse {
                    if let (Some(&a), Some(&b)) = (index.get(&origin), index.get(&neighbor)) {
                        graph.add_edge(a, b, u64::from(cost), 0);
                    }
                }
            }
        }
        let Some(&me) = index.get(&self.chassis.router_id) else {
            return;
        };
        let spf = dijkstra(&graph, me);

        // First hop toward each reachable router.
        let mut first_hop: BTreeMap<u64, u64> = BTreeMap::new(); // router -> neighbor id
        for (&id, &ix) in &index {
            if id == self.chassis.router_id || !spf.reachable(ix) {
                continue;
            }
            let Some(path) = spf.path_to(&graph, ix) else {
                continue;
            };
            if path.nodes.len() >= 2 {
                first_hop.insert(id, ids[path.nodes[1] as usize]);
            }
        }
        // Neighbor id -> (port, mac).
        let neighbor_adj: BTreeMap<u64, Adjacency> = self
            .neighbors
            .iter()
            .map(|(&port, n)| (n.router_id, Adjacency { port, mac: n.mac }))
            .collect();

        let mut routes = Vec::new();
        for (&origin, record) in &self.lsdb {
            if origin == self.chassis.router_id {
                continue;
            }
            let Some(&via) = first_hop.get(&origin) else {
                continue;
            };
            let Some(&adjacency) = neighbor_adj.get(&via) else {
                continue;
            };
            for &host in &record.hosts {
                routes.push((Ipv4Cidr::new(host, 32).expect("/32"), adjacency));
            }
        }
        self.chassis.install_routes(&routes);
    }

    fn handle_routing(
        &mut self,
        ctx: &mut Context<'_>,
        port: PortNo,
        src: EthernetAddress,
        payload: &[u8],
    ) {
        let Some(msg) = RoutingMsg::decode(payload) else {
            return;
        };
        match msg {
            RoutingMsg::Hello { router_id } => {
                let now = ctx.now();
                let is_new = self
                    .neighbors
                    .get(&port)
                    .is_none_or(|n| n.router_id != router_id);
                self.neighbors.insert(
                    port,
                    Neighbor {
                        router_id,
                        mac: src,
                        last_hello: now,
                    },
                );
                if is_new {
                    // New adjacency: answer immediately so the peer also
                    // sees two-way, sync databases, re-originate, SPF.
                    let hello = RoutingMsg::Hello {
                        router_id: self.chassis.router_id,
                    };
                    self.send_routing(ctx, port, &hello);
                    self.sync_to(ctx, port);
                    self.originate(ctx);
                    self.run_spf();
                }
            }
            RoutingMsg::Lsa {
                origin,
                seq,
                links,
                hosts,
            } => {
                if origin == self.chassis.router_id {
                    // Our own LSA echoed back; make sure our next
                    // origination supersedes it.
                    if seq > self.my_seq {
                        self.my_seq = seq;
                    }
                    return;
                }
                let newer = self.lsdb.get(&origin).is_none_or(|r| seq > r.seq);
                if newer {
                    let record = LsaRecord { seq, links, hosts };
                    self.lsdb.insert(origin, record.clone());
                    self.flood(ctx, origin, &record, Some(port));
                    self.run_spf();
                }
            }
            RoutingMsg::Vector { .. } => {} // not our protocol
        }
    }

    fn drop_neighbor(&mut self, ctx: &mut Context<'_>, port: PortNo) {
        if self.neighbors.remove(&port).is_some() {
            self.originate(ctx);
            self.run_spf();
        }
    }
}

impl Node for LinkStateRouter {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.send_hellos(ctx);
        self.originate(ctx);
        ctx.set_timer(self.cfg.hello_interval, TIMER_HELLO);
        ctx.set_timer(self.cfg.dead_interval, TIMER_SWEEP);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        match token {
            TIMER_HELLO => {
                self.send_hellos(ctx);
                ctx.set_timer(self.cfg.hello_interval, TIMER_HELLO);
            }
            TIMER_SWEEP => {
                let deadline = ctx.now();
                let dead: Vec<PortNo> = self
                    .neighbors
                    .iter()
                    .filter(|(_, n)| {
                        deadline.duration_since(n.last_hello) >= self.cfg.dead_interval
                    })
                    .map(|(&p, _)| p)
                    .collect();
                for port in dead {
                    self.drop_neighbor(ctx, port);
                }
                ctx.set_timer(self.cfg.dead_interval, TIMER_SWEEP);
            }
            _ => {}
        }
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, port: PortNo, frame: &[u8]) {
        let Ok(eth) = Frame::new_checked(frame) else {
            return;
        };
        match eth.ethertype() {
            EtherType::Unknown(ROUTING_ETHERTYPE) => {
                let src = eth.src_addr();
                let payload = eth.payload().to_vec();
                self.handle_routing(ctx, port, src, &payload);
            }
            EtherType::Arp => {
                let payload = eth.payload().to_vec();
                if self.chassis.handle_arp(ctx, port, &payload).is_some() {
                    // A new host appeared: advertise it.
                    self.originate(ctx);
                }
            }
            EtherType::Ipv4 => {
                // Learn the sender if this is a host port (no adjacency).
                if !self.neighbors.contains_key(&port) {
                    if let Ok(ip) = zen_wire::ipv4::Packet::new_checked(eth.payload()) {
                        if self.chassis.learn_host(ip.src_addr(), port, eth.src_addr()) {
                            self.originate(ctx);
                        }
                    }
                }
                self.chassis.forward_ipv4(ctx, frame);
            }
            _ => {}
        }
    }

    fn on_link_status(&mut self, ctx: &mut Context<'_>, port: PortNo, up: bool) {
        if !up {
            self.drop_neighbor(ctx, port);
        } else {
            // Probe the restored link right away.
            let hello = RoutingMsg::Hello {
                router_id: self.chassis.router_id,
            };
            self.send_routing(ctx, port, &hello);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zen_sim::{Host, LinkParams, Topology, World};

    /// Build a world with link-state routers on `topo` and one host per
    /// attachment point. Returns (world, router ids, host ids, link ids).
    pub(crate) fn build(
        topo: &Topology,
        seed: u64,
    ) -> (
        World,
        Vec<zen_sim::NodeId>,
        Vec<zen_sim::NodeId>,
        Vec<zen_sim::LinkId>,
    ) {
        let mut world = World::new(seed);
        let routers: Vec<_> = (0..topo.switches)
            .map(|i| world.add_node(Box::new(LinkStateRouter::new(i as u64))))
            .collect();
        let mut links = Vec::new();
        for l in &topo.links {
            let (id, _, _) = world.connect(routers[l.a], routers[l.b], l.params);
            links.push(id);
        }
        let hosts: Vec<_> = topo
            .hosts
            .iter()
            .enumerate()
            .map(|(i, &sw)| {
                let host = Host::new(
                    EthernetAddress::from_id(0x50_0000 + i as u64),
                    Ipv4Address::new(10, 0, (i / 250) as u8, (i % 250 + 1) as u8),
                )
                .with_gratuitous_arp();
                let id = world.add_node(Box::new(host));
                world.connect(id, routers[sw], LinkParams::default());
                id
            })
            .collect();
        (world, routers, hosts, links)
    }

    #[test]
    fn adjacencies_and_lsdb_converge_on_a_line() {
        let topo = Topology::line(3, LinkParams::default()).with_host_per_switch();
        let (mut world, routers, _, _) = build(&topo, 1);
        world.run_until(Instant::from_secs(2));
        for &r in &routers {
            let router = world.node_as::<LinkStateRouter>(r);
            assert_eq!(router.lsdb.len(), 3, "router {r} lsdb incomplete");
        }
        // Middle router has two neighbors, ends have one.
        assert_eq!(
            world.node_as::<LinkStateRouter>(routers[1]).neighbors.len(),
            2
        );
        assert_eq!(
            world.node_as::<LinkStateRouter>(routers[0]).neighbors.len(),
            1
        );
    }

    #[test]
    fn end_to_end_ping_across_three_routers() {
        let mut topo = Topology::line(3, LinkParams::default());
        topo.hosts = vec![0, 2];
        let (mut world, _, hosts, _) = build(&topo, 1);
        // Wire a ping workload onto host 0 after convergence.
        world.run_until(Instant::from_secs(1));
        world.node_as_mut::<Host>(hosts[0]).stats.ping_rtts.count(); // touch to prove access
                                                                     // Add the workload through a fresh host node instead: simpler to
                                                                     // drive pings by reconstructing the host with a workload.
                                                                     // (Covered more naturally in the integration suite.)
        let r0 = world.node_as::<LinkStateRouter>(zen_sim::NodeId(0));
        // Both hosts known somewhere in the LSDB.
        let total_hosts: usize = r0.lsdb.values().map(|r| r.hosts.len()).sum();
        assert_eq!(total_hosts, 2);
        assert!(r0.chassis.route_count() >= 1);
    }

    #[test]
    fn link_failure_triggers_reroute() {
        // Square: 0-1-3 and 0-2-3.
        let mut topo = Topology::ring(4, LinkParams::default());
        topo.hosts = vec![0, 3];
        let (mut world, routers, _, links) = build(&topo, 1);
        world.run_until(Instant::from_secs(1));

        let host3_ip = Ipv4Address::new(10, 0, 0, 2);
        let before = world
            .node_as::<LinkStateRouter>(routers[0])
            .chassis
            .route_for(host3_ip)
            .expect("route to host on r3");

        // Cut the link currently carrying the route.
        let carrying = links
            .iter()
            .find(|&&l| {
                let link = world.link(l);
                (link.a.0 == routers[0] && link.a.1 == before.port)
                    || (link.b.0 == routers[0] && link.b.1 == before.port)
            })
            .copied()
            .expect("link for route port");
        world.schedule_link_state(
            carrying,
            false,
            Instant::from_secs(1) + Duration::from_millis(1),
        );
        world.run_until(Instant::from_secs(3));

        let after = world
            .node_as::<LinkStateRouter>(routers[0])
            .chassis
            .route_for(host3_ip)
            .expect("route survives failure");
        assert_ne!(
            after.port, before.port,
            "route did not move off the dead link"
        );
    }

    #[test]
    fn dead_interval_removes_silent_neighbor() {
        // Two routers; silence one by removing it (simulate by dropping
        // the link without the status event reaching r0 is not possible
        // here, so instead verify hello refresh keeps adjacency alive).
        let topo = Topology::line(2, LinkParams::default());
        let (mut world, routers, _, _) = build(&topo, 1);
        world.run_until(Instant::from_secs(5));
        let r0 = world.node_as::<LinkStateRouter>(routers[0]);
        assert_eq!(r0.neighbors.len(), 1, "adjacency must persist under hellos");
    }
}
