//! Wire format of the distributed routing protocols.
//!
//! Messages ride in Ethernet frames with [`crate::ROUTING_ETHERTYPE`],
//! addressed to the all-routers multicast group. Encoding is simple
//! big-endian TLV-free structs; decoding is bounds-checked.

use zen_wire::{EthernetAddress, Ipv4Address};

/// The multicast destination routing messages use.
pub const ROUTERS_MULTICAST: EthernetAddress =
    EthernetAddress([0x01, 0x80, 0xc2, 0x00, 0x00, 0x41]);

/// A routing-protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoutingMsg {
    /// Periodic neighbor keepalive carrying the sender's router id.
    Hello {
        /// The sending router.
        router_id: u64,
    },
    /// A link-state advertisement, flooded network-wide.
    Lsa {
        /// Originating router.
        origin: u64,
        /// Monotonic per-origin sequence number.
        seq: u64,
        /// (neighbor router id, cost) adjacencies.
        links: Vec<(u64, u32)>,
        /// Host /32 addresses attached to the origin.
        hosts: Vec<Ipv4Address>,
    },
    /// A distance-vector advertisement sent to one neighbor.
    Vector {
        /// The sending router.
        sender: u64,
        /// (host address, metric) entries; metric 16 = unreachable.
        entries: Vec<(Ipv4Address, u8)>,
    },
}

impl RoutingMsg {
    /// Encode to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            RoutingMsg::Hello { router_id } => {
                out.push(0);
                out.extend_from_slice(&router_id.to_be_bytes());
            }
            RoutingMsg::Lsa {
                origin,
                seq,
                links,
                hosts,
            } => {
                out.push(1);
                out.extend_from_slice(&origin.to_be_bytes());
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(&(links.len() as u16).to_be_bytes());
                for (neighbor, cost) in links {
                    out.extend_from_slice(&neighbor.to_be_bytes());
                    out.extend_from_slice(&cost.to_be_bytes());
                }
                out.extend_from_slice(&(hosts.len() as u16).to_be_bytes());
                for host in hosts {
                    out.extend_from_slice(host.as_bytes());
                }
            }
            RoutingMsg::Vector { sender, entries } => {
                out.push(2);
                out.extend_from_slice(&sender.to_be_bytes());
                out.extend_from_slice(&(entries.len() as u16).to_be_bytes());
                for (addr, metric) in entries {
                    out.extend_from_slice(addr.as_bytes());
                    out.push(*metric);
                }
            }
        }
        out
    }

    /// Decode from bytes; `None` on any malformation.
    pub fn decode(data: &[u8]) -> Option<RoutingMsg> {
        let mut rd = Rd { data, at: 0 };
        let msg = match rd.u8()? {
            0 => RoutingMsg::Hello {
                router_id: rd.u64()?,
            },
            1 => {
                let origin = rd.u64()?;
                let seq = rd.u64()?;
                let n_links = rd.u16()? as usize;
                if n_links > data.len() {
                    return None;
                }
                let mut links = Vec::with_capacity(n_links);
                for _ in 0..n_links {
                    links.push((rd.u64()?, rd.u32()?));
                }
                let n_hosts = rd.u16()? as usize;
                if n_hosts > data.len() {
                    return None;
                }
                let mut hosts = Vec::with_capacity(n_hosts);
                for _ in 0..n_hosts {
                    hosts.push(rd.ip()?);
                }
                RoutingMsg::Lsa {
                    origin,
                    seq,
                    links,
                    hosts,
                }
            }
            2 => {
                let sender = rd.u64()?;
                let n = rd.u16()? as usize;
                if n > data.len() {
                    return None;
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push((rd.ip()?, rd.u8()?));
                }
                RoutingMsg::Vector { sender, entries }
            }
            _ => return None,
        };
        if rd.at == data.len() {
            Some(msg)
        } else {
            None
        }
    }
}

struct Rd<'a> {
    data: &'a [u8],
    at: usize,
}

impl Rd<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        if self.at + n > self.data.len() {
            return None;
        }
        let s = &self.data[self.at..self.at + n];
        self.at += n;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn ip(&mut self) -> Option<Ipv4Address> {
        Some(Ipv4Address::from_bytes(self.take(4)?))
    }
}

/// Simplified spanning-tree BPDU, used by [`crate::l2::LearningSwitch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bpdu {
    /// Best root bridge known to the sender.
    pub root_id: u64,
    /// Sender's cost to that root.
    pub root_cost: u32,
    /// Sender bridge id.
    pub sender_id: u64,
}

impl Bpdu {
    /// Encode to bytes (tag 3 in the shared routing EtherType space).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(21);
        out.push(3);
        out.extend_from_slice(&self.root_id.to_be_bytes());
        out.extend_from_slice(&self.root_cost.to_be_bytes());
        out.extend_from_slice(&self.sender_id.to_be_bytes());
        out
    }

    /// Decode from bytes.
    pub fn decode(data: &[u8]) -> Option<Bpdu> {
        if data.len() != 21 || data[0] != 3 {
            return None;
        }
        Some(Bpdu {
            root_id: u64::from_be_bytes(data[1..9].try_into().unwrap()),
            root_cost: u32::from_be_bytes(data[9..13].try_into().unwrap()),
            sender_id: u64::from_be_bytes(data[13..21].try_into().unwrap()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_roundtrip() {
        let msg = RoutingMsg::Hello { router_id: 42 };
        assert_eq!(RoutingMsg::decode(&msg.encode()), Some(msg));
    }

    #[test]
    fn lsa_roundtrip() {
        let msg = RoutingMsg::Lsa {
            origin: 7,
            seq: 123,
            links: vec![(8, 1), (9, 5)],
            hosts: vec![Ipv4Address::new(10, 0, 0, 1), Ipv4Address::new(10, 0, 0, 2)],
        };
        assert_eq!(RoutingMsg::decode(&msg.encode()), Some(msg));
    }

    #[test]
    fn vector_roundtrip() {
        let msg = RoutingMsg::Vector {
            sender: 3,
            entries: vec![
                (Ipv4Address::new(10, 0, 0, 1), 2),
                (Ipv4Address::new(10, 0, 0, 9), 16),
            ],
        };
        assert_eq!(RoutingMsg::decode(&msg.encode()), Some(msg));
    }

    #[test]
    fn empty_lsa_roundtrip() {
        let msg = RoutingMsg::Lsa {
            origin: 1,
            seq: 0,
            links: vec![],
            hosts: vec![],
        };
        assert_eq!(RoutingMsg::decode(&msg.encode()), Some(msg));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(RoutingMsg::decode(&[]), None);
        assert_eq!(RoutingMsg::decode(&[9, 1, 2]), None);
        // Truncated LSA.
        let msg = RoutingMsg::Lsa {
            origin: 7,
            seq: 1,
            links: vec![(8, 1)],
            hosts: vec![],
        };
        let bytes = msg.encode();
        for cut in 1..bytes.len() {
            assert_eq!(RoutingMsg::decode(&bytes[..cut]), None, "cut {cut}");
        }
        // Trailing garbage.
        let mut extended = bytes;
        extended.push(0);
        assert_eq!(RoutingMsg::decode(&extended), None);
    }

    #[test]
    fn bpdu_roundtrip() {
        let bpdu = Bpdu {
            root_id: 1,
            root_cost: 7,
            sender_id: 9,
        };
        assert_eq!(Bpdu::decode(&bpdu.encode()), Some(bpdu));
        assert_eq!(Bpdu::decode(&[0; 5]), None);
    }
}
