//! A RIP-style distance-vector router.
//!
//! Routers multicast their full vector periodically and on change
//! (triggered updates), apply split horizon with poisoned reverse, and
//! treat metric 16 as infinity. Routes expire when their advertising
//! neighbor goes quiet. Slower to converge than link-state — which is
//! exactly what the convergence experiment measures.

use std::any::Any;
use std::collections::BTreeMap;

use zen_fib::Ipv4Cidr;
use zen_sim::{Context, CounterId, Duration, Instant, Node, PortNo};
use zen_wire::builder::PacketBuilder;
use zen_wire::ethernet::{EtherType, Frame};
use zen_wire::{EthernetAddress, Ipv4Address};

use crate::chassis::{Adjacency, Chassis};
use crate::proto::{RoutingMsg, ROUTERS_MULTICAST};
use crate::ROUTING_ETHERTYPE;

const TIMER_ADVERTISE: u64 = 1;
const TIMER_TRIGGERED: u64 = 2;
const TIMER_SWEEP: u64 = 3;

/// The unreachable metric.
pub const INFINITY: u8 = 16;

/// Protocol timing knobs.
#[derive(Debug, Clone, Copy)]
pub struct DvConfig {
    /// Full-table advertisement period.
    pub advertise_interval: Duration,
    /// Route expiry when its neighbor goes quiet.
    pub route_timeout: Duration,
    /// Delay before a triggered update (batches bursts of changes).
    pub triggered_delay: Duration,
}

impl Default for DvConfig {
    fn default() -> DvConfig {
        DvConfig {
            advertise_interval: Duration::from_millis(500),
            route_timeout: Duration::from_millis(1750),
            triggered_delay: Duration::from_millis(10),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Route {
    metric: u8,
    /// The port the route was learned on; `None` for local hosts.
    via: Option<PortNo>,
    last_refresh: Instant,
}

/// The distance-vector router node.
pub struct DistanceVectorRouter {
    /// Forwarding machinery and counters.
    pub chassis: Chassis,
    cfg: DvConfig,
    routes: BTreeMap<Ipv4Address, Route>,
    /// MAC of the last router heard per port (the next hop for routes
    /// learned there).
    neighbor_mac: BTreeMap<PortNo, EthernetAddress>,
    triggered_pending: bool,
    /// Typed handle for the shared `routing.msgs` counter, registered
    /// at start so the send path never does a string lookup.
    msgs_id: Option<CounterId>,
    /// Routing-protocol messages sent (experiment metric).
    pub control_msgs_sent: u64,
}

impl DistanceVectorRouter {
    /// A router with default timers.
    pub fn new(router_id: u64) -> DistanceVectorRouter {
        DistanceVectorRouter::with_config(router_id, DvConfig::default())
    }

    /// A router with explicit timers.
    pub fn with_config(router_id: u64, cfg: DvConfig) -> DistanceVectorRouter {
        DistanceVectorRouter {
            chassis: Chassis::new(router_id),
            cfg,
            routes: BTreeMap::new(),
            neighbor_mac: BTreeMap::new(),
            triggered_pending: false,
            msgs_id: None,
            control_msgs_sent: 0,
        }
    }

    /// This router's id.
    pub fn router_id(&self) -> u64 {
        self.chassis.router_id
    }

    /// The current metric to `addr`, if a live route exists.
    pub fn metric_to(&self, addr: Ipv4Address) -> Option<u8> {
        self.routes
            .get(&addr)
            .filter(|r| r.metric < INFINITY)
            .map(|r| r.metric)
    }

    fn advertise(&mut self, ctx: &mut Context<'_>) {
        // One vector per port with split horizon + poisoned reverse.
        for port in ctx.ports() {
            let entries: Vec<(Ipv4Address, u8)> = self
                .routes
                .iter()
                .map(|(&addr, route)| {
                    let metric = if route.via == Some(port) {
                        INFINITY // poisoned reverse
                    } else {
                        route.metric
                    };
                    (addr, metric)
                })
                .collect();
            let msg = RoutingMsg::Vector {
                sender: self.chassis.router_id,
                entries,
            };
            let frame = PacketBuilder::ethernet(
                self.chassis.mac,
                ROUTERS_MULTICAST,
                EtherType::Unknown(ROUTING_ETHERTYPE),
                &msg.encode(),
            );
            self.control_msgs_sent += 1;
            let id = *self
                .msgs_id
                .get_or_insert_with(|| ctx.metrics().register_counter("routing.msgs"));
            ctx.metrics().incr(id);
            ctx.transmit(port, frame);
        }
    }

    fn schedule_triggered(&mut self, ctx: &mut Context<'_>) {
        if !self.triggered_pending {
            self.triggered_pending = true;
            ctx.set_timer(self.cfg.triggered_delay, TIMER_TRIGGERED);
        }
    }

    fn rebuild_fib(&mut self) {
        let routes: Vec<(Ipv4Cidr, Adjacency)> = self
            .routes
            .iter()
            .filter(|(_, r)| r.metric < INFINITY)
            .filter_map(|(&addr, r)| {
                let port = r.via?;
                let mac = *self.neighbor_mac.get(&port)?;
                Some((
                    Ipv4Cidr::new(addr, 32).expect("/32"),
                    Adjacency { port, mac },
                ))
            })
            .collect();
        self.chassis.install_routes(&routes);
    }

    fn handle_vector(
        &mut self,
        ctx: &mut Context<'_>,
        port: PortNo,
        src: EthernetAddress,
        entries: &[(Ipv4Address, u8)],
    ) {
        self.neighbor_mac.insert(port, src);
        let now = ctx.now();
        let mut changed = false;
        for &(addr, advertised) in entries {
            let candidate = advertised.saturating_add(1).min(INFINITY);
            match self.routes.get_mut(&addr) {
                Some(route) if route.via == Some(port) => {
                    // Updates from the route's own next hop always apply
                    // (including worsening, which propagates failures).
                    route.last_refresh = now;
                    if route.metric != candidate {
                        route.metric = candidate;
                        changed = true;
                    }
                }
                Some(route) if candidate < route.metric => {
                    *route = Route {
                        metric: candidate,
                        via: Some(port),
                        last_refresh: now,
                    };
                    changed = true;
                }
                Some(_) => {}
                None if candidate < INFINITY => {
                    self.routes.insert(
                        addr,
                        Route {
                            metric: candidate,
                            via: Some(port),
                            last_refresh: now,
                        },
                    );
                    changed = true;
                }
                None => {}
            }
        }
        if changed {
            self.rebuild_fib();
            self.schedule_triggered(ctx);
        }
    }

    fn poison_port(&mut self, ctx: &mut Context<'_>, port: PortNo) {
        let mut changed = false;
        for route in self.routes.values_mut() {
            if route.via == Some(port) && route.metric < INFINITY {
                route.metric = INFINITY;
                changed = true;
            }
        }
        if changed {
            self.rebuild_fib();
            self.schedule_triggered(ctx);
        }
    }
}

impl Node for DistanceVectorRouter {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.advertise(ctx);
        ctx.set_timer(self.cfg.advertise_interval, TIMER_ADVERTISE);
        ctx.set_timer(self.cfg.route_timeout, TIMER_SWEEP);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        match token {
            TIMER_ADVERTISE => {
                self.advertise(ctx);
                ctx.set_timer(self.cfg.advertise_interval, TIMER_ADVERTISE);
            }
            TIMER_TRIGGERED => {
                self.triggered_pending = false;
                self.advertise(ctx);
            }
            TIMER_SWEEP => {
                let now = ctx.now();
                let mut changed = false;
                // Expire quiet remote routes; drop fully aged poisoned ones.
                self.routes.retain(|_, route| {
                    if route.via.is_none() {
                        return true; // local hosts never expire
                    }
                    let age = now.duration_since(route.last_refresh);
                    if route.metric >= INFINITY {
                        // Garbage-collect after another timeout period.
                        if age >= self.cfg.route_timeout {
                            changed = true;
                            return false;
                        }
                        return true;
                    }
                    if age >= self.cfg.route_timeout {
                        route.metric = INFINITY;
                        changed = true;
                    }
                    true
                });
                if changed {
                    self.rebuild_fib();
                    self.schedule_triggered(ctx);
                }
                ctx.set_timer(self.cfg.route_timeout, TIMER_SWEEP);
            }
            _ => {}
        }
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, port: PortNo, frame: &[u8]) {
        let Ok(eth) = Frame::new_checked(frame) else {
            return;
        };
        match eth.ethertype() {
            EtherType::Unknown(ROUTING_ETHERTYPE) => {
                let src = eth.src_addr();
                let payload = eth.payload().to_vec();
                if let Some(RoutingMsg::Vector { entries, .. }) = RoutingMsg::decode(&payload) {
                    self.handle_vector(ctx, port, src, &entries);
                }
            }
            EtherType::Arp => {
                let payload = eth.payload().to_vec();
                if let Some(ip) = self.chassis.handle_arp(ctx, port, &payload) {
                    self.routes.insert(
                        ip,
                        Route {
                            metric: 1,
                            via: None,
                            last_refresh: ctx.now(),
                        },
                    );
                    self.schedule_triggered(ctx);
                }
            }
            EtherType::Ipv4 => {
                if !self.neighbor_mac.contains_key(&port) {
                    if let Ok(ip) = zen_wire::ipv4::Packet::new_checked(eth.payload()) {
                        if self.chassis.learn_host(ip.src_addr(), port, eth.src_addr()) {
                            self.routes.insert(
                                ip.src_addr(),
                                Route {
                                    metric: 1,
                                    via: None,
                                    last_refresh: ctx.now(),
                                },
                            );
                            self.schedule_triggered(ctx);
                        }
                    }
                }
                self.chassis.forward_ipv4(ctx, frame);
            }
            _ => {}
        }
    }

    fn on_link_status(&mut self, ctx: &mut Context<'_>, port: PortNo, up: bool) {
        if !up {
            self.poison_port(ctx, port);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zen_sim::{Host, LinkParams, Topology, World};

    fn build(topo: &Topology, seed: u64) -> (World, Vec<zen_sim::NodeId>, Vec<zen_sim::NodeId>) {
        let mut world = World::new(seed);
        let routers: Vec<_> = (0..topo.switches)
            .map(|i| world.add_node(Box::new(DistanceVectorRouter::new(i as u64))))
            .collect();
        for l in &topo.links {
            world.connect(routers[l.a], routers[l.b], l.params);
        }
        let hosts: Vec<_> = topo
            .hosts
            .iter()
            .enumerate()
            .map(|(i, &sw)| {
                let host = Host::new(
                    EthernetAddress::from_id(0x50_0000 + i as u64),
                    Ipv4Address::new(10, 0, 0, (i + 1) as u8),
                )
                .with_gratuitous_arp();
                let id = world.add_node(Box::new(host));
                world.connect(id, routers[sw], LinkParams::default());
                id
            })
            .collect();
        (world, routers, hosts)
    }

    #[test]
    fn vectors_propagate_along_a_line() {
        let mut topo = Topology::line(4, LinkParams::default());
        topo.hosts = vec![0, 3];
        let (mut world, routers, _) = build(&topo, 1);
        world.run_until(Instant::from_secs(5));
        // Router 0 must know host 2 (attached to router 3) at metric 4:
        // local(1) +1 per hop over three router-router links.
        let r0 = world.node_as::<DistanceVectorRouter>(routers[0]);
        let host2 = Ipv4Address::new(10, 0, 0, 2);
        assert_eq!(r0.metric_to(host2), Some(4));
        assert!(r0.chassis.route_for(host2).is_some());
    }

    #[test]
    fn split_horizon_poisons_reverse() {
        let mut topo = Topology::line(2, LinkParams::default());
        topo.hosts = vec![0];
        let (mut world, routers, _) = build(&topo, 1);
        world.run_until(Instant::from_secs(3));
        // r1 knows the host via r0; r1's advert back to r0 must poison it.
        let r1 = world.node_as::<DistanceVectorRouter>(routers[1]);
        let host = Ipv4Address::new(10, 0, 0, 1);
        assert_eq!(r1.metric_to(host), Some(2));
        // r0 must not have adopted a route via r1 (its own metric stays 1).
        let r0 = world.node_as::<DistanceVectorRouter>(routers[0]);
        assert_eq!(r0.metric_to(host), Some(1));
        assert!(r0.routes[&host].via.is_none(), "r0's route must stay local");
    }

    #[test]
    fn failure_poisons_and_recovers_alternate() {
        // Square 0-1-2-3-0, host at 0 and 2; cut 0-1 and the route flips
        // to the 0-3-2 side.
        let mut topo = Topology::ring(4, LinkParams::default());
        topo.hosts = vec![0, 2];
        let (mut world, routers, _) = build(&topo, 1);
        world.run_until(Instant::from_secs(5));

        let host_at_2 = Ipv4Address::new(10, 0, 0, 2);
        let before = world
            .node_as::<DistanceVectorRouter>(routers[0])
            .chassis
            .route_for(host_at_2)
            .expect("initial route");

        // Find and cut the link carrying it.
        let carrying = world
            .links()
            .find(|(_, link)| {
                (link.a.0 == routers[0] && link.a.1 == before.port)
                    || (link.b.0 == routers[0] && link.b.1 == before.port)
            })
            .map(|(id, _)| id)
            .expect("carrying link");
        world.schedule_link_state(
            carrying,
            false,
            Instant::from_secs(5) + Duration::from_millis(1),
        );
        world.run_until(Instant::from_secs(15));

        let after = world
            .node_as::<DistanceVectorRouter>(routers[0])
            .chassis
            .route_for(host_at_2)
            .expect("route after failure");
        assert_ne!(after.port, before.port);
        let r0 = world.node_as::<DistanceVectorRouter>(routers[0]);
        assert_eq!(r0.metric_to(host_at_2), Some(3), "longer way round");
    }

    #[test]
    fn unreachable_routes_garbage_collected() {
        let mut topo = Topology::line(2, LinkParams::default());
        topo.hosts = vec![1];
        let (mut world, routers, _) = build(&topo, 1);
        world.run_until(Instant::from_secs(3));
        let host = Ipv4Address::new(10, 0, 0, 1);
        assert!(world
            .node_as::<DistanceVectorRouter>(routers[0])
            .metric_to(host)
            .is_some());
        // Cut the only link: the route must eventually vanish entirely.
        let link = world.links().next().map(|(id, _)| id).unwrap();
        world.schedule_link_state(
            link,
            false,
            Instant::from_secs(3) + Duration::from_millis(1),
        );
        world.run_until(Instant::from_secs(12));
        let r0 = world.node_as::<DistanceVectorRouter>(routers[0]);
        assert_eq!(r0.metric_to(host), None);
        assert!(
            !r0.routes.contains_key(&host),
            "poisoned route must be GC'd"
        );
    }
}
