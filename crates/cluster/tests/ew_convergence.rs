//! Seeded property test: the east-west store converges under hostile
//! delivery. A scripted scheduler interleaves local appends, digest
//! exchanges with duplicated and reordered delivery, ack/prune rounds
//! against the partition-local live set, and random partition flips.
//! After the partitions heal and a bounded number of repair rounds run,
//! every replica must hold an identical applied map, identical winning
//! stamps, and identical digests — for every seed.

use zen_cluster::{Admit, EwStore};
use zen_proto::ViewEvent;

const N: usize = 3;
const STEPS: usize = 400;

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// A random link event over a small key space, so replicas contend for
/// the same logical keys and exercise last-writer-wins.
fn random_event(r: u64) -> ViewEvent {
    let dpid = r % 8;
    let port = ((r >> 3) % 4 + 1) as u32;
    if (r >> 5).is_multiple_of(3) {
        ViewEvent::LinkDel {
            from_dpid: dpid,
            from_port: port,
        }
    } else {
        ViewEvent::LinkAdd {
            from_dpid: dpid,
            from_port: port,
            to_dpid: (dpid + 1) % 8,
            to_port: 1,
        }
    }
}

/// One anti-entropy round from `src` into `dst`, with the delivery
/// order and duplication controlled by the rng. Gaps produced by the
/// reordering are dropped, as on the wire; later rounds repair them.
fn gossip(stores: &mut [EwStore], src: usize, dst: usize, rng: &mut u64) {
    let want = stores[dst].missing_ranges(&stores[src].digest());
    let (entries, snapshot) = stores[src].serve_ranges(&want);
    if snapshot {
        let (heads, snap_entries, checksum) = stores[src].snapshot();
        let applied = stores[dst].install_snapshot(&heads, snap_entries, checksum);
        assert!(applied.is_some(), "snapshot checksum must verify");
    }
    let mut batch = entries;
    // Maybe swap a random adjacent pair (reorder) and duplicate one
    // entry (redelivery); admit() must shrug both off.
    if batch.len() >= 2 && xorshift(rng).is_multiple_of(3) {
        let i = (xorshift(rng) as usize) % (batch.len() - 1);
        batch.swap(i, i + 1);
    }
    if !batch.is_empty() && xorshift(rng).is_multiple_of(3) {
        let i = (xorshift(rng) as usize) % batch.len();
        let dup = batch[i].clone();
        batch.push(dup);
    }
    for e in batch {
        // Every admit outcome is legal under hostile delivery; only
        // panics or misapplication would be bugs, and misapplication
        // is caught by the convergence assertions below.
        let _ = stores[dst].admit(&e);
    }
}

fn live_of(sides: &[usize], me: usize) -> Vec<usize> {
    (0..N)
        .filter(|&j| j == me || sides[j] == sides[me])
        .collect()
}

#[test]
fn seeded_schedules_converge_after_heal() {
    for seed in 1..=10u64 {
        let mut rng = seed;
        let mut stores: Vec<EwStore> = (0..N).map(|i| EwStore::new(i as u32, N)).collect();
        let mut sides = [0usize; N];
        for step in 0..STEPS {
            let term = (step / 25 + 1) as u64;
            match xorshift(&mut rng) % 100 {
                0..=39 => {
                    let i = (xorshift(&mut rng) as usize) % N;
                    let e = random_event(xorshift(&mut rng));
                    stores[i].append(term, e);
                }
                40..=84 => {
                    let i = (xorshift(&mut rng) as usize) % N;
                    let j = (xorshift(&mut rng) as usize) % N;
                    if i != j && sides[i] == sides[j] {
                        gossip(&mut stores, i, j, &mut rng);
                    }
                }
                85..=91 => {
                    let i = (xorshift(&mut rng) as usize) % N;
                    let j = (xorshift(&mut rng) as usize) % N;
                    if i != j && sides[i] == sides[j] {
                        let acks = stores[j].acks();
                        stores[i].note_peer_acks(j as u32, &acks);
                        let live = live_of(&sides, i);
                        stores[i].prune_acked(&live);
                    }
                }
                _ => {
                    for s in sides.iter_mut() {
                        *s = (xorshift(&mut rng) % 2) as usize;
                    }
                }
            }
        }
        // Heal and run deterministic repair rounds: every ordered pair
        // exchanges digests with clean delivery until quiescent.
        for _ in 0..8 {
            for i in 0..N {
                for j in 0..N {
                    if i == j {
                        continue;
                    }
                    let want = stores[j].missing_ranges(&stores[i].digest());
                    let (entries, snapshot) = stores[i].serve_ranges(&want);
                    if snapshot {
                        let (heads, snap_entries, checksum) = stores[i].snapshot();
                        stores[j]
                            .install_snapshot(&heads, snap_entries, checksum)
                            .expect("snapshot checksum must verify");
                    }
                    for e in entries {
                        assert_ne!(
                            stores[j].admit(&e),
                            Admit::Gap,
                            "seed {seed}: clean in-order repair must not gap"
                        );
                    }
                }
            }
        }
        for i in 1..N {
            for o in 0..N as u32 {
                assert_eq!(
                    stores[i].applied_high(o),
                    stores[0].applied_high(o),
                    "seed {seed}: applied map diverged at replica {i} origin {o}"
                );
            }
            assert_eq!(
                stores[i].stamps(),
                stores[0].stamps(),
                "seed {seed}: winning stamps diverged at replica {i}"
            );
            // Floors are replica-local (they track when each replica
            // pruned); convergence is equal heads and chain hashes.
            let summarize = |s: &EwStore| -> Vec<(u32, u64, u64)> {
                s.digest()
                    .iter()
                    .map(|h| (h.origin, h.head, h.hash))
                    .collect()
            };
            assert_eq!(
                summarize(&stores[i]),
                summarize(&stores[0]),
                "seed {seed}: digests diverged at replica {i}"
            );
        }
    }
}
