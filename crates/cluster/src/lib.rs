//! # zen-cluster — distributed control-plane substrate
//!
//! The mechanisms a controller replica needs to be part of an
//! ONOS-style cluster, independent of the controller itself:
//!
//! * [`Membership`] — lease-based liveness over east-west heartbeats
//!   plus a deterministic per-switch mastership function. There is no
//!   separate election protocol: every replica computes the same
//!   `master(dpid) = live_replicas[dpid % n_live]` assignment from its
//!   own live set, and divergent live sets (partitions) are resolved at
//!   the switch by comparing `(term, replica)` claims — the mastership
//!   **term** grows by the number of membership changes a replica has
//!   observed, so the replica that lost *more* peers (the minority side
//!   of a partition) always presents the strictly higher term.
//! * [`EwStore`] — per-origin monotonic event logs with digest-based
//!   anti-entropy. Every replica retains entries from **all** origins
//!   (so any live peer can repair any other), summarises each origin
//!   log as an [`OriginHead`] — retention floor, applied head, and a
//!   rolling chain hash over the entries — and peers compare digests to
//!   fetch exactly the missing ranges. A replica that has fallen behind
//!   a retention floor bootstraps from a checksummed snapshot of the
//!   winning entry per key instead of replaying the full log. The
//!   legacy suffix-resend mode ([`GossipMode::Suffix`]) is kept for
//!   comparison benchmarks. Writes to the same logical key resolve
//!   last-writer-wins on `(term, seq, origin)`, like ONOS's eventually
//!   consistent maps.
//!
//! Everything is deterministic: no wall-clock time, no randomness, all
//! maps ordered.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use zen_consensus::{chain_ew, CHAIN_SEED};
use zen_proto::{EwEntry, OriginHead, ViewEvent};
use zen_sim::{Duration, Instant, NodeId};

/// How replicas reconcile their east-west stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GossipMode {
    /// Blind suffix resend: each origin pushes its unacknowledged
    /// contiguous suffix to every peer each round. O(log length) per
    /// reconciliation; kept as the benchmark baseline.
    Suffix,
    /// Digest anti-entropy: heartbeats carry per-origin
    /// `(floor, head, hash)` summaries and peers fetch exactly the
    /// missing ranges, falling back to a checksummed snapshot below
    /// the retention floor.
    Digest,
}

/// Static description of a cluster from one replica's point of view.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Node ids of every replica, in replica-index order. All replicas
    /// must agree on this vector.
    pub replicas: Vec<NodeId>,
    /// This replica's index into `replicas`.
    pub index: usize,
    /// Silence threshold: a peer unheard from for this long is presumed
    /// dead and its switches are taken over.
    pub lease_timeout: Duration,
    /// How the east-west store reconciles with peers.
    pub gossip: GossipMode,
}

impl ClusterConfig {
    /// A config with the default 300 ms mastership lease and digest
    /// anti-entropy.
    pub fn new(replicas: Vec<NodeId>, index: usize) -> ClusterConfig {
        ClusterConfig {
            replicas,
            index,
            lease_timeout: Duration::from_millis(300),
            gossip: GossipMode::Digest,
        }
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the cluster is a single replica (degenerate).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// The replica index of `node`, if it is a replica.
    pub fn index_of(&self, node: NodeId) -> Option<usize> {
        self.replicas.iter().position(|&n| n == node)
    }
}

/// Lease-based membership and the deterministic mastership function.
#[derive(Debug)]
pub struct Membership {
    cfg: ClusterConfig,
    /// Last heartbeat per replica index; our own slot tracks `now`.
    last_heard: Vec<Instant>,
    alive: Vec<bool>,
    term: u64,
}

impl Membership {
    /// A membership view that starts with every replica presumed alive
    /// (bring-up grace: nobody has heartbeated yet at t=0).
    pub fn new(cfg: ClusterConfig, now: Instant) -> Membership {
        let n = cfg.replicas.len();
        Membership {
            cfg,
            last_heard: vec![now; n],
            alive: vec![true; n],
            term: 1,
        }
    }

    /// The cluster config.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// This replica's index.
    pub fn index(&self) -> usize {
        self.cfg.index
    }

    /// The current mastership term.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Record a heartbeat from `replica` carrying its `term`. Terms
    /// merge by max, so a healed partition converges on the highest
    /// term either side reached.
    pub fn note_heartbeat(&mut self, replica: u32, term: u64, now: Instant) {
        if let Some(slot) = self.last_heard.get_mut(replica as usize) {
            *slot = now;
        }
        self.term = self.term.max(term);
    }

    /// Re-evaluate peer liveness against the lease. Each peer that
    /// flips (alive→dead or dead→alive) bumps the term by one, so the
    /// side of a partition that lost more peers claims with a strictly
    /// higher term. Returns `true` if any peer flipped.
    pub fn scan(&mut self, now: Instant) -> bool {
        let mut changed = false;
        for i in 0..self.cfg.replicas.len() {
            if i == self.cfg.index {
                self.last_heard[i] = now;
                continue;
            }
            let live = now.duration_since(self.last_heard[i]) < self.cfg.lease_timeout;
            if live != self.alive[i] {
                self.alive[i] = live;
                self.term += 1;
                changed = true;
            }
        }
        changed
    }

    /// Whether replica `i` is currently presumed alive.
    pub fn is_alive(&self, i: usize) -> bool {
        self.alive.get(i).copied().unwrap_or(false)
    }

    /// Indices of replicas currently presumed alive (always includes
    /// self), ascending.
    pub fn live(&self) -> Vec<usize> {
        (0..self.cfg.replicas.len())
            .filter(|&i| i == self.cfg.index || self.alive[i])
            .collect()
    }

    /// The replica index every replica with this live set would elect
    /// as master of `dpid`.
    pub fn master_index(&self, dpid: u64) -> usize {
        let live = self.live();
        live[(dpid % live.len() as u64) as usize]
    }

    /// Whether this replica's own assignment says it masters `dpid`.
    /// (A stronger claim observed at the switch may still override —
    /// that bookkeeping lives with the connection owner.)
    pub fn assigned_master(&self, dpid: u64) -> bool {
        self.master_index(dpid) == self.cfg.index
    }

    /// This replica's mastership claim, ordered lexicographically:
    /// the higher `(term, replica)` wins a contested switch.
    pub fn claim(&self) -> (u64, u32) {
        (self.term, self.cfg.index as u32)
    }
}

/// The logical key a [`ViewEvent`] writes, for last-writer-wins
/// resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKey {
    /// A directed link, keyed by its source endpoint.
    Link(u64, u32),
    /// A host, keyed by MAC (as u64).
    Host(u64),
    /// One switch's cookie shadow.
    Shadow(u64),
    /// One (switch, app-cookie) program stamp.
    Stamp(u64, u64),
}

/// The key `event` writes.
pub fn event_key(event: &ViewEvent) -> EventKey {
    match event {
        ViewEvent::LinkAdd {
            from_dpid,
            from_port,
            ..
        }
        | ViewEvent::LinkDel {
            from_dpid,
            from_port,
        } => EventKey::Link(*from_dpid, *from_port),
        ViewEvent::HostLearned { mac, .. } => {
            let b = mac.as_bytes();
            let mut v = 0u64;
            for &x in b {
                v = (v << 8) | u64::from(x);
            }
            EventKey::Host(v)
        }
        ViewEvent::ShadowSet { dpid, .. } => EventKey::Shadow(*dpid),
        ViewEvent::ProgramStamp { dpid, cookie, .. } => EventKey::Stamp(*dpid, *cookie),
    }
}

/// What [`EwStore::admit`] decided about a received entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// New and the latest writer for its key: apply it.
    Apply,
    /// New but an already-applied write to the same key outranks it:
    /// record it, skip application.
    Stale,
    /// Already seen (duplicate delivery): ignore.
    Duplicate,
    /// Out of order (a gap before it): ignore; the origin resends the
    /// contiguous suffix on the next anti-entropy round.
    Gap,
}

/// Per-origin monotonic event logs with digest anti-entropy metadata.
/// See the crate docs for the protocol.
#[derive(Debug)]
pub struct EwStore {
    origin: u32,
    n_replicas: usize,
    /// Retained entries per origin, by seq. All origins are kept (not
    /// just our own) so any live replica can repair any other.
    logs: BTreeMap<u32, BTreeMap<u64, EwEntry>>,
    /// Retention floor per origin: seqs at or below it are pruned and
    /// only reachable through a snapshot.
    floors: BTreeMap<u32, u64>,
    /// Rolling chain hash per origin over entries `1..=applied_high`.
    hashes: BTreeMap<u32, u64>,
    next_seq: u64,
    /// Highest contiguous seq applied locally, per origin. Our own slot
    /// is `next_seq - 1`.
    applied: BTreeMap<u32, u64>,
    /// Per-origin high-water marks each peer has acknowledged.
    peer_acks: BTreeMap<u32, BTreeMap<u32, u64>>,
    /// Winning `(term, seq, origin)` stamp per logical key.
    stamps: BTreeMap<EventKey, (u64, u64, u32)>,
    /// The winning entry per logical key — the snapshot base.
    winners: BTreeMap<EventKey, EwEntry>,
}

impl EwStore {
    /// An empty store for replica `origin` of `n_replicas`.
    pub fn new(origin: u32, n_replicas: usize) -> EwStore {
        let mut applied = BTreeMap::new();
        let mut peer_acks = BTreeMap::new();
        for i in 0..n_replicas as u32 {
            applied.insert(i, 0);
            if i != origin {
                peer_acks.insert(i, BTreeMap::new());
            }
        }
        EwStore {
            origin,
            n_replicas,
            logs: BTreeMap::new(),
            floors: BTreeMap::new(),
            hashes: BTreeMap::new(),
            next_seq: 1,
            applied,
            peer_acks,
            stamps: BTreeMap::new(),
            winners: BTreeMap::new(),
        }
    }

    fn retain(&mut self, entry: EwEntry) {
        let h = self.hashes.entry(entry.origin).or_insert(CHAIN_SEED);
        *h = chain_ew(*h, &entry);
        self.logs
            .entry(entry.origin)
            .or_default()
            .insert(entry.seq, entry);
    }

    /// Log a local mutation under `term`, stamping its key. The caller
    /// has already applied it to local state (local observations are
    /// first-hand and always applied).
    pub fn append(&mut self, term: u64, event: ViewEvent) -> EwEntry {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.applied.insert(self.origin, seq);
        let key = event_key(&event);
        self.stamps.insert(key, (term, seq, self.origin));
        let entry = EwEntry {
            origin: self.origin,
            seq,
            term,
            event,
        };
        self.winners.insert(key, entry.clone());
        self.retain(entry.clone());
        entry
    }

    /// Decide what to do with a received entry and update the log
    /// metadata. On [`Admit::Apply`] the caller applies `entry.event`
    /// to its local state.
    pub fn admit(&mut self, entry: &EwEntry) -> Admit {
        if entry.origin == self.origin || entry.origin as usize >= self.n_replicas {
            return Admit::Duplicate;
        }
        let high = self.applied.get(&entry.origin).copied().unwrap_or(0);
        if entry.seq <= high {
            return Admit::Duplicate;
        }
        if entry.seq != high + 1 {
            return Admit::Gap;
        }
        self.applied.insert(entry.origin, entry.seq);
        self.retain(entry.clone());
        let key = event_key(&entry.event);
        let stamp = (entry.term, entry.seq, entry.origin);
        match self.stamps.get(&key) {
            Some(&existing) if existing > stamp => Admit::Stale,
            _ => {
                self.stamps.insert(key, stamp);
                self.winners.insert(key, entry.clone());
                Admit::Apply
            }
        }
    }

    /// Per-origin applied high-water marks to carry in a heartbeat,
    /// ascending by origin.
    pub fn acks(&self) -> Vec<(u32, u64)> {
        self.applied.iter().map(|(&o, &s)| (o, s)).collect()
    }

    /// Record the acks a peer's heartbeat carried. Pruning is a
    /// separate, liveness-aware step — [`prune_acked`](Self::prune_acked)
    /// — so a dead replica cannot pin the log forever.
    pub fn note_peer_acks(&mut self, peer: u32, acks: &[(u32, u64)]) {
        if peer == self.origin {
            return;
        }
        let slot = self.peer_acks.entry(peer).or_default();
        for &(origin, seq) in acks {
            let e = slot.entry(origin).or_insert(0);
            if seq > *e {
                *e = seq;
            }
        }
    }

    /// Prune every origin log up to the minimum applied mark across
    /// `live` replicas (self included). Dead replicas stop counting:
    /// when one returns below a retention floor it bootstraps from a
    /// snapshot instead of a replayed suffix.
    pub fn prune_acked(&mut self, live: &[usize]) {
        let origins: Vec<u32> = self.logs.keys().copied().collect();
        for o in origins {
            let mut min = self.applied_high(o);
            for &p in live {
                let p = p as u32;
                if p == self.origin {
                    continue;
                }
                let acked = self
                    .peer_acks
                    .get(&p)
                    .and_then(|m| m.get(&o).copied())
                    .unwrap_or(0);
                min = min.min(acked);
            }
            if min == 0 {
                continue;
            }
            if let Some(log) = self.logs.get_mut(&o) {
                log.retain(|&seq, _| seq > min);
            }
            let floor = self.floors.entry(o).or_insert(0);
            *floor = (*floor).max(min);
        }
    }

    /// Our own entries `peer` has not yet acknowledged: the contiguous
    /// suffix starting after its ack, capped at `max` entries. The
    /// [`GossipMode::Suffix`] push path.
    pub fn pending_for(&self, peer: u32, max: usize) -> Vec<EwEntry> {
        let from = self
            .peer_acks
            .get(&peer)
            .and_then(|m| m.get(&self.origin).copied())
            .unwrap_or(0);
        match self.logs.get(&self.origin) {
            Some(log) => log
                .range(from + 1..)
                .take(max)
                .map(|(_, e)| e.clone())
                .collect(),
            None => Vec::new(),
        }
    }

    /// Per-origin summaries (floor, applied head, chain hash) to carry
    /// in a heartbeat, ascending by origin. Two replicas with equal
    /// heads and hashes hold identical logs and exchange nothing.
    pub fn digest(&self) -> Vec<OriginHead> {
        (0..self.n_replicas as u32)
            .map(|o| OriginHead {
                origin: o,
                floor: self.floors.get(&o).copied().unwrap_or(0),
                head: self.applied_high(o),
                hash: self.hashes.get(&o).copied().unwrap_or(CHAIN_SEED),
            })
            .collect()
    }

    /// Compare a peer's digest to ours and compute the fetch request:
    /// `(origin, from, to)` for each range we are missing, or the
    /// `(origin, 0, 0)` snapshot sentinel when we are behind the peer's
    /// retention floor (or our chains diverged at an equal head).
    pub fn missing_ranges(&self, peer_heads: &[OriginHead]) -> Vec<(u32, u64, u64)> {
        let mut out = Vec::new();
        for h in peer_heads {
            if h.origin as usize >= self.n_replicas {
                continue;
            }
            if h.origin == self.origin {
                // A peer remembers more of our own origin log than we
                // do: we were wiped and restarted. Bootstrap from a
                // snapshot so `next_seq` resumes past the retired seqs
                // — otherwise every new local append is rejected by
                // peers as a duplicate and stops propagating. (This
                // must not wait for the floor-triggered path: before
                // any pruning, all floors are still 0.)
                if h.head > self.applied_high(self.origin) {
                    out.push((h.origin, 0, 0));
                }
                continue;
            }
            let mine = self.applied_high(h.origin);
            if h.head > mine {
                if mine < h.floor {
                    out.push((h.origin, 0, 0));
                } else {
                    out.push((h.origin, mine + 1, h.head));
                }
            } else if h.head == mine && h.head > 0 {
                let my_hash = self.hashes.get(&h.origin).copied().unwrap_or(CHAIN_SEED);
                if my_hash != h.hash {
                    out.push((h.origin, 0, 0));
                }
            }
        }
        out
    }

    /// Serve a peer's fetch request: the retained entries in each
    /// requested range, plus whether any `(origin, 0, 0)` sentinel
    /// asked for a full snapshot.
    pub fn serve_ranges(&self, ranges: &[(u32, u64, u64)]) -> (Vec<EwEntry>, bool) {
        let mut entries = Vec::new();
        let mut snapshot = false;
        for &(o, from, to) in ranges {
            if from == 0 && to == 0 {
                snapshot = true;
                continue;
            }
            if let Some(log) = self.logs.get(&o) {
                entries.extend(log.range(from..=to).map(|(_, e)| e.clone()));
            }
        }
        (entries, snapshot)
    }

    /// A checksummed snapshot: our digest heads, the winning entry per
    /// logical key, and a chain hash over those entries in key order.
    pub fn snapshot(&self) -> (Vec<OriginHead>, Vec<EwEntry>, u64) {
        let heads = self.digest();
        let entries: Vec<EwEntry> = self.winners.values().cloned().collect();
        let mut checksum = CHAIN_SEED;
        for e in &entries {
            checksum = chain_ew(checksum, e);
        }
        (heads, entries, checksum)
    }

    /// Install a peer's snapshot: merge each entry last-writer-wins and
    /// adopt the peer's heads (and chain state) for origins it is ahead
    /// on. Returns the entries that won and must be applied to local
    /// state, or `None` if the checksum does not match (frame dropped).
    pub fn install_snapshot(
        &mut self,
        heads: &[OriginHead],
        entries: Vec<EwEntry>,
        checksum: u64,
    ) -> Option<Vec<EwEntry>> {
        let mut c = CHAIN_SEED;
        for e in &entries {
            c = chain_ew(c, e);
        }
        if c != checksum {
            return None;
        }
        let mut to_apply = Vec::new();
        for e in entries {
            if e.origin as usize >= self.n_replicas {
                continue;
            }
            let key = event_key(&e.event);
            let stamp = (e.term, e.seq, e.origin);
            let outranks = match self.stamps.get(&key) {
                Some(&existing) => stamp > existing,
                None => true,
            };
            if outranks {
                self.stamps.insert(key, stamp);
                self.winners.insert(key, e.clone());
                if e.origin != self.origin {
                    to_apply.push(e);
                }
            }
        }
        for h in heads {
            if h.origin as usize >= self.n_replicas {
                continue;
            }
            if h.origin == self.origin {
                // A wiped replica resumes its own log after its prior
                // head instead of colliding with retired seqs.
                if h.head >= self.next_seq {
                    self.next_seq = h.head + 1;
                    self.applied.insert(self.origin, h.head);
                    self.hashes.insert(self.origin, h.hash);
                    let floor = self.floors.entry(self.origin).or_insert(0);
                    *floor = (*floor).max(h.head);
                }
                continue;
            }
            let mine = self.applied_high(h.origin);
            if h.head > mine {
                self.applied.insert(h.origin, h.head);
                self.hashes.insert(h.origin, h.hash);
                let floor = self.floors.entry(h.origin).or_insert(0);
                *floor = (*floor).max(h.head);
                if let Some(log) = self.logs.get_mut(&h.origin) {
                    log.retain(|&seq, _| seq > h.head);
                }
            }
        }
        Some(to_apply)
    }

    /// Total entries retained across all origin logs.
    pub fn log_len(&self) -> usize {
        self.logs.values().map(BTreeMap::len).sum()
    }

    /// Highest contiguous seq applied from `origin`.
    pub fn applied_high(&self, origin: u32) -> u64 {
        self.applied.get(&origin).copied().unwrap_or(0)
    }

    /// The retention floor for `origin`.
    pub fn floor_of(&self, origin: u32) -> u64 {
        self.floors.get(&origin).copied().unwrap_or(0)
    }

    /// `peer`'s highest acknowledged seq for our own origin log (0 when
    /// it has never acked). A peer whose ack sits below our retention
    /// floor can no longer be repaired by suffix replay — the entries
    /// it needs are pruned — and must bootstrap from a snapshot.
    pub fn peer_ack(&self, peer: u32) -> u64 {
        self.peer_acks
            .get(&peer)
            .and_then(|m| m.get(&self.origin).copied())
            .unwrap_or(0)
    }

    /// The winning stamp recorded for `key`, if any.
    pub fn stamp(&self, key: EventKey) -> Option<(u64, u64, u32)> {
        self.stamps.get(&key).copied()
    }

    /// All per-key winning stamps, for convergence assertions in tests
    /// and benches.
    pub fn stamps(&self) -> &BTreeMap<EventKey, (u64, u64, u32)> {
        &self.stamps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize, index: usize) -> ClusterConfig {
        ClusterConfig::new((0..n).map(|i| NodeId(i as u32)).collect(), index)
    }

    fn link_add(from: u64, port: u32) -> ViewEvent {
        ViewEvent::LinkAdd {
            from_dpid: from,
            from_port: port,
            to_dpid: from + 1,
            to_port: 1,
        }
    }

    #[test]
    fn mastership_spreads_over_live_replicas() {
        let m = Membership::new(cfg(3, 0), Instant::ZERO);
        assert_eq!(m.master_index(0), 0);
        assert_eq!(m.master_index(1), 1);
        assert_eq!(m.master_index(2), 2);
        assert_eq!(m.master_index(3), 0);
        assert!(m.assigned_master(0));
        assert!(!m.assigned_master(1));
    }

    #[test]
    fn lease_lapse_bumps_term_and_reassigns() {
        let mut m = Membership::new(cfg(3, 0), Instant::ZERO);
        // Peer 1 keeps heartbeating, peer 2 goes silent.
        m.note_heartbeat(1, 1, Instant::from_millis(250));
        assert!(m.scan(Instant::from_millis(400)));
        assert_eq!(m.term(), 2);
        assert_eq!(m.live(), vec![0, 1]);
        // dpid 2 falls back to the survivors.
        assert_eq!(m.master_index(2), 0);
        // Revival flips it back and bumps the term again.
        m.note_heartbeat(2, 1, Instant::from_millis(500));
        assert!(m.scan(Instant::from_millis(510)));
        assert_eq!(m.term(), 3);
        assert_eq!(m.live(), vec![0, 1, 2]);
    }

    #[test]
    fn isolated_minority_claims_higher_term() {
        // Replica 2 loses both peers: +2. Replicas 0/1 lose one: +1.
        let mut minority = Membership::new(cfg(3, 2), Instant::ZERO);
        let mut majority = Membership::new(cfg(3, 0), Instant::ZERO);
        majority.note_heartbeat(1, 1, Instant::from_millis(400));
        minority.scan(Instant::from_millis(400));
        majority.scan(Instant::from_millis(400));
        assert!(minority.claim() > majority.claim());
        assert_eq!(minority.term(), 3);
        assert_eq!(majority.term(), 2);
    }

    #[test]
    fn store_gossip_roundtrip_with_dedup() {
        let mut a = EwStore::new(0, 2);
        let mut b = EwStore::new(1, 2);
        a.append(1, link_add(0, 1));
        a.append(1, link_add(1, 1));
        let batch = a.pending_for(1, 16);
        assert_eq!(batch.len(), 2);
        assert_eq!(b.admit(&batch[0]), Admit::Apply);
        assert_eq!(b.admit(&batch[1]), Admit::Apply);
        // Redelivery is a no-op.
        assert_eq!(b.admit(&batch[0]), Admit::Duplicate);
        // b's acks let a prune.
        a.note_peer_acks(1, &b.acks());
        a.prune_acked(&[0, 1]);
        assert_eq!(a.log_len(), 0);
        assert!(a.pending_for(1, 16).is_empty());
    }

    #[test]
    fn store_rejects_gaps_until_suffix_resent() {
        let mut a = EwStore::new(0, 2);
        let mut b = EwStore::new(1, 2);
        a.append(1, link_add(0, 1));
        a.append(1, link_add(1, 1));
        let batch = a.pending_for(1, 16);
        // Entry 2 arrives first (reordered): held back.
        assert_eq!(b.admit(&batch[1]), Admit::Gap);
        assert_eq!(b.applied_high(0), 0);
        assert_eq!(b.admit(&batch[0]), Admit::Apply);
        assert_eq!(b.admit(&batch[1]), Admit::Apply);
        assert_eq!(b.applied_high(0), 2);
    }

    #[test]
    fn last_writer_wins_on_term_then_seq() {
        let mut c = EwStore::new(2, 3);
        // Origin 0 wrote the key at term 2.
        let e0 = EwEntry {
            origin: 0,
            seq: 1,
            term: 2,
            event: link_add(5, 1),
        };
        assert_eq!(c.admit(&e0), Admit::Apply);
        // Origin 1's older-term write to the same key loses.
        let e1 = EwEntry {
            origin: 1,
            seq: 1,
            term: 1,
            event: ViewEvent::LinkDel {
                from_dpid: 5,
                from_port: 1,
            },
        };
        assert_eq!(c.admit(&e1), Admit::Stale);
        // A higher-term write wins.
        let e2 = EwEntry {
            origin: 1,
            seq: 2,
            term: 3,
            event: ViewEvent::LinkDel {
                from_dpid: 5,
                from_port: 1,
            },
        };
        assert_eq!(c.admit(&e2), Admit::Apply);
        assert_eq!(c.stamp(EventKey::Link(5, 1)), Some((3, 2, 1)));
    }

    #[test]
    fn local_appends_stamp_keys() {
        let mut a = EwStore::new(0, 2);
        a.append(4, link_add(7, 2));
        assert_eq!(a.stamp(EventKey::Link(7, 2)), Some((4, 1, 0)));
        // A remote lower-term write to the same key is stale.
        let e = EwEntry {
            origin: 1,
            seq: 1,
            term: 3,
            event: ViewEvent::LinkDel {
                from_dpid: 7,
                from_port: 2,
            },
        };
        assert_eq!(a.admit(&e), Admit::Stale);
    }

    #[test]
    fn partition_blocks_pruning_then_drains() {
        let mut a = EwStore::new(0, 3);
        a.append(1, link_add(0, 1));
        a.append(1, link_add(1, 1));
        // Peer 1 acks everything; peer 2 is partitioned (acks nothing)
        // but still counts as live, so nothing is pruned.
        a.note_peer_acks(1, &[(0, 2)]);
        a.prune_acked(&[0, 1, 2]);
        assert_eq!(a.log_len(), 2);
        assert_eq!(a.pending_for(2, 16).len(), 2);
        // Heal: peer 2 catches up.
        a.note_peer_acks(2, &[(0, 2)]);
        a.prune_acked(&[0, 1, 2]);
        assert_eq!(a.log_len(), 0);
    }

    #[test]
    fn dead_replica_no_longer_pins_log() {
        // Regression: retention used to take the min over *all* peers'
        // acks, so one permanently dead replica pinned the log forever.
        let mut a = EwStore::new(0, 3);
        a.append(1, link_add(0, 1));
        a.append(1, link_add(1, 1));
        a.note_peer_acks(1, &[(0, 2)]);
        // Replica 2 is expelled from the live set: pruning proceeds.
        a.prune_acked(&[0, 1]);
        assert_eq!(a.log_len(), 0);
        assert_eq!(a.floor_of(0), 2);
        // When 2 returns below the floor, the digest steers it to a
        // snapshot instead of an unavailable suffix.
        let late = EwStore::new(2, 3);
        assert_eq!(late.missing_ranges(&a.digest()), vec![(0, 0, 0)]);
    }

    #[test]
    fn digest_fetch_repairs_exact_gap() {
        let mut a = EwStore::new(0, 2);
        let mut b = EwStore::new(1, 2);
        for i in 0..10 {
            a.append(1, link_add(i, 1));
        }
        for e in a.pending_for(1, 4) {
            assert_eq!(b.admit(&e), Admit::Apply);
        }
        // b compares digests and asks for exactly seqs 5..=10.
        let want = b.missing_ranges(&a.digest());
        assert_eq!(want, vec![(0, 5, 10)]);
        let (entries, snapshot) = a.serve_ranges(&want);
        assert!(!snapshot);
        assert_eq!(entries.len(), 6);
        for e in entries {
            assert_eq!(b.admit(&e), Admit::Apply);
        }
        // Converged: equal heads and hashes, nothing more to fetch.
        assert_eq!(b.digest()[0].head, 10);
        assert_eq!(b.digest()[0].hash, a.digest()[0].hash);
        assert!(b.missing_ranges(&a.digest()).is_empty());
        assert!(a.missing_ranges(&b.digest()).is_empty());
    }

    #[test]
    fn third_party_serves_anothers_origin() {
        // b holds origin-0 entries and can repair c even with a gone.
        let mut a = EwStore::new(0, 3);
        let mut b = EwStore::new(1, 3);
        let mut c = EwStore::new(2, 3);
        for i in 0..4 {
            a.append(1, link_add(i, 1));
        }
        for e in a.pending_for(1, 16) {
            b.admit(&e);
        }
        let want = c.missing_ranges(&b.digest());
        assert_eq!(want, vec![(0, 1, 4)]);
        let (entries, _) = b.serve_ranges(&want);
        assert_eq!(entries.len(), 4);
        for e in entries {
            assert_eq!(c.admit(&e), Admit::Apply);
        }
        assert_eq!(c.applied_high(0), 4);
    }

    #[test]
    fn snapshot_bootstraps_fresh_replica() {
        let mut a = EwStore::new(0, 3);
        let mut b = EwStore::new(1, 3);
        for i in 0..6 {
            a.append(1, link_add(i, 1));
        }
        for e in a.pending_for(1, 16) {
            b.admit(&e);
        }
        // Everyone live acked; a prunes everything.
        a.note_peer_acks(1, &[(0, 6)]);
        a.note_peer_acks(2, &[(0, 6)]);
        a.prune_acked(&[0, 1, 2]);
        assert_eq!(a.log_len(), 0);
        // A fresh replica 2 is behind the floor: snapshot requested.
        let mut c = EwStore::new(2, 3);
        assert!(c.missing_ranges(&a.digest()).contains(&(0, 0, 0)));
        let (heads, entries, checksum) = a.snapshot();
        let applied = c
            .install_snapshot(&heads, entries, checksum)
            .expect("checksum verifies");
        assert_eq!(applied.len(), 6);
        assert_eq!(c.applied_high(0), 6);
        assert_eq!(c.stamps(), a.stamps());
        // Converged: c asks for nothing further.
        assert!(c.missing_ranges(&a.digest()).is_empty());
        // A corrupt checksum is rejected outright.
        let (heads, entries, checksum) = a.snapshot();
        let mut d = EwStore::new(2, 3);
        assert!(d.install_snapshot(&heads, entries, checksum ^ 1).is_none());
    }

    #[test]
    fn wiped_replica_resumes_own_origin_before_any_pruning() {
        // Regression: a wiped replica rejoining while every floor was
        // still 0 never took the snapshot path, restarted its own log
        // at seq 1, and every new append died at peers as a duplicate.
        let mut a = EwStore::new(0, 2);
        let mut b = EwStore::new(1, 2);
        for i in 0..4 {
            a.append(1, link_add(i, 1));
        }
        for e in a.pending_for(1, 16) {
            assert_eq!(b.admit(&e), Admit::Apply);
        }
        // Replica 0 loses its state and restarts. No pruning has
        // happened anywhere (all floors 0), yet b's digest must steer
        // it to a snapshot for its own origin.
        let mut a2 = EwStore::new(0, 2);
        let want = a2.missing_ranges(&b.digest());
        assert!(want.contains(&(0, 0, 0)), "got {want:?}");
        let (heads, entries, checksum) = b.snapshot();
        a2.install_snapshot(&heads, entries, checksum)
            .expect("checksum verifies");
        // Its own log resumes past the retired seqs, so new local
        // observations keep propagating cluster-wide.
        let e = a2.append(2, link_add(9, 1));
        assert_eq!(e.seq, 5);
        assert_eq!(b.admit(&e), Admit::Apply);
    }

    #[test]
    fn chain_divergence_flags_resync() {
        // Two stores with equal heads but different histories for an
        // origin disagree on the chain hash, which requests a snapshot.
        let mut b = EwStore::new(1, 3);
        let mut c = EwStore::new(2, 3);
        b.admit(&EwEntry {
            origin: 0,
            seq: 1,
            term: 1,
            event: link_add(1, 1),
        });
        c.admit(&EwEntry {
            origin: 0,
            seq: 1,
            term: 1,
            event: link_add(2, 1),
        });
        assert_eq!(c.missing_ranges(&b.digest()), vec![(0, 0, 0)]);
    }
}
