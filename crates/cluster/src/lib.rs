//! # zen-cluster — distributed control-plane substrate
//!
//! The mechanisms a controller replica needs to be part of an
//! ONOS-style cluster, independent of the controller itself:
//!
//! * [`Membership`] — lease-based liveness over east-west heartbeats
//!   plus a deterministic per-switch mastership function. There is no
//!   separate election protocol: every replica computes the same
//!   `master(dpid) = live_replicas[dpid % n_live]` assignment from its
//!   own live set, and divergent live sets (partitions) are resolved at
//!   the switch by comparing `(term, replica)` claims — the mastership
//!   **term** grows by the number of membership changes a replica has
//!   observed, so the replica that lost *more* peers (the minority side
//!   of a partition) always presents the strictly higher term.
//! * [`EwStore`] — a per-replica monotonic event log with anti-entropy
//!   sync. Each replica gossips only its own origin's entries; peers
//!   acknowledge per-origin high-water marks in every heartbeat, and
//!   the origin resends the unacknowledged contiguous suffix. Writes to
//!   the same logical key resolve last-writer-wins on
//!   `(term, seq, origin)`, like ONOS's eventually-consistent maps.
//!
//! Everything is deterministic: no wall-clock time, no randomness, all
//! maps ordered.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use zen_proto::{EwEntry, ViewEvent};
use zen_sim::{Duration, Instant, NodeId};

/// Static description of a cluster from one replica's point of view.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Node ids of every replica, in replica-index order. All replicas
    /// must agree on this vector.
    pub replicas: Vec<NodeId>,
    /// This replica's index into `replicas`.
    pub index: usize,
    /// Silence threshold: a peer unheard from for this long is presumed
    /// dead and its switches are taken over.
    pub lease_timeout: Duration,
}

impl ClusterConfig {
    /// A config with the default 300 ms mastership lease.
    pub fn new(replicas: Vec<NodeId>, index: usize) -> ClusterConfig {
        ClusterConfig {
            replicas,
            index,
            lease_timeout: Duration::from_millis(300),
        }
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the cluster is a single replica (degenerate).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// The replica index of `node`, if it is a replica.
    pub fn index_of(&self, node: NodeId) -> Option<usize> {
        self.replicas.iter().position(|&n| n == node)
    }
}

/// Lease-based membership and the deterministic mastership function.
#[derive(Debug)]
pub struct Membership {
    cfg: ClusterConfig,
    /// Last heartbeat per replica index; our own slot tracks `now`.
    last_heard: Vec<Instant>,
    alive: Vec<bool>,
    term: u64,
}

impl Membership {
    /// A membership view that starts with every replica presumed alive
    /// (bring-up grace: nobody has heartbeated yet at t=0).
    pub fn new(cfg: ClusterConfig, now: Instant) -> Membership {
        let n = cfg.replicas.len();
        Membership {
            cfg,
            last_heard: vec![now; n],
            alive: vec![true; n],
            term: 1,
        }
    }

    /// The cluster config.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// This replica's index.
    pub fn index(&self) -> usize {
        self.cfg.index
    }

    /// The current mastership term.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Record a heartbeat from `replica` carrying its `term`. Terms
    /// merge by max, so a healed partition converges on the highest
    /// term either side reached.
    pub fn note_heartbeat(&mut self, replica: u32, term: u64, now: Instant) {
        if let Some(slot) = self.last_heard.get_mut(replica as usize) {
            *slot = now;
        }
        self.term = self.term.max(term);
    }

    /// Re-evaluate peer liveness against the lease. Each peer that
    /// flips (alive→dead or dead→alive) bumps the term by one, so the
    /// side of a partition that lost more peers claims with a strictly
    /// higher term. Returns `true` if any peer flipped.
    pub fn scan(&mut self, now: Instant) -> bool {
        let mut changed = false;
        for i in 0..self.cfg.replicas.len() {
            if i == self.cfg.index {
                self.last_heard[i] = now;
                continue;
            }
            let live = now.duration_since(self.last_heard[i]) < self.cfg.lease_timeout;
            if live != self.alive[i] {
                self.alive[i] = live;
                self.term += 1;
                changed = true;
            }
        }
        changed
    }

    /// Whether replica `i` is currently presumed alive.
    pub fn is_alive(&self, i: usize) -> bool {
        self.alive.get(i).copied().unwrap_or(false)
    }

    /// Indices of replicas currently presumed alive (always includes
    /// self), ascending.
    pub fn live(&self) -> Vec<usize> {
        (0..self.cfg.replicas.len())
            .filter(|&i| i == self.cfg.index || self.alive[i])
            .collect()
    }

    /// The replica index every replica with this live set would elect
    /// as master of `dpid`.
    pub fn master_index(&self, dpid: u64) -> usize {
        let live = self.live();
        live[(dpid % live.len() as u64) as usize]
    }

    /// Whether this replica's own assignment says it masters `dpid`.
    /// (A stronger claim observed at the switch may still override —
    /// that bookkeeping lives with the connection owner.)
    pub fn assigned_master(&self, dpid: u64) -> bool {
        self.master_index(dpid) == self.cfg.index
    }

    /// This replica's mastership claim, ordered lexicographically:
    /// the higher `(term, replica)` wins a contested switch.
    pub fn claim(&self) -> (u64, u32) {
        (self.term, self.cfg.index as u32)
    }
}

/// The logical key a [`ViewEvent`] writes, for last-writer-wins
/// resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKey {
    /// A directed link, keyed by its source endpoint.
    Link(u64, u32),
    /// A host, keyed by MAC (as u64).
    Host(u64),
    /// One switch's cookie shadow.
    Shadow(u64),
    /// One (switch, app-cookie) program stamp.
    Stamp(u64, u64),
}

/// The key `event` writes.
pub fn event_key(event: &ViewEvent) -> EventKey {
    match event {
        ViewEvent::LinkAdd {
            from_dpid,
            from_port,
            ..
        }
        | ViewEvent::LinkDel {
            from_dpid,
            from_port,
        } => EventKey::Link(*from_dpid, *from_port),
        ViewEvent::HostLearned { mac, .. } => {
            let b = mac.as_bytes();
            let mut v = 0u64;
            for &x in b {
                v = (v << 8) | u64::from(x);
            }
            EventKey::Host(v)
        }
        ViewEvent::ShadowSet { dpid, .. } => EventKey::Shadow(*dpid),
        ViewEvent::ProgramStamp { dpid, cookie, .. } => EventKey::Stamp(*dpid, *cookie),
    }
}

/// What [`EwStore::admit`] decided about a received entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// New and the latest writer for its key: apply it.
    Apply,
    /// New but an already-applied write to the same key outranks it:
    /// record it, skip application.
    Stale,
    /// Already seen (duplicate delivery): ignore.
    Duplicate,
    /// Out of order (a gap before it): ignore; the origin resends the
    /// contiguous suffix on the next anti-entropy round.
    Gap,
}

/// Per-replica monotonic event log with anti-entropy metadata. See the
/// crate docs for the protocol.
#[derive(Debug)]
pub struct EwStore {
    origin: u32,
    n_replicas: usize,
    /// Our own entries not yet acknowledged by every peer, by seq.
    log: BTreeMap<u64, EwEntry>,
    next_seq: u64,
    /// Highest contiguous seq applied locally, per origin. Our own slot
    /// is `next_seq - 1`.
    applied: BTreeMap<u32, u64>,
    /// Highest of *our* seqs each peer has acknowledged.
    peer_acked: BTreeMap<u32, u64>,
    /// Winning `(term, seq, origin)` stamp per logical key.
    stamps: BTreeMap<EventKey, (u64, u64, u32)>,
}

impl EwStore {
    /// An empty store for replica `origin` of `n_replicas`.
    pub fn new(origin: u32, n_replicas: usize) -> EwStore {
        let mut applied = BTreeMap::new();
        let mut peer_acked = BTreeMap::new();
        for i in 0..n_replicas as u32 {
            applied.insert(i, 0);
            if i != origin {
                peer_acked.insert(i, 0);
            }
        }
        EwStore {
            origin,
            n_replicas,
            log: BTreeMap::new(),
            next_seq: 1,
            applied,
            peer_acked,
            stamps: BTreeMap::new(),
        }
    }

    /// Log a local mutation under `term`, stamping its key. The caller
    /// has already applied it to local state (local observations are
    /// first-hand and always applied).
    pub fn append(&mut self, term: u64, event: ViewEvent) -> &EwEntry {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.applied.insert(self.origin, seq);
        self.stamps
            .insert(event_key(&event), (term, seq, self.origin));
        let entry = EwEntry {
            origin: self.origin,
            seq,
            term,
            event,
        };
        self.log.insert(seq, entry);
        &self.log[&seq]
    }

    /// Decide what to do with a received entry and update the log
    /// metadata. On [`Admit::Apply`] the caller applies `entry.event`
    /// to its local state.
    pub fn admit(&mut self, entry: &EwEntry) -> Admit {
        if entry.origin == self.origin || entry.origin as usize >= self.n_replicas {
            return Admit::Duplicate;
        }
        let high = self.applied.get(&entry.origin).copied().unwrap_or(0);
        if entry.seq <= high {
            return Admit::Duplicate;
        }
        if entry.seq != high + 1 {
            return Admit::Gap;
        }
        self.applied.insert(entry.origin, entry.seq);
        let key = event_key(&entry.event);
        let stamp = (entry.term, entry.seq, entry.origin);
        match self.stamps.get(&key) {
            Some(&existing) if existing > stamp => Admit::Stale,
            _ => {
                self.stamps.insert(key, stamp);
                Admit::Apply
            }
        }
    }

    /// Per-origin applied high-water marks to carry in a heartbeat,
    /// ascending by origin.
    pub fn acks(&self) -> Vec<(u32, u64)> {
        self.applied.iter().map(|(&o, &s)| (o, s)).collect()
    }

    /// Record the acks a peer's heartbeat carried and prune log entries
    /// every peer has acknowledged.
    pub fn note_peer_acks(&mut self, peer: u32, acks: &[(u32, u64)]) {
        if peer == self.origin {
            return;
        }
        for &(origin, seq) in acks {
            if origin == self.origin {
                if let Some(slot) = self.peer_acked.get_mut(&peer) {
                    *slot = (*slot).max(seq);
                }
            }
        }
        let min_acked = self.peer_acked.values().copied().min().unwrap_or(u64::MAX);
        self.log.retain(|&seq, _| seq > min_acked);
    }

    /// Our entries `peer` has not yet acknowledged: the contiguous
    /// suffix starting after its ack, capped at `max` entries.
    pub fn pending_for(&self, peer: u32, max: usize) -> Vec<EwEntry> {
        let from = self.peer_acked.get(&peer).copied().unwrap_or(0);
        self.log
            .range(from + 1..)
            .take(max)
            .map(|(_, e)| e.clone())
            .collect()
    }

    /// Entries still retained (unacknowledged by at least one peer).
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Highest contiguous seq applied from `origin`.
    pub fn applied_high(&self, origin: u32) -> u64 {
        self.applied.get(&origin).copied().unwrap_or(0)
    }

    /// The winning stamp recorded for `key`, if any.
    pub fn stamp(&self, key: EventKey) -> Option<(u64, u64, u32)> {
        self.stamps.get(&key).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize, index: usize) -> ClusterConfig {
        ClusterConfig::new((0..n).map(|i| NodeId(i as u32)).collect(), index)
    }

    fn link_add(from: u64, port: u32) -> ViewEvent {
        ViewEvent::LinkAdd {
            from_dpid: from,
            from_port: port,
            to_dpid: from + 1,
            to_port: 1,
        }
    }

    #[test]
    fn mastership_spreads_over_live_replicas() {
        let m = Membership::new(cfg(3, 0), Instant::ZERO);
        assert_eq!(m.master_index(0), 0);
        assert_eq!(m.master_index(1), 1);
        assert_eq!(m.master_index(2), 2);
        assert_eq!(m.master_index(3), 0);
        assert!(m.assigned_master(0));
        assert!(!m.assigned_master(1));
    }

    #[test]
    fn lease_lapse_bumps_term_and_reassigns() {
        let mut m = Membership::new(cfg(3, 0), Instant::ZERO);
        // Peer 1 keeps heartbeating, peer 2 goes silent.
        m.note_heartbeat(1, 1, Instant::from_millis(250));
        assert!(m.scan(Instant::from_millis(400)));
        assert_eq!(m.term(), 2);
        assert_eq!(m.live(), vec![0, 1]);
        // dpid 2 falls back to the survivors.
        assert_eq!(m.master_index(2), 0);
        // Revival flips it back and bumps the term again.
        m.note_heartbeat(2, 1, Instant::from_millis(500));
        assert!(m.scan(Instant::from_millis(510)));
        assert_eq!(m.term(), 3);
        assert_eq!(m.live(), vec![0, 1, 2]);
    }

    #[test]
    fn isolated_minority_claims_higher_term() {
        // Replica 2 loses both peers: +2. Replicas 0/1 lose one: +1.
        let mut minority = Membership::new(cfg(3, 2), Instant::ZERO);
        let mut majority = Membership::new(cfg(3, 0), Instant::ZERO);
        majority.note_heartbeat(1, 1, Instant::from_millis(400));
        minority.scan(Instant::from_millis(400));
        majority.scan(Instant::from_millis(400));
        assert!(minority.claim() > majority.claim());
        assert_eq!(minority.term(), 3);
        assert_eq!(majority.term(), 2);
    }

    #[test]
    fn store_gossip_roundtrip_with_dedup() {
        let mut a = EwStore::new(0, 2);
        let mut b = EwStore::new(1, 2);
        a.append(1, link_add(0, 1));
        a.append(1, link_add(1, 1));
        let batch = a.pending_for(1, 16);
        assert_eq!(batch.len(), 2);
        assert_eq!(b.admit(&batch[0]), Admit::Apply);
        assert_eq!(b.admit(&batch[1]), Admit::Apply);
        // Redelivery is a no-op.
        assert_eq!(b.admit(&batch[0]), Admit::Duplicate);
        // b's acks let a prune.
        a.note_peer_acks(1, &b.acks());
        assert_eq!(a.log_len(), 0);
        assert!(a.pending_for(1, 16).is_empty());
    }

    #[test]
    fn store_rejects_gaps_until_suffix_resent() {
        let mut a = EwStore::new(0, 2);
        let mut b = EwStore::new(1, 2);
        a.append(1, link_add(0, 1));
        a.append(1, link_add(1, 1));
        let batch = a.pending_for(1, 16);
        // Entry 2 arrives first (reordered): held back.
        assert_eq!(b.admit(&batch[1]), Admit::Gap);
        assert_eq!(b.applied_high(0), 0);
        assert_eq!(b.admit(&batch[0]), Admit::Apply);
        assert_eq!(b.admit(&batch[1]), Admit::Apply);
        assert_eq!(b.applied_high(0), 2);
    }

    #[test]
    fn last_writer_wins_on_term_then_seq() {
        let mut c = EwStore::new(2, 3);
        // Origin 0 wrote the key at term 2.
        let e0 = EwEntry {
            origin: 0,
            seq: 1,
            term: 2,
            event: link_add(5, 1),
        };
        assert_eq!(c.admit(&e0), Admit::Apply);
        // Origin 1's older-term write to the same key loses.
        let e1 = EwEntry {
            origin: 1,
            seq: 1,
            term: 1,
            event: ViewEvent::LinkDel {
                from_dpid: 5,
                from_port: 1,
            },
        };
        assert_eq!(c.admit(&e1), Admit::Stale);
        // A higher-term write wins.
        let e2 = EwEntry {
            origin: 1,
            seq: 2,
            term: 3,
            event: ViewEvent::LinkDel {
                from_dpid: 5,
                from_port: 1,
            },
        };
        assert_eq!(c.admit(&e2), Admit::Apply);
        assert_eq!(c.stamp(EventKey::Link(5, 1)), Some((3, 2, 1)));
    }

    #[test]
    fn local_appends_stamp_keys() {
        let mut a = EwStore::new(0, 2);
        a.append(4, link_add(7, 2));
        assert_eq!(a.stamp(EventKey::Link(7, 2)), Some((4, 1, 0)));
        // A remote lower-term write to the same key is stale.
        let e = EwEntry {
            origin: 1,
            seq: 1,
            term: 3,
            event: ViewEvent::LinkDel {
                from_dpid: 7,
                from_port: 2,
            },
        };
        assert_eq!(a.admit(&e), Admit::Stale);
    }

    #[test]
    fn partition_blocks_pruning_then_drains() {
        let mut a = EwStore::new(0, 3);
        a.append(1, link_add(0, 1));
        a.append(1, link_add(1, 1));
        // Peer 1 acks everything; peer 2 is partitioned (acks nothing).
        a.note_peer_acks(1, &[(0, 2)]);
        assert_eq!(a.log_len(), 2);
        assert_eq!(a.pending_for(2, 16).len(), 2);
        // Heal: peer 2 catches up.
        a.note_peer_acks(2, &[(0, 2)]);
        assert_eq!(a.log_len(), 0);
    }
}
