//! Trace identity: stable IDs that follow a probe frame across the stack.
//!
//! A trace ID must survive everything the network legitimately does to a
//! frame in flight — MAC rewrites, TTL decrements, and the truncation
//! applied when a switch punts a packet to the controller. Hashing the raw
//! frame bytes fails all three, so the ID is derived from the *probe
//! identity* carried in the UDP payload of workload probes: the magic tag,
//! the IPv4 source and destination, the probe sequence number, and the
//! emission timestamp. Those five values are written once by the emitting
//! host and never touched again, and they sit well inside the punt
//! truncation window.

use zen_wire::{ethernet, ipv4, udp};

/// Magic tag in the first four bytes of every workload probe payload
/// (ASCII `ZEN!`). Hosts write it when emitting probes; the flight
/// recorder looks for it when deriving trace IDs from frames.
pub const PROBE_MAGIC: u32 = 0x5a45_4e21;

/// Identifies one traced packet across every layer of the stack.
///
/// IDs are FNV-1a hashes of the probe identity, so independent components
/// (host, datapath, controller) derive the same ID from the same packet
/// without coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl core::fmt::Display for TraceId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Derive the trace ID for a probe identified by its addresses, sequence
/// number, and emission time. This is what an emitting host calls — it
/// already holds the fields and need not re-parse its own frame.
pub fn probe_trace_id(src: u32, dst: u32, seq: u64, sent_nanos: u64) -> TraceId {
    let mut h = fnv1a(FNV_OFFSET, &PROBE_MAGIC.to_be_bytes());
    h = fnv1a(h, &src.to_be_bytes());
    h = fnv1a(h, &dst.to_be_bytes());
    h = fnv1a(h, &seq.to_be_bytes());
    h = fnv1a(h, &sent_nanos.to_be_bytes());
    TraceId(h)
}

/// The per-switch control-plane trace: mastership changes and other
/// switch-scoped control events share one timeline per dpid, so a reader
/// can follow a switch across controller failovers. The fixed prefix
/// keeps these IDs out of the way of probe-derived hashes (a probe would
/// have to hash into this exact 48-bit-keyed band to collide).
pub fn control_trace(dpid: u64) -> TraceId {
    TraceId(0xc0de_0000_0000_0000 | (dpid & 0x0000_ffff_ffff_ffff))
}

/// Derive the trace ID of a raw Ethernet frame, if it carries a workload
/// probe (Ethernet → IPv4 → UDP with a `PROBE_MAGIC`-tagged payload).
///
/// Returns `None` for everything else — ARP, LLDP, ICMP, and UDP traffic
/// that is not a probe. Works on punt-truncated frames as long as the
/// probe header (20 payload bytes) survives.
pub fn trace_id_for_frame(frame: &[u8]) -> Option<TraceId> {
    let eth = ethernet::Frame::new_checked(frame).ok()?;
    if eth.ethertype() != ethernet::EtherType::Ipv4 {
        return None;
    }
    let ip = ipv4::Packet::new_checked(eth.payload()).ok()?;
    if ip.protocol() != ipv4::Protocol::Udp {
        return None;
    }
    let dgram = udp::Datagram::new_checked(ip.payload()).ok()?;
    let payload = dgram.payload();
    if payload.len() < 20 {
        return None;
    }
    let magic = u32::from_be_bytes([payload[0], payload[1], payload[2], payload[3]]);
    if magic != PROBE_MAGIC {
        return None;
    }
    let seq = u64::from_be_bytes(payload[4..12].try_into().ok()?);
    let sent = u64::from_be_bytes(payload[12..20].try_into().ok()?);
    Some(probe_trace_id(
        ip.src_addr().to_u32(),
        ip.dst_addr().to_u32(),
        seq,
        sent,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use zen_wire::builder::PacketBuilder;
    use zen_wire::{EthernetAddress, Ipv4Address};

    fn probe_frame(seq: u64, sent: u64) -> Vec<u8> {
        let mut payload = vec![0u8; 28];
        payload[0..4].copy_from_slice(&PROBE_MAGIC.to_be_bytes());
        payload[4..12].copy_from_slice(&seq.to_be_bytes());
        payload[12..20].copy_from_slice(&sent.to_be_bytes());
        PacketBuilder::udp(
            EthernetAddress::from_id(1),
            Ipv4Address::new(10, 0, 0, 1),
            4000,
            EthernetAddress::from_id(2),
            Ipv4Address::new(10, 0, 0, 2),
            4001,
            &payload,
        )
    }

    #[test]
    fn frame_and_field_derivations_agree() {
        let frame = probe_frame(7, 1_000_000);
        let from_frame = trace_id_for_frame(&frame).expect("probe should parse");
        let from_fields = probe_trace_id(0x0a00_0001, 0x0a00_0002, 7, 1_000_000);
        assert_eq!(from_frame, from_fields);
    }

    #[test]
    fn survives_mac_rewrite_and_ttl_decrement() {
        let mut frame = probe_frame(9, 42);
        let before = trace_id_for_frame(&frame).unwrap();
        // Rewrite both MACs and decrement the TTL, as a routed hop would.
        frame[0..6].copy_from_slice(EthernetAddress::from_id(77).as_bytes());
        frame[6..12].copy_from_slice(EthernetAddress::from_id(78).as_bytes());
        frame[14 + 8] -= 1;
        assert_eq!(trace_id_for_frame(&frame), Some(before));
    }

    #[test]
    fn distinct_probes_get_distinct_ids() {
        let a = trace_id_for_frame(&probe_frame(1, 100)).unwrap();
        let b = trace_id_for_frame(&probe_frame(2, 100)).unwrap();
        let c = trace_id_for_frame(&probe_frame(1, 101)).unwrap();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn non_probe_traffic_has_no_trace() {
        // Same shape but wrong magic.
        let mut frame = probe_frame(1, 1);
        frame[14 + 20 + 8] ^= 0xff;
        assert_eq!(trace_id_for_frame(&frame), None);
        // Too short to be a probe.
        let short = PacketBuilder::udp(
            EthernetAddress::from_id(1),
            Ipv4Address::new(10, 0, 0, 1),
            4000,
            EthernetAddress::from_id(2),
            Ipv4Address::new(10, 0, 0, 2),
            4001,
            &[0u8; 4],
        );
        assert_eq!(trace_id_for_frame(&short), None);
        // Not even Ethernet.
        assert_eq!(trace_id_for_frame(&[0u8; 6]), None);
    }
}
