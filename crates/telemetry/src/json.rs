//! Minimal deterministic JSON-lines emission.
//!
//! The exporters in this workspace write JSON by hand rather than through a
//! serialization framework: the output must be byte-identical across runs
//! and across toolchain updates, so every formatting decision is pinned
//! here. Fields are emitted in the order the caller writes them; callers
//! are responsible for choosing a deterministic order (sorted names,
//! insertion order of a `BTreeMap`, …).

use core::fmt::Write as _;

/// Append `s` to `out` as a JSON string literal (with surrounding quotes).
///
/// Escapes the two mandatory characters (`"` and `\`) and all control
/// characters below 0x20 using `\u00XX`; everything else is passed through
/// as UTF-8.
pub fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builder for a single JSON object emitted as one line.
///
/// ```
/// use zen_telemetry::json::Line;
/// let mut out = String::new();
/// Line::new("counter")
///     .str("name", "sim.tx_frames")
///     .u64("value", 42)
///     .finish(&mut out);
/// assert_eq!(out, "{\"type\":\"counter\",\"name\":\"sim.tx_frames\",\"value\":42}\n");
/// ```
#[derive(Debug)]
pub struct Line {
    buf: String,
}

impl Line {
    /// Start a line whose first field is `"type":"<ty>"`.
    pub fn new(ty: &str) -> Line {
        let mut buf = String::with_capacity(96);
        buf.push_str("{\"type\":");
        push_str_literal(&mut buf, ty);
        Line { buf }
    }

    fn key(&mut self, k: &str) {
        self.buf.push(',');
        push_str_literal(&mut self.buf, k);
        self.buf.push(':');
    }

    /// Append a string field.
    pub fn str(mut self, k: &str, v: &str) -> Line {
        self.key(k);
        push_str_literal(&mut self.buf, v);
        self
    }

    /// Append an unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Line {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Append a float field.
    ///
    /// Rust's `Display` for `f64` is deterministic (shortest round-trip
    /// representation), which is what makes float export diffable. Non-finite
    /// values are not valid JSON numbers and are emitted as `null`.
    pub fn f64(mut self, k: &str, v: f64) -> Line {
        self.key(k);
        if v.is_finite() {
            let _ = write!(self.buf, "{v}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Append a boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> Line {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Close the object and append it (plus a newline) to `out`.
    pub fn finish(mut self, out: &mut String) {
        self.buf.push('}');
        self.buf.push('\n');
        out.push_str(&self.buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_controls_and_quotes() {
        let mut out = String::new();
        push_str_literal(&mut out, "a\"b\\c\nd\u{1}e");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001e\"");
    }

    #[test]
    fn line_field_order_is_caller_order() {
        let mut out = String::new();
        Line::new("t").u64("b", 2).u64("a", 1).finish(&mut out);
        assert_eq!(out, "{\"type\":\"t\",\"b\":2,\"a\":1}\n");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut out = String::new();
        Line::new("t")
            .f64("x", f64::NAN)
            .f64("y", 0.5)
            .finish(&mut out);
        assert_eq!(out, "{\"type\":\"t\",\"x\":null,\"y\":0.5}\n");
    }
}
