//! The flight recorder: a bounded, shareable ring of causal trace events.
//!
//! One [`Recorder`] instance is shared (via cheap `Arc` clones) by every
//! component that can observe a traced packet: the simulator world, each
//! switch datapath, the controller, and the hosts. All clones see the same
//! ring, the same enable flag, and the same xid bindings, so enabling the
//! recorder after the fabric is built still takes effect everywhere. The
//! handle is `Send`, so datapath-backed nodes can move onto sharded
//! event-loop worker threads; each shard normally owns its own recorder,
//! with the mutex only there for safety, never contention.
//!
//! The recorder is built for two constraints:
//!
//! * **Near-zero cost when disabled.** Every tap point is guarded by
//!   [`Recorder::is_enabled`], a single pointer dereference and one
//!   relaxed atomic load. No trace-ID hashing, no allocation, no lock
//!   acquisition happens on the disabled path.
//! * **Bounded memory.** The event ring holds a fixed number of records
//!   and overwrites the oldest when full (counting what it dropped); the
//!   xid→trace map is capped and evicts its oldest binding.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::json::Line;
use crate::trace::TraceId;

/// Default capacity of the trace ring, in records.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// Maximum number of in-flight xid→trace bindings retained.
const XID_MAP_CAPACITY: usize = 65_536;

/// Which datapath tier matched a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// Exact-match microflow cache hit.
    Micro,
    /// Masked megaflow cache hit.
    Mega,
    /// Full slow-path flow-table walk (cache miss or cache disabled).
    Slow,
}

impl CacheTier {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            CacheTier::Micro => "micro",
            CacheTier::Mega => "mega",
            CacheTier::Slow => "slow",
        }
    }
}

/// One causal event in the life of a traced packet.
///
/// The variants are ordered roughly along the path a reactive flow setup
/// takes: emitted by a host, queued on links, matched (or missed) in a
/// datapath, punted to the controller, dispatched to an app, answered
/// with a flow-mod that is applied and finally acked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A host emitted the probe onto its access link.
    HostEmit {
        /// Simulator node ID of the emitting host.
        node: u32,
    },
    /// The frame was queued for transmission out of a node's port.
    LinkTx {
        /// Simulator node ID transmitting the frame.
        node: u32,
        /// Egress port on that node.
        port: u32,
    },
    /// A datapath classified the frame, at the given cache tier.
    DpMatch {
        /// Datapath ID of the switch.
        dpid: u64,
        /// Which tier produced the match decision.
        tier: CacheTier,
    },
    /// A group action was executed for the frame.
    DpGroup {
        /// Datapath ID of the switch.
        dpid: u64,
        /// Group identifier.
        group_id: u32,
    },
    /// A meter was applied to the frame.
    DpMeter {
        /// Datapath ID of the switch.
        dpid: u64,
        /// Meter identifier.
        meter_id: u32,
        /// Whether the frame passed the meter (false = dropped).
        passed: bool,
    },
    /// The switch punted the frame to the controller as a PACKET_IN.
    Punt {
        /// Datapath ID of the punting switch.
        dpid: u64,
        /// Flow table the punt decision came from.
        table_id: u8,
    },
    /// The controller dispatched the PACKET_IN through its app chain.
    AppDispatch {
        /// Name of the app that claimed the packet, or `"none"`.
        app: &'static str,
        /// Whether any app claimed (consumed) the packet.
        claimed: bool,
    },
    /// The controller sent a flow-mod caused by this trace.
    FlowModSent {
        /// Target datapath.
        dpid: u64,
        /// Transaction ID carried by the mod (links to applied/acked).
        xid: u32,
        /// Cookie stamped on the flow.
        cookie: u64,
    },
    /// The switch agent applied a flow-mod belonging to this trace.
    FlowModApplied {
        /// Datapath that applied the mod.
        dpid: u64,
        /// Transaction ID of the mod.
        xid: u32,
    },
    /// A table-full capacity eviction displaced an installed entry
    /// while a flow-mod belonging to this trace was applied.
    FlowEvicted {
        /// Datapath that evicted the entry.
        dpid: u64,
        /// Table the victim lived in.
        table_id: u8,
        /// The victim's cookie.
        cookie: u64,
    },
    /// The controller saw the barrier ack retiring the flow-mod.
    FlowModAcked {
        /// Datapath that acked.
        dpid: u64,
        /// Transaction ID of the acked mod.
        xid: u32,
    },
    /// The controller released the packet back into the data plane.
    PacketOutSent {
        /// Datapath the packet-out was sent to.
        dpid: u64,
    },
    /// The destination host received and validated the probe.
    HostRecv {
        /// Simulator node ID of the receiving host.
        node: u32,
    },
    /// A controller replica gained or relinquished mastership of a
    /// switch (recorded under the switch's control trace, see
    /// [`crate::trace::control_trace`]).
    MastershipChange {
        /// The switch whose mastership changed.
        dpid: u64,
        /// Replica index of the controller reporting the change.
        replica: u32,
        /// `true` when the replica took mastership, `false` on release.
        gained: bool,
    },
    /// A PACKET_IN was shed by the control-plane self-defense layer —
    /// either at the switch agent's punt meter or by controller-side
    /// admission control — and never reached the app chain.
    PuntShed {
        /// The switch whose punt was shed.
        dpid: u64,
        /// `true` when shed at the agent's punt meter (before the wire);
        /// `false` when shed by controller admission (after the wire).
        at_agent: bool,
    },
    /// Admission control deferred a PACKET_IN into the per-switch fair
    /// queue; it is dispatched later by the drain timer.
    PuntDeferred {
        /// The switch whose punt was deferred.
        dpid: u64,
    },
    /// The controller installed a push-back drop rule pinning an
    /// offending (ingress port, source MAC) at the switch.
    PushbackInstalled {
        /// The switch receiving the drop rule.
        dpid: u64,
        /// The offending ingress port.
        port: u32,
    },
    /// A consistent-update transaction changed phase (staging, flip,
    /// draining, committed, aborted).
    EpochPhase {
        /// The configuration epoch being installed.
        epoch: u64,
        /// The phase entered.
        phase: &'static str,
    },
    /// A replicated intent committed through the consensus log (one
    /// record per replica as each observes the commit).
    IntentCommitted {
        /// Log index of the committed entry.
        index: u64,
        /// Consensus term the entry was appended under.
        term: u64,
        /// Replica that proposed the intent.
        origin: u32,
    },
    /// An east-west snapshot was installed, replacing incremental
    /// repair (fresh bootstrap or chain-hash divergence).
    EwSnapshotInstalled {
        /// Replica that served the snapshot.
        from_replica: u32,
        /// Number of winning entries the snapshot carried.
        entries: u64,
    },
    /// An intent-log snapshot replaced the materialized committed
    /// state wholesale (replica rejoined past the leader's compaction
    /// floor); apps rebuilt rather than patched their derived state.
    IntentSnapshotInstalled {
        /// Number of active entries the snapshot carried.
        entries: u64,
    },
}

impl TraceEvent {
    /// Stable event name used in exports and assertions.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::HostEmit { .. } => "host_emit",
            TraceEvent::LinkTx { .. } => "link_tx",
            TraceEvent::DpMatch { .. } => "dp_match",
            TraceEvent::DpGroup { .. } => "dp_group",
            TraceEvent::DpMeter { .. } => "dp_meter",
            TraceEvent::Punt { .. } => "punt",
            TraceEvent::AppDispatch { .. } => "app_dispatch",
            TraceEvent::FlowModSent { .. } => "flow_mod_sent",
            TraceEvent::FlowModApplied { .. } => "flow_mod_applied",
            TraceEvent::FlowEvicted { .. } => "flow_evicted",
            TraceEvent::FlowModAcked { .. } => "flow_mod_acked",
            TraceEvent::PacketOutSent { .. } => "packet_out_sent",
            TraceEvent::HostRecv { .. } => "host_recv",
            TraceEvent::MastershipChange { .. } => "mastership_change",
            TraceEvent::PuntShed { .. } => "punt_shed",
            TraceEvent::PuntDeferred { .. } => "punt_deferred",
            TraceEvent::PushbackInstalled { .. } => "pushback_installed",
            TraceEvent::EpochPhase { .. } => "epoch_phase",
            TraceEvent::IntentCommitted { .. } => "intent_committed",
            TraceEvent::EwSnapshotInstalled { .. } => "ew_snapshot_installed",
            TraceEvent::IntentSnapshotInstalled { .. } => "intent_snapshot_installed",
        }
    }
}

/// A timestamped trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated time of the event, in nanoseconds since simulation start.
    pub at_nanos: u64,
    /// The trace this event belongs to.
    pub trace: TraceId,
    /// What happened.
    pub event: TraceEvent,
}

/// Per-event-type accounting for the simulator event loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoopSpan {
    /// Number of events of this type processed.
    pub count: u64,
    /// Wall-clock nanoseconds spent dispatching them. Excluded from the
    /// deterministic export; read it via [`Recorder::loop_profile`].
    pub wall_nanos: u64,
    /// Simulated nanoseconds the clock advanced to reach these events.
    pub sim_advance_nanos: u64,
}

#[derive(Debug)]
struct Inner {
    ring: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
    current: Option<TraceId>,
    xids: BTreeMap<u32, TraceId>,
    spans: BTreeMap<&'static str, LoopSpan>,
}

#[derive(Debug)]
struct Shared {
    enabled: AtomicBool,
    profile_wall: AtomicBool,
    inner: Mutex<Inner>,
}

/// Cheaply-cloneable handle to the shared flight recorder.
///
/// Created disabled; flip on with [`Recorder::set_enabled`]. All clones
/// share state, so a handle captured at fabric-build time observes a later
/// enable.
#[derive(Debug, Clone)]
pub struct Recorder {
    shared: Arc<Shared>,
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::new()
    }
}

impl Recorder {
    /// A disabled recorder with the default ring capacity.
    pub fn new() -> Recorder {
        Recorder::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A disabled recorder whose trace ring holds `capacity` records.
    pub fn with_capacity(capacity: usize) -> Recorder {
        let capacity = capacity.max(1);
        Recorder {
            shared: Arc::new(Shared {
                enabled: AtomicBool::new(false),
                profile_wall: AtomicBool::new(false),
                inner: Mutex::new(Inner {
                    ring: VecDeque::with_capacity(capacity.min(4096)),
                    capacity,
                    dropped: 0,
                    current: None,
                    xids: BTreeMap::new(),
                    spans: BTreeMap::new(),
                }),
            }),
        }
    }

    /// Lock the interior state, recovering from a poisoned mutex: the
    /// recorder is observability plumbing, so a panic on some other
    /// thread should not cascade into every later tap point.
    fn inner(&self) -> MutexGuard<'_, Inner> {
        match self.shared.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Enable or disable recording. Affects every clone of this handle.
    pub fn set_enabled(&self, on: bool) {
        self.shared.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether the recorder is currently capturing events.
    ///
    /// This is the hot-path guard: one `Arc` dereference and one relaxed
    /// atomic load. Callers must check it before doing any per-event work
    /// (hashing, formatting, field extraction).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.shared.enabled.load(Ordering::Relaxed)
    }

    /// Opt in to wall-clock sampling of event-loop dispatches.
    ///
    /// Off by default: the deterministic span export (counts + simulated
    /// advance) never needs wall time, and sampling `Instant::now` twice
    /// per event dominates enabled-recorder overhead. Flip this on only
    /// when [`Recorder::loop_profile`] wall costs are actually wanted.
    pub fn set_wall_profile(&self, on: bool) {
        self.shared.profile_wall.store(on, Ordering::Relaxed);
    }

    /// Whether event-loop dispatches should sample wall-clock time.
    #[inline]
    pub fn wall_profile_enabled(&self) -> bool {
        self.shared.profile_wall.load(Ordering::Relaxed)
    }

    /// Append a record to the ring, overwriting the oldest when full.
    /// No-op while disabled.
    pub fn record(&self, at_nanos: u64, trace: TraceId, event: TraceEvent) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner();
        if inner.ring.len() == inner.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(TraceRecord {
            at_nanos,
            trace,
            event,
        });
    }

    /// Set the trace the caller is currently processing on behalf of
    /// (e.g. while the controller runs its app chain for a PACKET_IN).
    /// Downstream taps like flow-mod send attach to this trace.
    pub fn begin_trace(&self, trace: Option<TraceId>) {
        if self.is_enabled() {
            self.inner().current = trace;
        }
    }

    /// Clear the current-trace context set by [`Recorder::begin_trace`].
    pub fn end_trace(&self) {
        if self.is_enabled() {
            self.inner().current = None;
        }
    }

    /// The trace set by [`Recorder::begin_trace`], if any.
    pub fn current_trace(&self) -> Option<TraceId> {
        if !self.is_enabled() {
            return None;
        }
        self.inner().current
    }

    /// Remember that protocol transaction `xid` belongs to `trace`, so the
    /// later applied/acked observations can be attributed. The map is
    /// bounded; the oldest binding is evicted past capacity.
    pub fn bind_xid(&self, xid: u32, trace: TraceId) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner();
        if inner.xids.len() >= XID_MAP_CAPACITY && !inner.xids.contains_key(&xid) {
            inner.xids.pop_first();
        }
        inner.xids.insert(xid, trace);
    }

    /// Look up the trace bound to `xid`, keeping the binding (used when a
    /// mod is applied — the ack arrives later).
    pub fn xid_trace(&self, xid: u32) -> Option<TraceId> {
        if !self.is_enabled() {
            return None;
        }
        self.inner().xids.get(&xid).copied()
    }

    /// Look up and remove the binding for `xid` (used at ack time).
    pub fn take_xid(&self, xid: u32) -> Option<TraceId> {
        if !self.is_enabled() {
            return None;
        }
        self.inner().xids.remove(&xid)
    }

    /// Account one simulator event-loop dispatch: `kind` is the event type
    /// name, `wall_nanos` the wall-clock dispatch cost, `sim_advance` how
    /// far simulated time jumped to reach the event.
    pub fn note_loop(&self, kind: &'static str, wall_nanos: u64, sim_advance_nanos: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner();
        let span = inner.spans.entry(kind).or_default();
        span.count += 1;
        span.wall_nanos += wall_nanos;
        span.sim_advance_nanos += sim_advance_nanos;
    }

    /// Snapshot of the whole trace ring, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.inner().ring.iter().cloned().collect()
    }

    /// All records belonging to `trace`, oldest first.
    pub fn trace_records(&self, trace: TraceId) -> Vec<TraceRecord> {
        self.inner()
            .ring
            .iter()
            .filter(|r| r.trace == trace)
            .cloned()
            .collect()
    }

    /// Number of records overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner().dropped
    }

    /// Fold another recorder's event-loop profile into this one, summing
    /// counts, wall time, and simulated advance per event type. Used to
    /// merge per-shard recorders after a sharded run; a handle sharing
    /// state with `other` is left unchanged.
    pub fn merge_loop_profile(&self, other: &Recorder) {
        if Arc::ptr_eq(&self.shared, &other.shared) {
            return;
        }
        let spans = other.loop_profile();
        let mut inner = self.inner();
        for (kind, span) in spans {
            let merged = inner.spans.entry(kind).or_default();
            merged.count += span.count;
            merged.wall_nanos += span.wall_nanos;
            merged.sim_advance_nanos += span.sim_advance_nanos;
        }
    }

    /// Snapshot of the event-loop profile, keyed by event-type name.
    pub fn loop_profile(&self) -> Vec<(&'static str, LoopSpan)> {
        self.inner().spans.iter().map(|(k, v)| (*k, *v)).collect()
    }

    /// Serialize the trace ring and the event-loop profile as
    /// deterministic JSON-lines.
    ///
    /// Wall-clock span costs are deliberately excluded — they differ run
    /// to run. Everything emitted here (event counts, simulated-time
    /// accounting, trace records) is a pure function of the scenario and
    /// its seed.
    pub fn write_jsonl(&self, out: &mut String) {
        let inner = self.inner();
        for (kind, span) in &inner.spans {
            Line::new("loop_span")
                .str("event", kind)
                .u64("count", span.count)
                .u64("sim_advance_nanos", span.sim_advance_nanos)
                .finish(out);
        }
        for rec in &inner.ring {
            write_record(rec, out);
        }
        Line::new("trace_ring")
            .u64("len", inner.ring.len() as u64)
            .u64("capacity", inner.capacity as u64)
            .u64("dropped", inner.dropped)
            .finish(out);
    }
}

fn write_record(rec: &TraceRecord, out: &mut String) {
    let line = Line::new("trace")
        .u64("at", rec.at_nanos)
        .str("id", &rec.trace.to_string())
        .str("event", rec.event.name());
    let line = match &rec.event {
        TraceEvent::HostEmit { node } | TraceEvent::HostRecv { node } => {
            line.u64("node", u64::from(*node))
        }
        TraceEvent::LinkTx { node, port } => line
            .u64("node", u64::from(*node))
            .u64("port", u64::from(*port)),
        TraceEvent::DpMatch { dpid, tier } => line.u64("dpid", *dpid).str("tier", tier.name()),
        TraceEvent::DpGroup { dpid, group_id } => {
            line.u64("dpid", *dpid).u64("group", u64::from(*group_id))
        }
        TraceEvent::DpMeter {
            dpid,
            meter_id,
            passed,
        } => line
            .u64("dpid", *dpid)
            .u64("meter", u64::from(*meter_id))
            .bool("passed", *passed),
        TraceEvent::Punt { dpid, table_id } => {
            line.u64("dpid", *dpid).u64("table", u64::from(*table_id))
        }
        TraceEvent::AppDispatch { app, claimed } => line.str("app", app).bool("claimed", *claimed),
        TraceEvent::FlowModSent { dpid, xid, cookie } => line
            .u64("dpid", *dpid)
            .u64("xid", u64::from(*xid))
            .u64("cookie", *cookie),
        TraceEvent::FlowModApplied { dpid, xid } | TraceEvent::FlowModAcked { dpid, xid } => {
            line.u64("dpid", *dpid).u64("xid", u64::from(*xid))
        }
        TraceEvent::FlowEvicted {
            dpid,
            table_id,
            cookie,
        } => line
            .u64("dpid", *dpid)
            .u64("table", u64::from(*table_id))
            .u64("cookie", *cookie),
        TraceEvent::PacketOutSent { dpid } => line.u64("dpid", *dpid),
        TraceEvent::MastershipChange {
            dpid,
            replica,
            gained,
        } => line
            .u64("dpid", *dpid)
            .u64("replica", u64::from(*replica))
            .bool("gained", *gained),
        TraceEvent::PuntShed { dpid, at_agent } => {
            line.u64("dpid", *dpid).bool("at_agent", *at_agent)
        }
        TraceEvent::PuntDeferred { dpid } => line.u64("dpid", *dpid),
        TraceEvent::PushbackInstalled { dpid, port } => {
            line.u64("dpid", *dpid).u64("port", u64::from(*port))
        }
        TraceEvent::EpochPhase { epoch, phase } => line.u64("epoch", *epoch).str("phase", phase),
        TraceEvent::IntentCommitted {
            index,
            term,
            origin,
        } => line
            .u64("index", *index)
            .u64("term", *term)
            .u64("origin", u64::from(*origin)),
        TraceEvent::EwSnapshotInstalled {
            from_replica,
            entries,
        } => line
            .u64("from", u64::from(*from_replica))
            .u64("entries", *entries),
        TraceEvent::IntentSnapshotInstalled { entries } => line.u64("entries", *entries),
    };
    line.finish(out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(n: u64) -> TraceId {
        TraceId(n)
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = Recorder::new();
        r.record(1, tid(1), TraceEvent::HostEmit { node: 0 });
        r.bind_xid(1, tid(1));
        r.note_loop("packet", 10, 10);
        assert!(r.records().is_empty());
        assert_eq!(r.xid_trace(1), None);
        assert!(r.loop_profile().is_empty());
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let r = Recorder::with_capacity(2);
        r.set_enabled(true);
        for i in 0..5u64 {
            r.record(i, tid(i), TraceEvent::HostEmit { node: 0 });
        }
        let recs = r.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].at_nanos, 3);
        assert_eq!(recs[1].at_nanos, 4);
        assert_eq!(r.dropped(), 3);
    }

    #[test]
    fn clones_share_state() {
        let a = Recorder::new();
        let b = a.clone();
        a.set_enabled(true);
        assert!(b.is_enabled());
        b.record(
            5,
            tid(9),
            TraceEvent::Punt {
                dpid: 1,
                table_id: 0,
            },
        );
        assert_eq!(a.records().len(), 1);
    }

    #[test]
    fn xid_bindings_peek_and_take() {
        let r = Recorder::new();
        r.set_enabled(true);
        r.bind_xid(42, tid(7));
        assert_eq!(r.xid_trace(42), Some(tid(7)));
        assert_eq!(r.take_xid(42), Some(tid(7)));
        assert_eq!(r.take_xid(42), None);
    }

    #[test]
    fn trace_records_filters_by_id() {
        let r = Recorder::new();
        r.set_enabled(true);
        r.record(1, tid(1), TraceEvent::HostEmit { node: 0 });
        r.record(2, tid(2), TraceEvent::HostEmit { node: 1 });
        r.record(3, tid(1), TraceEvent::HostRecv { node: 2 });
        let one = r.trace_records(tid(1));
        assert_eq!(one.len(), 2);
        assert_eq!(one[1].event, TraceEvent::HostRecv { node: 2 });
    }

    #[test]
    fn export_shape_is_stable() {
        let r = Recorder::with_capacity(8);
        r.set_enabled(true);
        r.note_loop("packet", 999, 50);
        r.record(
            7,
            tid(0xabcd),
            TraceEvent::DpMatch {
                dpid: 3,
                tier: CacheTier::Mega,
            },
        );
        let mut out = String::new();
        r.write_jsonl(&mut out);
        assert_eq!(
            out,
            concat!(
                "{\"type\":\"loop_span\",\"event\":\"packet\",\"count\":1,\"sim_advance_nanos\":50}\n",
                "{\"type\":\"trace\",\"at\":7,\"id\":\"000000000000abcd\",\"event\":\"dp_match\",\"dpid\":3,\"tier\":\"mega\"}\n",
                "{\"type\":\"trace_ring\",\"len\":1,\"capacity\":8,\"dropped\":0}\n",
            )
        );
    }
}
