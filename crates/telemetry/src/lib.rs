//! # zen-telemetry — causal flight recorder and deterministic export
//!
//! Observability layer for the zen stack. Three pieces:
//!
//! * **Trace identity** ([`trace`]): every workload probe carries a
//!   self-describing header; any component holding the frame (or a
//!   punt-truncated copy of it) can derive the same stable [`TraceId`]
//!   without coordination.
//! * **Flight recorder** ([`recorder`]): a bounded ring of causal
//!   [`TraceEvent`]s — host emit, link transmit, datapath cache tier,
//!   punt, app dispatch, flow-mod send/apply/ack, host receive — shared
//!   by every layer via cheap handle clones. Disabled, it costs one
//!   branch per tap point.
//! * **Deterministic JSON-lines** ([`json`]): hand-rolled emission with
//!   pinned formatting so that a fixed-seed run exports byte-identical
//!   telemetry, making snapshots diffable across runs, seeds, and PRs.
//!
//! The simulator world owns the canonical [`Recorder`] and clones it into
//! datapaths, the controller, and hosts at fabric-build time. Wall-clock
//! measurements (event-loop span timing) are kept in memory for profiling
//! APIs but never written to the deterministic export.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod recorder;
pub mod trace;

pub use recorder::{CacheTier, LoopSpan, Recorder, TraceEvent, TraceRecord};
pub use trace::{control_trace, probe_trace_id, trace_id_for_frame, TraceId, PROBE_MAGIC};
