//! Randomized tests for the simulator: topology invariants, link-model
//! conservation, and replay determinism under random configurations.
//!
//! Driven by the in-tree deterministic [`Lcg`] generator with fixed
//! seeds, so every run exercises the same reproducible configurations.

use std::any::Any;

use zen_sim::{
    Context, Duration, Host, Instant, LinkParams, Node, PortNo, Topology, Workload, World,
};
use zen_wire::lcg::Lcg;
use zen_wire::{EthernetAddress, Ipv4Address};

#[test]
fn random_topologies_are_connected() {
    let mut rng = Lcg::new(0x5101);
    for _ in 0..100 {
        let n = 2 + rng.gen_index(38);
        let extra = rng.gen_index(40);
        let seed = rng.next_u64();
        let t = Topology::random_connected(n, extra, LinkParams::default(), seed);
        assert!(t.is_connected());
        assert_eq!(t.switches, n);
        // Spanning tree + extras, capped by the complete graph.
        let max_edges = n * (n - 1) / 2;
        assert!(t.links.len() >= n - 1);
        assert!(t.links.len() <= max_edges);
        // No self loops or duplicate undirected edges.
        let mut seen = std::collections::BTreeSet::new();
        for l in &t.links {
            assert!(l.a != l.b);
            assert!(seen.insert((l.a.min(l.b), l.a.max(l.b))), "duplicate edge");
        }
    }
}

#[test]
fn fat_tree_structure() {
    for k in 1usize..6 {
        let k = k * 2; // even arities only
        let t = Topology::fat_tree(k, LinkParams::default());
        assert_eq!(t.switches, 5 * k * k / 4);
        assert_eq!(t.host_count(), k * k * k / 4);
        assert_eq!(t.links.len(), k * k * k / 2);
        assert!(t.is_connected());
    }
}

#[test]
fn frame_conservation_on_a_link() {
    // Every frame sent is either delivered, queued-dropped, or
    // down-dropped — never duplicated or lost silently.
    struct Burst {
        n: usize,
        size: usize,
    }
    impl Node for Burst {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for _ in 0..self.n {
                ctx.transmit(1, vec![0u8; self.size]);
            }
        }
        fn on_packet(&mut self, _: &mut Context<'_>, _: PortNo, _: &[u8]) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }
    struct Sink {
        rx: u64,
    }
    impl Node for Sink {
        fn on_packet(&mut self, _: &mut Context<'_>, _: PortNo, _: &[u8]) {
            self.rx += 1;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }
    let mut rng = Lcg::new(0x5102);
    for _ in 0..60 {
        let frames = 1 + rng.gen_index(49);
        let size = 60 + rng.gen_index(1440);
        let rate = *rng.choose(&[0u64, 1_000_000, 1_000_000_000]).unwrap();
        let mut world = World::new(1);
        let a = world.add_node(Box::new(Burst { n: frames, size }));
        let b = world.add_node(Box::new(Sink { rx: 0 }));
        let (link, _, _) = world.connect(
            a,
            b,
            LinkParams::new(Duration::from_micros(5), rate, 4 * size),
        );
        world.run_until(Instant::from_secs(600));
        let delivered = world.node_as::<Sink>(b).rx;
        let l = world.link(link);
        assert_eq!(
            delivered + l.ab.drops_queue + l.ab.drops_down,
            frames as u64,
            "conservation violated"
        );
        if rate == 0 {
            assert_eq!(delivered, frames as u64, "instant links never drop");
        }
    }
}

#[test]
fn ping_replay_is_bit_identical() {
    fn run(seed: u64, n: usize) -> (u64, u64, Vec<u64>) {
        let topo = Topology::ring(n, LinkParams::default());
        let mut world = World::new(seed);
        // L2-style direct wiring: hosts on a shared switchless ring is
        // meaningless, so just connect two hosts directly with relays
        // replaced by a chain of links through dummy forwarding hosts.
        // Keep it simple: two hosts, one link.
        let _ = topo;
        let h0 = world.add_node(Box::new(
            Host::new(EthernetAddress::from_id(1), Ipv4Address::new(10, 0, 0, 1)).with_workload(
                Workload::Ping {
                    dst: Ipv4Address::new(10, 0, 0, 2),
                    count: 10,
                    interval: Duration::from_millis(7),
                    start: Instant::from_millis(1),
                },
            ),
        ));
        let h1 = world.add_node(Box::new(Host::new(
            EthernetAddress::from_id(2),
            Ipv4Address::new(10, 0, 0, 2),
        )));
        world.connect(h0, h1, LinkParams::default());
        world.run_until(Instant::from_secs(2));
        let rtts: Vec<u64> = world
            .node_as::<Host>(h0)
            .stats
            .ping_rtts
            .samples()
            .iter()
            .map(|s| (s * 1e9) as u64)
            .collect();
        (
            world.events_processed(),
            world.metrics().counter("sim.tx_bytes"),
            rtts,
        )
    }
    let mut rng = Lcg::new(0x5103);
    for _ in 0..20 {
        let seed = rng.next_u64();
        let n = 3 + rng.gen_index(5);
        assert_eq!(run(seed, n), run(seed, n));
    }
}

#[test]
fn udp_seq_numbers_monotone_on_fifo_path() {
    // FIFO links must deliver a single flow in order: the receiver's
    // max seq equals count-1 and distinct receptions equal count.
    let mut rng = Lcg::new(0x5104);
    for _ in 0..30 {
        let count = 1 + rng.gen_range(59);
        let mut world = World::new(3);
        let h0 = world.add_node(Box::new(
            Host::new(EthernetAddress::from_id(1), Ipv4Address::new(10, 0, 0, 1)).with_workload(
                Workload::Udp {
                    dst: Ipv4Address::new(10, 0, 0, 2),
                    dst_port: 9,
                    size: 100,
                    count,
                    interval: Duration::from_micros(50),
                    start: Instant::from_millis(1),
                },
            ),
        ));
        let h1 = world.add_node(Box::new(Host::new(
            EthernetAddress::from_id(2),
            Ipv4Address::new(10, 0, 0, 2),
        )));
        world.connect(h0, h1, LinkParams::default());
        world.run_until(Instant::from_secs(5));
        let stats = &world.node_as::<Host>(h1).stats;
        let src = Ipv4Address::new(10, 0, 0, 1);
        assert_eq!(stats.udp_rx, count);
        assert_eq!(stats.udp_max_seq[&src], count - 1);
        assert_eq!(stats.udp_rx_per_src[&src], count);
    }
}
