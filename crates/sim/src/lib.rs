//! # zen-sim — a deterministic discrete-event network simulator
//!
//! The substrate every `zen` experiment runs on. Instead of a hardware
//! testbed, `zen` evaluates its SDN stack (and the distributed baselines
//! it is compared against) on a simulator with:
//!
//! * **Byte-accurate links** — propagation delay plus serialization at
//!   line rate, with finite drop-tail egress queues and administrative
//!   up/down state ([`world::LinkParams`], [`world::Link`]).
//! * **An out-of-band control channel** — switch↔controller messages
//!   travel on a modelled management network with configurable latency
//!   ([`world::Context::send_control`]).
//! * **Full determinism** — a run is a pure function of configuration and
//!   seed; the event queue breaks ties by sequence number and the crate
//!   ships its own PRNG ([`rng::Rng`]) so results cannot drift with
//!   dependency upgrades.
//! * **Deterministic fault injection** — a seeded, schedulable
//!   [`fault::FaultPlan`] of control-channel loss, partitions, message
//!   duplication and lossy links, replayable from the world seed.
//! * **Standard topologies** — fat-trees, leaf–spine fabrics, the Abilene
//!   and B4-style WANs, rings, meshes and seeded random graphs
//!   ([`topo::Topology`]).
//! * **Instrumented hosts** — ARP, ICMP echo, and timestamped UDP probe
//!   flows that measure one-way latency and loss in-band ([`host::Host`]).
//! * **Hostile workloads** — production-shaped traffic (Zipf host
//!   popularity, heavy-tailed elephant/mice flows, identity churn) and
//!   seeded attack scenarios: PACKET_IN floods, ARP broadcast storms,
//!   MAC-flapping rogues ([`hostile::HostileHost`]).
//!
//! Nodes implement [`world::Node`] and interact with the world only
//! through [`world::Context`], which keeps every interaction observable
//! and replayable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod host;
pub mod hostile;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;
pub mod topo;
pub mod world;

pub use fault::{FaultPlan, Scope, Window};
pub use host::{Host, Workload};
pub use hostile::{Attack, Churn, HostileConfig, HostileHost, HostileStats, TrafficProfile, Zipf};
pub use rng::Rng;
pub use shard::{ShardCtx, ShardNode, ShardedWorld};
pub use stats::{Counter, CounterId, Histogram, HistogramId, Metrics, TimeSeries};
pub use time::{Duration, Instant};
pub use topo::{FatTreeIndex, Topology};
pub use world::{Context, Link, LinkId, LinkParams, Node, NodeId, PortNo, World};
