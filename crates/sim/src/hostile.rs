//! Hostile and production-shaped workload generation.
//!
//! Every workload the stack faced before this module was benign probe
//! traffic. A [`HostileHost`] is a single-port edge node (like
//! [`crate::host::Host`]) that generates the traffic production
//! controllers actually see:
//!
//! * **Production-shaped background load** ([`TrafficProfile`]):
//!   flow-switched UDP probe traffic with Zipf-distributed destination
//!   popularity and heavy-tailed (Pareto) elephant/mice flow lengths.
//! * **Host churn** ([`Churn`]): the node periodically abandons its
//!   (MAC, IP) identity and adopts a fresh one from a pool, announcing
//!   it with a gratuitous ARP — tenant VMs coming and going on an edge
//!   port.
//! * **Seeded attacks** ([`Attack`]): PACKET_IN floods from a
//!   compromised host, ARP broadcast storms, and MAC-flapping rogues
//!   that claim a victim's source address from the wrong port.
//!
//! Everything is driven by the world's seeded [`crate::rng::Rng`], so
//! hostile scenarios replay bit-identically — the property the defense
//! soaks in `zen-core` assert on.
//!
//! The module is deliberately self-contained below `zen-core`: it knows
//! nothing about controllers or agents. It just emits frames; whether
//! the control plane melts is the system under test's problem.

use zen_telemetry::PROBE_MAGIC;
use zen_wire::builder::PacketBuilder;
use zen_wire::{EthernetAddress, Ipv4Address};

use crate::rng::Rng;
use crate::time::{Duration, Instant};
use crate::world::{Context, Node, NodeId, PortNo};

/// The single port a hostile host owns (mirrors [`crate::host::HOST_PORT`]).
pub const HOSTILE_PORT: PortNo = 1;

/// Timer token driving the benign traffic profile.
const TOKEN_PROFILE: u64 = 1;
/// Timer token driving the attack scenario.
const TOKEN_ATTACK: u64 = 2;
/// Timer token driving identity churn.
const TOKEN_CHURN: u64 = 3;

/// A bounded discrete Zipf sampler over ranks `0..n`: rank `k` is drawn
/// with probability proportional to `1 / (k + 1)^s`. Built once
/// (inverse-CDF table), sampled in `O(log n)` per draw.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` ranks with skew `s` (`s = 0` is uniform;
    /// `s ≈ 1` is the classic web/host-popularity shape).
    pub fn new(n: usize, s: f64) -> Zipf {
        let n = n.max(1);
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(total);
        }
        for w in &mut cdf {
            *w /= total;
        }
        Zipf { cdf }
    }

    /// Draw a rank in `0..n`.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.gen_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// A bounded Pareto draw with scale `xm` and shape `alpha`: the
/// heavy-tailed distribution behind elephant/mice flow-length mixes.
/// Smaller `alpha` means heavier tails; the draw is capped at
/// `64 * xm` to keep a single flow from dominating a bounded run.
pub fn pareto(rng: &mut Rng, xm: f64, alpha: f64) -> f64 {
    let u = 1.0 - rng.gen_f64(); // (0, 1]
    (xm / u.powf(1.0 / alpha)).min(xm * 64.0)
}

/// Production-shaped background traffic: flows of timestamped UDP
/// probe datagrams (receivable by [`crate::host::Host`], which folds
/// them into latency/loss stats) whose destinations follow a Zipf
/// popularity law and whose lengths follow a Pareto elephant/mice mix.
#[derive(Debug, Clone)]
pub struct TrafficProfile {
    /// Candidate destinations, most popular first ((MAC, IP) pairs —
    /// the generator skips ARP and addresses frames directly).
    pub peers: Vec<(EthernetAddress, Ipv4Address)>,
    /// Zipf skew across `peers` (0 = uniform, ~1 = web-shaped).
    pub zipf_s: f64,
    /// Median mice-flow length in frames (Pareto scale, shape 2.5).
    pub mice_frames: u64,
    /// Median elephant-flow length in frames (Pareto scale, shape 1.2).
    pub elephant_frames: u64,
    /// Probability a new flow is an elephant.
    pub elephant_fraction: f64,
    /// Gap between frames within a flow.
    pub frame_gap: Duration,
    /// Mean (exponential) think time between flows.
    pub flow_gap: Duration,
    /// UDP payload bytes per frame (min 20 for the probe header).
    pub payload_len: usize,
}

impl Default for TrafficProfile {
    fn default() -> TrafficProfile {
        TrafficProfile {
            peers: Vec::new(),
            zipf_s: 1.0,
            mice_frames: 4,
            elephant_frames: 200,
            elephant_fraction: 0.05,
            frame_gap: Duration::from_micros(500),
            flow_gap: Duration::from_millis(20),
            payload_len: 64,
        }
    }
}

/// Identity churn: the node periodically becomes a "new tenant" by
/// adopting the next (MAC, IP) from `pool` and announcing it with a
/// gratuitous ARP. Learned state for the abandoned identity goes
/// silent and must age out — a steady source of table churn even
/// before any attack starts.
#[derive(Debug, Clone)]
pub struct Churn {
    /// Identities cycled through (the node starts on its configured
    /// identity and moves to `pool[0]` at the first churn).
    pub pool: Vec<(EthernetAddress, Ipv4Address)>,
    /// Time between identity changes.
    pub interval: Duration,
}

/// A seeded attack scenario.
#[derive(Debug, Clone)]
pub enum Attack {
    /// No attack: profile traffic and churn only.
    None,
    /// PACKET_IN flood from a compromised host: UDP frames whose
    /// destination MAC rotates on every frame, so no learned entry or
    /// installed flow ever matches — every frame punts to the
    /// controller (and, under L2 learning, floods the fabric).
    PacketInFlood {
        /// Inter-frame gap (the flood rate).
        interval: Duration,
        /// Also rotate the *source* MAC per frame. A fixed source
        /// models a compromised-but-honest NIC that targeted push-back
        /// rules can pin; a rotating source evades per-MAC push-back
        /// and must be caught by the agent's punt meter instead.
        rotate_src: bool,
        /// UDP payload bytes per flood frame.
        payload_len: usize,
    },
    /// ARP broadcast storm: who-has requests for rotating target IPs
    /// at a fixed rate. Every broadcast floods to every edge port, so
    /// a single storm port can saturate innocent access links.
    ArpStorm {
        /// Inter-request gap (the storm rate).
        interval: Duration,
        /// Also rotate the claimed sender MAC per request, polluting
        /// L2 learning tables as a side effect.
        spoof_sources: bool,
    },
    /// MAC-flapping rogue: frames whose *source* MAC is the victim's,
    /// sent from this (wrong) port, bouncing the victim's learned
    /// location back and forth until the L2 flap damper pins it.
    MacFlap {
        /// The MAC being claimed.
        victim_mac: EthernetAddress,
        /// Inter-frame gap (the flap rate).
        interval: Duration,
    },
}

/// Configuration for a [`HostileHost`].
#[derive(Debug, Clone)]
pub struct HostileConfig {
    /// Initial MAC address.
    pub mac: EthernetAddress,
    /// Initial IPv4 address.
    pub ip: Ipv4Address,
    /// Benign production-shaped load, if any.
    pub profile: Option<TrafficProfile>,
    /// Identity churn, if any.
    pub churn: Option<Churn>,
    /// Attack scenario.
    pub attack: Attack,
    /// When the attack begins.
    pub attack_start: Instant,
    /// When the attack stops (`None` = runs until the world halts).
    pub attack_stop: Option<Instant>,
}

impl HostileConfig {
    /// A quiet host with identity (`mac`, `ip`) and no traffic; layer
    /// on a profile, churn, or an attack by setting fields.
    pub fn new(mac: EthernetAddress, ip: Ipv4Address) -> HostileConfig {
        HostileConfig {
            mac,
            ip,
            profile: None,
            churn: None,
            attack: Attack::None,
            attack_start: Instant::ZERO,
            attack_stop: None,
        }
    }
}

/// Deterministic counters for a [`HostileHost`] — pure functions of the
/// world seed, safe to fold into replay digests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostileStats {
    /// Benign profile frames sent.
    pub profile_frames: u64,
    /// Benign flows started.
    pub flows_started: u64,
    /// Flows that drew the elephant length distribution.
    pub elephants: u64,
    /// Attack frames sent.
    pub attack_frames: u64,
    /// Identity changes performed.
    pub churns: u64,
}

/// A single-port edge node generating production-shaped and/or hostile
/// traffic per [`HostileConfig`]. See the module docs.
pub struct HostileHost {
    cfg: HostileConfig,
    mac: EthernetAddress,
    ip: Ipv4Address,
    zipf: Option<Zipf>,
    /// Remaining frames in the current benign flow.
    flow_remaining: u64,
    /// Destination index of the current benign flow.
    flow_dst: usize,
    /// Per-destination probe sequence counter (shared across flows so
    /// receivers see a monotone sequence per source IP).
    seq: u64,
    /// Rotation counter for attack-frame address synthesis.
    attack_nonce: u64,
    /// Next churn-pool index to adopt.
    churn_next: usize,
    /// Deterministic counters.
    pub stats: HostileStats,
}

impl HostileHost {
    /// A hostile host driven by `cfg`.
    pub fn new(cfg: HostileConfig) -> HostileHost {
        let zipf = cfg
            .profile
            .as_ref()
            .filter(|p| !p.peers.is_empty())
            .map(|p| Zipf::new(p.peers.len(), p.zipf_s));
        let (mac, ip) = (cfg.mac, cfg.ip);
        HostileHost {
            cfg,
            mac,
            ip,
            zipf,
            flow_remaining: 0,
            flow_dst: 0,
            seq: 0,
            attack_nonce: 0,
            churn_next: 0,
            stats: HostileStats::default(),
        }
    }

    /// The node's current MAC (changes under churn).
    pub fn mac(&self) -> EthernetAddress {
        self.mac
    }

    /// The node's current IP (changes under churn).
    pub fn ip(&self) -> Ipv4Address {
        self.ip
    }

    /// One benign profile frame: a timestamped UDP probe to the current
    /// flow's destination, starting a new flow first if the last one
    /// finished.
    fn fire_profile(&mut self, ctx: &mut Context<'_>) {
        let Some(profile) = self.cfg.profile.clone() else {
            return;
        };
        let Some(zipf) = self.zipf.as_ref() else {
            return;
        };
        if self.flow_remaining == 0 {
            self.flow_dst = zipf.sample(ctx.rng());
            let elephant = ctx.rng().gen_bool(profile.elephant_fraction);
            let (scale, alpha) = if elephant {
                (profile.elephant_frames, 1.2)
            } else {
                (profile.mice_frames, 2.5)
            };
            self.flow_remaining = pareto(ctx.rng(), scale.max(1) as f64, alpha).ceil() as u64;
            self.flow_remaining = self.flow_remaining.max(1);
            self.stats.flows_started += 1;
            if elephant {
                self.stats.elephants += 1;
            }
        }
        let (dst_mac, dst_ip) = profile.peers[self.flow_dst];
        let size = profile.payload_len.max(20);
        let mut payload = vec![0u8; size];
        payload[0..4].copy_from_slice(&PROBE_MAGIC.to_be_bytes());
        payload[4..12].copy_from_slice(&self.seq.to_be_bytes());
        payload[12..20].copy_from_slice(&ctx.now().as_nanos().to_be_bytes());
        self.seq += 1;
        let frame =
            PacketBuilder::udp(self.mac, self.ip, 20_000, dst_mac, dst_ip, 20_000, &payload);
        ctx.transmit(HOSTILE_PORT, frame);
        self.stats.profile_frames += 1;
        self.flow_remaining -= 1;
        let delay = if self.flow_remaining > 0 {
            profile.frame_gap
        } else {
            let mean = profile.flow_gap.as_nanos() as f64;
            Duration::from_nanos(ctx.rng().gen_exp(mean).round().max(1.0) as u64)
        };
        ctx.set_timer(delay, TOKEN_PROFILE);
    }

    /// One attack frame per the configured scenario.
    fn fire_attack(&mut self, ctx: &mut Context<'_>) {
        self.attack_nonce += 1;
        let nonce = self.attack_nonce;
        let interval = match self.cfg.attack {
            Attack::None => return,
            Attack::PacketInFlood {
                interval,
                rotate_src,
                payload_len,
            } => {
                // Rotating destination MACs are never learned, so every
                // frame misses every installed flow and punts.
                let dst_mac = EthernetAddress::from_id(0x6D_0000_0000 + nonce);
                let dst_ip = Ipv4Address::new(
                    172,
                    16,
                    ((nonce >> 8) & 0xff) as u8,
                    (nonce & 0xff).max(1) as u8,
                );
                let src_mac = if rotate_src {
                    EthernetAddress::from_id(0x6C_0000_0000 + nonce)
                } else {
                    self.mac
                };
                let payload = vec![0u8; payload_len];
                let frame = PacketBuilder::udp(
                    src_mac,
                    self.ip,
                    (4000 + (nonce & 0xfff)) as u16,
                    dst_mac,
                    dst_ip,
                    (4000 + ((nonce >> 12) & 0xfff)) as u16,
                    &payload,
                );
                ctx.transmit(HOSTILE_PORT, frame);
                interval
            }
            Attack::ArpStorm {
                interval,
                spoof_sources,
            } => {
                let src_mac = if spoof_sources {
                    EthernetAddress::from_id(0x6B_0000_0000 + nonce)
                } else {
                    self.mac
                };
                let target = Ipv4Address::new(
                    10,
                    250,
                    ((nonce >> 8) & 0xff) as u8,
                    (nonce & 0xff).max(1) as u8,
                );
                let frame = PacketBuilder::arp_request(src_mac, self.ip, target);
                ctx.transmit(HOSTILE_PORT, frame);
                interval
            }
            Attack::MacFlap {
                victim_mac,
                interval,
            } => {
                // Claim the victim's source MAC from this port. The
                // destination is a fixed unknown unicast so the frame
                // itself goes nowhere interesting; the damage is done
                // by the L2 source-learning flap.
                let payload = [0u8; 20];
                let frame = PacketBuilder::udp(
                    victim_mac,
                    self.ip,
                    4001,
                    EthernetAddress::from_id(0x6E_0000_0001),
                    Ipv4Address::new(172, 31, 0, 1),
                    4001,
                    &payload,
                );
                ctx.transmit(HOSTILE_PORT, frame);
                interval
            }
        };
        self.stats.attack_frames += 1;
        let now = ctx.now();
        if self
            .cfg
            .attack_stop
            .is_none_or(|stop| now + interval < stop)
        {
            ctx.set_timer(interval, TOKEN_ATTACK);
        }
    }

    /// Adopt the next identity from the churn pool and announce it.
    fn fire_churn(&mut self, ctx: &mut Context<'_>) {
        let Some(churn) = self.cfg.churn.clone() else {
            return;
        };
        if churn.pool.is_empty() {
            return;
        }
        let (mac, ip) = churn.pool[self.churn_next % churn.pool.len()];
        self.churn_next += 1;
        self.mac = mac;
        self.ip = ip;
        self.stats.churns += 1;
        // Gratuitous ARP: who-has our own IP, announcing the new MAC.
        let garp = PacketBuilder::arp_request(self.mac, self.ip, self.ip);
        ctx.transmit(HOSTILE_PORT, garp);
        ctx.set_timer(churn.interval, TOKEN_CHURN);
    }
}

impl Node for HostileHost {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if self.cfg.profile.is_some() && self.zipf.is_some() {
            ctx.set_timer(Duration::from_nanos(0), TOKEN_PROFILE);
        }
        if !matches!(self.cfg.attack, Attack::None) {
            let delay = self.cfg.attack_start.duration_since(ctx.now());
            ctx.set_timer(delay, TOKEN_ATTACK);
        }
        if self.cfg.churn.is_some() {
            if let Some(churn) = self.cfg.churn.as_ref() {
                ctx.set_timer(churn.interval, TOKEN_CHURN);
            }
        }
    }

    fn on_packet(&mut self, _ctx: &mut Context<'_>, _port: PortNo, _frame: &[u8]) {
        // Hostile hosts are write-only: they never answer ARP or ICMP,
        // and they ignore whatever the fabric delivers (including their
        // own floods echoed back).
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        match token {
            TOKEN_PROFILE => self.fire_profile(ctx),
            TOKEN_ATTACK => self.fire_attack(ctx),
            TOKEN_CHURN => self.fire_churn(ctx),
            _ => {}
        }
    }

    fn on_control(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _bytes: &[u8]) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_bounded() {
        let zipf = Zipf::new(16, 1.0);
        let mut rng = Rng::new(7);
        let mut counts = [0u64; 16];
        for _ in 0..10_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        // Rank 0 dominates rank 15 decisively under s = 1.
        assert!(counts[0] > counts[15] * 4, "counts {counts:?}");
        assert!(counts.iter().all(|&c| c < 10_000));
    }

    #[test]
    fn zipf_zero_skew_is_roughly_uniform() {
        let zipf = Zipf::new(8, 0.0);
        let mut rng = Rng::new(11);
        let mut counts = [0u64; 8];
        for _ in 0..8_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((700..=1300).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn pareto_is_heavy_tailed_but_capped() {
        let mut rng = Rng::new(3);
        let mut max = 0.0f64;
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let x = pareto(&mut rng, 4.0, 1.2);
            assert!((4.0..=4.0 * 64.0).contains(&x));
            max = max.max(x);
            sum += x;
        }
        // The tail reaches the cap region and the mean sits well above
        // the scale — the elephant signature.
        assert!(max > 100.0, "max {max}");
        assert!(sum / 10_000.0 > 8.0, "mean {}", sum / 10_000.0);
    }
}
