//! Topology shapes: the standard graphs SDN systems are evaluated on.
//!
//! A [`Topology`] is a pure description — switches, host attachment
//! points, and switch-to-switch links with their parameters. Higher layers
//! (the SDN controller harness, the distributed-routing harness, the
//! benchmark suite) instantiate concrete nodes from it, so the same shape
//! can be driven by either control plane.

use crate::rng::Rng;
use crate::world::LinkParams;

/// A switch-to-switch link in a topology description.
#[derive(Debug, Clone, Copy)]
pub struct SwitchLink {
    /// First endpoint (switch index).
    pub a: usize,
    /// Second endpoint (switch index).
    pub b: usize,
    /// Link parameters.
    pub params: LinkParams,
}

/// A pure topology description.
#[derive(Debug, Clone)]
pub struct Topology {
    /// A short human-readable name ("fat-tree-4", "b4", ...).
    pub name: String,
    /// Number of switches, indexed `0..switches`.
    pub switches: usize,
    /// Host attachment points: `hosts[i]` is the switch index host `i`
    /// attaches to.
    pub hosts: Vec<usize>,
    /// Switch-to-switch links.
    pub links: Vec<SwitchLink>,
}

impl Topology {
    fn new(name: &str, switches: usize) -> Topology {
        Topology {
            name: name.to_string(),
            switches,
            hosts: Vec::new(),
            links: Vec::new(),
        }
    }

    fn link(&mut self, a: usize, b: usize, params: LinkParams) {
        debug_assert!(a < self.switches && b < self.switches && a != b);
        self.links.push(SwitchLink { a, b, params });
    }

    /// Attach one host to every switch.
    pub fn with_host_per_switch(mut self) -> Topology {
        self.hosts = (0..self.switches).collect();
        self
    }

    /// Attach `n` hosts to the given switch.
    pub fn with_hosts_at(mut self, switch: usize, n: usize) -> Topology {
        debug_assert!(switch < self.switches);
        self.hosts.extend(std::iter::repeat_n(switch, n));
        self
    }

    /// Number of host attachment points.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// The network diameter in hops (switch graph only), or `None` if
    /// disconnected.
    pub fn diameter(&self) -> Option<usize> {
        let n = self.switches;
        if n == 0 {
            return Some(0);
        }
        let mut adj = vec![Vec::new(); n];
        for l in &self.links {
            adj[l.a].push(l.b);
            adj[l.b].push(l.a);
        }
        let mut diameter = 0;
        for start in 0..n {
            let mut dist = vec![usize::MAX; n];
            dist[start] = 0;
            let mut queue = std::collections::VecDeque::from([start]);
            while let Some(u) = queue.pop_front() {
                for &v in &adj[u] {
                    if dist[v] == usize::MAX {
                        dist[v] = dist[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
            let ecc = *dist.iter().max().unwrap();
            if ecc == usize::MAX {
                return None;
            }
            diameter = diameter.max(ecc);
        }
        Some(diameter)
    }

    /// Whether the switch graph is connected.
    pub fn is_connected(&self) -> bool {
        self.diameter().is_some()
    }

    // ---- standard shapes ------------------------------------------------

    /// A chain of `n` switches.
    pub fn line(n: usize, params: LinkParams) -> Topology {
        let mut t = Topology::new(&format!("line-{n}"), n);
        for i in 1..n {
            t.link(i - 1, i, params);
        }
        t
    }

    /// A cycle of `n ≥ 3` switches.
    pub fn ring(n: usize, params: LinkParams) -> Topology {
        assert!(n >= 3, "a ring needs at least 3 switches");
        let mut t = Topology::new(&format!("ring-{n}"), n);
        for i in 0..n {
            t.link(i, (i + 1) % n, params);
        }
        t
    }

    /// A star: switch 0 is the hub, switches `1..=leaves` the spokes.
    pub fn star(leaves: usize, params: LinkParams) -> Topology {
        let mut t = Topology::new(&format!("star-{leaves}"), leaves + 1);
        for i in 1..=leaves {
            t.link(0, i, params);
        }
        t
    }

    /// A complete graph on `n` switches.
    pub fn full_mesh(n: usize, params: LinkParams) -> Topology {
        let mut t = Topology::new(&format!("mesh-{n}"), n);
        for a in 0..n {
            for b in a + 1..n {
                t.link(a, b, params);
            }
        }
        t
    }

    /// A `k`-ary fat-tree (Al-Fares et al.): `k` pods of `k/2` edge and
    /// `k/2` aggregation switches each, plus `(k/2)²` core switches, with
    /// `k/2` hosts on every edge switch. `k` must be even and ≥ 2.
    ///
    /// Switch indices: edges first (`pod * k/2 + e`), then aggregations,
    /// then cores. Use [`FatTreeIndex`] to navigate.
    pub fn fat_tree(k: usize, params: LinkParams) -> Topology {
        assert!(k >= 2 && k.is_multiple_of(2), "fat-tree arity must be even");
        let idx = FatTreeIndex::new(k);
        let mut t = Topology::new(&format!("fat-tree-{k}"), idx.switch_count());
        let half = k / 2;

        for pod in 0..k {
            for e in 0..half {
                let edge = idx.edge(pod, e);
                // Edge <-> aggregation, full bipartite within the pod.
                for a in 0..half {
                    t.link(edge, idx.agg(pod, a), params);
                }
                // Hosts on this edge switch.
                for _ in 0..half {
                    t.hosts.push(edge);
                }
            }
            // Aggregation <-> core: agg a connects to cores a*half..(a+1)*half.
            for a in 0..half {
                for c in 0..half {
                    t.link(idx.agg(pod, a), idx.core(a * half + c), params);
                }
            }
        }
        t
    }

    /// A leaf–spine (2-tier Clos) fabric: every leaf connects to every
    /// spine; `hosts_per_leaf` hosts per leaf. Leaves are switches
    /// `0..leaves`, spines `leaves..leaves+spines`.
    pub fn leaf_spine(
        leaves: usize,
        spines: usize,
        hosts_per_leaf: usize,
        params: LinkParams,
    ) -> Topology {
        let mut t = Topology::new(&format!("leaf-spine-{leaves}x{spines}"), leaves + spines);
        for l in 0..leaves {
            for s in 0..spines {
                t.link(l, leaves + s, params);
            }
            for _ in 0..hosts_per_leaf {
                t.hosts.push(l);
            }
        }
        t
    }

    /// A 12-site inter-datacenter WAN in the style of Google's B4
    /// (SIGCOMM'13): three geographic clusters with rich intra-cluster
    /// connectivity and a few long-haul inter-cluster trunks. Link
    /// latencies reflect rough geography; all links share `bandwidth_bps`.
    pub fn b4(bandwidth_bps: u64) -> Topology {
        use crate::time::Duration;
        let mut t = Topology::new("b4", 12);
        let ms = Duration::from_millis;
        let q = 4 << 20;
        let link = |t: &mut Topology, a: usize, b: usize, lat_ms: u64| {
            t.link(a, b, LinkParams::new(ms(lat_ms), bandwidth_bps, q));
        };
        // North America: 0..6
        link(&mut t, 0, 1, 2);
        link(&mut t, 0, 2, 6);
        link(&mut t, 1, 2, 5);
        link(&mut t, 1, 3, 8);
        link(&mut t, 2, 3, 4);
        link(&mut t, 2, 4, 12);
        link(&mut t, 3, 5, 10);
        link(&mut t, 4, 5, 6);
        // Europe: 6..9
        link(&mut t, 6, 7, 3);
        link(&mut t, 6, 8, 5);
        link(&mut t, 7, 8, 4);
        // Asia: 9..12
        link(&mut t, 9, 10, 4);
        link(&mut t, 9, 11, 6);
        link(&mut t, 10, 11, 5);
        // Transatlantic / transpacific trunks.
        link(&mut t, 4, 6, 40);
        link(&mut t, 5, 7, 45);
        link(&mut t, 0, 9, 60);
        link(&mut t, 1, 10, 65);
        link(&mut t, 8, 11, 90);
        t
    }

    /// The Abilene research backbone (11 nodes, 14 links), a standard
    /// WAN evaluation topology.
    pub fn abilene(bandwidth_bps: u64) -> Topology {
        use crate::time::Duration;
        let mut t = Topology::new("abilene", 11);
        let q = 4 << 20;
        // (a, b, one-way ms): NYC(0) CHI(1) WAS(2) ATL(3) IND(4) KAN(5)
        // HOU(6) DEN(7) LA(8) SUN(9) SEA(10)
        let edges: [(usize, usize, u64); 14] = [
            (0, 1, 9),
            (0, 2, 3),
            (1, 4, 3),
            (2, 3, 7),
            (3, 4, 6),
            (3, 6, 10),
            (4, 5, 6),
            (5, 6, 8),
            (5, 7, 7),
            (6, 8, 15),
            (7, 9, 12),
            (7, 10, 13),
            (8, 9, 5),
            (9, 10, 9),
        ];
        for (a, b, ms) in edges {
            t.link(
                a,
                b,
                LinkParams::new(Duration::from_millis(ms), bandwidth_bps, q),
            );
        }
        t
    }

    /// A random connected graph: a random spanning tree plus
    /// `extra_edges` additional distinct random edges.
    pub fn random_connected(
        n: usize,
        extra_edges: usize,
        params: LinkParams,
        seed: u64,
    ) -> Topology {
        assert!(n >= 2);
        let mut rng = Rng::new(seed);
        let mut t = Topology::new(&format!("rand-{n}-{extra_edges}"), n);
        // Random spanning tree: attach each node to a random earlier one.
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        let mut present = std::collections::BTreeSet::new();
        let mut edges = std::collections::BTreeSet::new();
        present.insert(order[0]);
        for &v in &order[1..] {
            let anchors: Vec<usize> = present.iter().copied().collect();
            let u = *rng.choose(&anchors).unwrap();
            edges.insert((u.min(v), u.max(v)));
            present.insert(v);
        }
        let max_edges = n * (n - 1) / 2;
        let mut added = 0;
        let mut attempts = 0;
        while added < extra_edges && edges.len() < max_edges && attempts < extra_edges * 100 {
            attempts += 1;
            let a = rng.gen_index(n);
            let b = rng.gen_index(n);
            if a == b {
                continue;
            }
            if edges.insert((a.min(b), a.max(b))) {
                added += 1;
            }
        }
        for (a, b) in edges {
            t.link(a, b, params);
        }
        t
    }
}

/// Index arithmetic for [`Topology::fat_tree`] switch roles.
#[derive(Debug, Clone, Copy)]
pub struct FatTreeIndex {
    /// The arity `k`.
    pub k: usize,
}

impl FatTreeIndex {
    /// Create index helper for arity `k`.
    pub fn new(k: usize) -> FatTreeIndex {
        FatTreeIndex { k }
    }

    /// Total switches: `k²/2` edge + `k²/2` agg + `k²/4` core.
    pub fn switch_count(&self) -> usize {
        self.k * self.k / 2 * 2 + self.k * self.k / 4
    }

    /// Edge switch `e` of pod `pod`.
    pub fn edge(&self, pod: usize, e: usize) -> usize {
        pod * (self.k / 2) + e
    }

    /// Aggregation switch `a` of pod `pod`.
    pub fn agg(&self, pod: usize, a: usize) -> usize {
        self.k * self.k / 2 + pod * (self.k / 2) + a
    }

    /// Core switch `c`.
    pub fn core(&self, c: usize) -> usize {
        self.k * self.k + c
    }

    /// Whether switch `s` is an edge switch.
    pub fn is_edge(&self, s: usize) -> bool {
        s < self.k * self.k / 2
    }

    /// Whether switch `s` is an aggregation switch.
    pub fn is_agg(&self, s: usize) -> bool {
        s >= self.k * self.k / 2 && s < self.k * self.k
    }

    /// Whether switch `s` is a core switch.
    pub fn is_core(&self, s: usize) -> bool {
        s >= self.k * self.k
    }

    /// The pod of an edge or aggregation switch.
    pub fn pod_of(&self, s: usize) -> Option<usize> {
        if self.is_edge(s) {
            Some(s / (self.k / 2))
        } else if self.is_agg(s) {
            Some((s - self.k * self.k / 2) / (self.k / 2))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_shape() {
        let t = Topology::line(5, LinkParams::default());
        assert_eq!(t.switches, 5);
        assert_eq!(t.links.len(), 4);
        assert_eq!(t.diameter(), Some(4));
    }

    #[test]
    fn ring_shape() {
        let t = Topology::ring(6, LinkParams::default());
        assert_eq!(t.links.len(), 6);
        assert_eq!(t.diameter(), Some(3));
    }

    #[test]
    fn star_shape() {
        let t = Topology::star(4, LinkParams::default());
        assert_eq!(t.switches, 5);
        assert_eq!(t.links.len(), 4);
        assert_eq!(t.diameter(), Some(2));
    }

    #[test]
    fn mesh_shape() {
        let t = Topology::full_mesh(5, LinkParams::default());
        assert_eq!(t.links.len(), 10);
        assert_eq!(t.diameter(), Some(1));
    }

    #[test]
    fn fat_tree_counts() {
        // Classic k=4: 20 switches, 16 hosts, 32 inter-switch links.
        let t = Topology::fat_tree(4, LinkParams::default());
        assert_eq!(t.switches, 20);
        assert_eq!(t.host_count(), 16);
        assert_eq!(t.links.len(), 32);
        assert!(t.is_connected());
        assert_eq!(t.diameter(), Some(4));

        let t8 = Topology::fat_tree(8, LinkParams::default());
        assert_eq!(t8.switches, 80);
        assert_eq!(t8.host_count(), 128);
    }

    #[test]
    fn fat_tree_index_roles() {
        let idx = FatTreeIndex::new(4);
        assert!(idx.is_edge(idx.edge(0, 0)));
        assert!(idx.is_agg(idx.agg(3, 1)));
        assert!(idx.is_core(idx.core(3)));
        assert_eq!(idx.pod_of(idx.edge(2, 1)), Some(2));
        assert_eq!(idx.pod_of(idx.agg(2, 1)), Some(2));
        assert_eq!(idx.pod_of(idx.core(0)), None);
    }

    #[test]
    fn leaf_spine_shape() {
        let t = Topology::leaf_spine(4, 2, 3, LinkParams::default());
        assert_eq!(t.switches, 6);
        assert_eq!(t.links.len(), 8);
        assert_eq!(t.host_count(), 12);
        assert_eq!(t.diameter(), Some(2));
    }

    #[test]
    fn wan_topologies_connected() {
        let b4 = Topology::b4(10_000_000_000);
        assert_eq!(b4.switches, 12);
        assert!(b4.is_connected());

        let ab = Topology::abilene(10_000_000_000);
        assert_eq!(ab.switches, 11);
        assert_eq!(ab.links.len(), 14);
        assert!(ab.is_connected());
    }

    #[test]
    fn random_graphs_connected_and_deterministic() {
        for seed in 0..5 {
            let t = Topology::random_connected(20, 15, LinkParams::default(), seed);
            assert!(t.is_connected(), "seed {seed} disconnected");
            assert_eq!(t.links.len(), 19 + 15);
        }
        let a = Topology::random_connected(20, 15, LinkParams::default(), 7);
        let b = Topology::random_connected(20, 15, LinkParams::default(), 7);
        let ea: Vec<(usize, usize)> = a.links.iter().map(|l| (l.a, l.b)).collect();
        let eb: Vec<(usize, usize)> = b.links.iter().map(|l| (l.a, l.b)).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn host_helpers() {
        let t = Topology::ring(3, LinkParams::default()).with_host_per_switch();
        assert_eq!(t.hosts, vec![0, 1, 2]);
        let t = Topology::line(2, LinkParams::default()).with_hosts_at(1, 3);
        assert_eq!(t.hosts, vec![1, 1, 1]);
    }
}
