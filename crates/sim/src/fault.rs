//! Deterministic fault injection: a seeded, schedulable plan of
//! control-channel and data-plane impairments.
//!
//! A [`FaultPlan`] is a declarative list of rules, each active during a
//! time [`Window`]: control-message loss probability (per node pair or
//! global), hard partitions (blackholes between a node pair, with the
//! heal implied by the window's end), message duplication, and lossy
//! data-plane links. The world consults the plan on every send; all
//! randomness comes from the world's own [`crate::rng::Rng`], so a chaos
//! run is a pure function of topology + plan + seed and replays
//! bit-for-bit. Dropped, blackholed, and duplicated messages are counted
//! in [`crate::stats::Metrics`] under `fault.*` keys.

use crate::time::Instant;
use crate::world::{LinkId, NodeId};

/// A half-open interval of simulated time `[from, until)` during which a
/// fault rule is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// First instant the rule applies.
    pub from: Instant,
    /// First instant the rule no longer applies (the heal time).
    pub until: Instant,
}

impl Window {
    /// The window `[from, until)`.
    pub fn new(from: Instant, until: Instant) -> Window {
        Window { from, until }
    }

    /// A window covering all of simulated time.
    pub fn always() -> Window {
        Window {
            from: Instant::ZERO,
            until: Instant::from_nanos(u64::MAX),
        }
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: Instant) -> bool {
        self.from <= t && t < self.until
    }
}

/// Which control-channel conversations a rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Every sender/receiver pair.
    All,
    /// Both directions between a specific pair of nodes.
    Pair(NodeId, NodeId),
}

impl Scope {
    fn matches(&self, from: NodeId, to: NodeId) -> bool {
        match *self {
            Scope::All => true,
            Scope::Pair(a, b) => (a == from && b == to) || (a == to && b == from),
        }
    }
}

/// A schedulable, replayable set of fault rules.
///
/// Build one with the chainable constructors, then install it with
/// [`crate::world::World::set_fault_plan`]. Rules compose: when several
/// loss rules cover the same message the highest probability wins, and a
/// partition always wins over probabilistic loss.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    control_loss: Vec<(Scope, Window, f64)>,
    control_dup: Vec<(Scope, Window, f64)>,
    partitions: Vec<(NodeId, NodeId, Window)>,
    isolations: Vec<(NodeId, Window)>,
    link_loss: Vec<(Option<LinkId>, Window, f64)>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Drop each control message with probability `p` during `window`,
    /// on every conversation.
    pub fn control_loss(mut self, p: f64, window: Window) -> FaultPlan {
        self.control_loss.push((Scope::All, window, p));
        self
    }

    /// Drop each control message between `a` and `b` (both directions)
    /// with probability `p` during `window`.
    pub fn control_loss_between(
        mut self,
        a: NodeId,
        b: NodeId,
        p: f64,
        window: Window,
    ) -> FaultPlan {
        self.control_loss.push((Scope::Pair(a, b), window, p));
        self
    }

    /// Drop *every* control message between `a` and `b` during `window`
    /// — a burst loss, equivalent to `control_loss_between(a, b, 1.0, w)`.
    pub fn control_burst(self, a: NodeId, b: NodeId, window: Window) -> FaultPlan {
        self.control_loss_between(a, b, 1.0, window)
    }

    /// Blackhole all control traffic between `a` and `b` during `window`
    /// (a hard partition; heals when the window closes). Unlike a burst
    /// it is counted separately, so experiments can tell partition drops
    /// from random loss.
    pub fn partition(mut self, a: NodeId, b: NodeId, window: Window) -> FaultPlan {
        self.partitions.push((a, b, window));
        self
    }

    /// Blackhole all control traffic between `node` and *everyone else*
    /// during `window`. For a node with no data ports (a controller
    /// replica), this is indistinguishable from a crash-and-restart:
    /// the process keeps its state but the world cannot reach it.
    pub fn isolate(mut self, node: NodeId, window: Window) -> FaultPlan {
        self.isolations.push((node, window));
        self
    }

    /// Deliver each control message twice with probability `p` during
    /// `window` (the duplicate takes an independent latency draw, so the
    /// copies may be reordered).
    pub fn duplicate(mut self, p: f64, window: Window) -> FaultPlan {
        self.control_dup.push((Scope::All, window, p));
        self
    }

    /// Drop each data-plane frame entering `link` with probability `p`
    /// during `window`. Pass `None` to apply to every link.
    pub fn link_loss(mut self, link: Option<LinkId>, p: f64, window: Window) -> FaultPlan {
        self.link_loss.push((link, window, p));
        self
    }

    /// Whether any rule is present at all (lets the hot path skip the
    /// scan entirely for fault-free runs).
    pub fn is_empty(&self) -> bool {
        self.control_loss.is_empty()
            && self.control_dup.is_empty()
            && self.partitions.is_empty()
            && self.isolations.is_empty()
            && self.link_loss.is_empty()
    }

    /// Whether `from` ↔ `to` is hard-partitioned at time `t`.
    pub fn is_partitioned(&self, from: NodeId, to: NodeId, t: Instant) -> bool {
        self.partitions
            .iter()
            .any(|&(a, b, w)| w.contains(t) && Scope::Pair(a, b).matches(from, to))
            || self
                .isolations
                .iter()
                .any(|&(n, w)| w.contains(t) && (n == from || n == to))
    }

    /// The control-loss probability for a message `from` → `to` at `t`
    /// (the max over matching rules; 0 if none match).
    pub fn control_loss_prob(&self, from: NodeId, to: NodeId, t: Instant) -> f64 {
        max_prob(&self.control_loss, |s| s.matches(from, to), t)
    }

    /// The duplication probability for a message `from` → `to` at `t`.
    pub fn control_dup_prob(&self, from: NodeId, to: NodeId, t: Instant) -> f64 {
        max_prob(&self.control_dup, |s| s.matches(from, to), t)
    }

    /// The loss probability for a frame entering `link` at `t`.
    pub fn link_loss_prob(&self, link: LinkId, t: Instant) -> f64 {
        max_prob(
            &self.link_loss,
            |l: &Option<LinkId>| l.map(|id| id == link).unwrap_or(true),
            t,
        )
    }
}

fn max_prob<S>(rules: &[(S, Window, f64)], matches: impl Fn(&S) -> bool, t: Instant) -> f64 {
    rules
        .iter()
        .filter(|(s, w, _)| w.contains(t) && matches(s))
        .map(|&(_, _, p)| p)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    fn ms(n: u64) -> Instant {
        Instant::ZERO + Duration::from_millis(n)
    }

    #[test]
    fn window_is_half_open() {
        let w = Window::new(ms(10), ms(20));
        assert!(!w.contains(ms(9)));
        assert!(w.contains(ms(10)));
        assert!(w.contains(ms(19)));
        assert!(!w.contains(ms(20)));
        assert!(Window::always().contains(ms(0)));
    }

    #[test]
    fn pair_scope_is_unordered() {
        let plan =
            FaultPlan::new().control_loss_between(NodeId(1), NodeId(2), 0.5, Window::always());
        assert_eq!(plan.control_loss_prob(NodeId(1), NodeId(2), ms(0)), 0.5);
        assert_eq!(plan.control_loss_prob(NodeId(2), NodeId(1), ms(0)), 0.5);
        assert_eq!(plan.control_loss_prob(NodeId(1), NodeId(3), ms(0)), 0.0);
    }

    #[test]
    fn overlapping_rules_take_max() {
        let plan = FaultPlan::new()
            .control_loss(0.1, Window::always())
            .control_loss_between(NodeId(0), NodeId(1), 0.9, Window::new(ms(5), ms(10)));
        assert_eq!(plan.control_loss_prob(NodeId(0), NodeId(1), ms(0)), 0.1);
        assert_eq!(plan.control_loss_prob(NodeId(0), NodeId(1), ms(7)), 0.9);
        assert_eq!(plan.control_loss_prob(NodeId(0), NodeId(2), ms(7)), 0.1);
    }

    #[test]
    fn partitions_heal_at_window_end() {
        let plan = FaultPlan::new().partition(NodeId(3), NodeId(4), Window::new(ms(1), ms(2)));
        assert!(!plan.is_partitioned(NodeId(3), NodeId(4), ms(0)));
        assert!(plan.is_partitioned(NodeId(4), NodeId(3), ms(1)));
        assert!(!plan.is_partitioned(NodeId(3), NodeId(4), ms(2)));
    }

    #[test]
    fn isolation_cuts_node_from_everyone() {
        let plan = FaultPlan::new().isolate(NodeId(2), Window::new(ms(1), ms(3)));
        assert!(plan.is_partitioned(NodeId(2), NodeId(0), ms(1)));
        assert!(plan.is_partitioned(NodeId(5), NodeId(2), ms(2)));
        assert!(!plan.is_partitioned(NodeId(0), NodeId(1), ms(2)));
        assert!(!plan.is_partitioned(NodeId(2), NodeId(0), ms(3)));
        assert!(!FaultPlan::new()
            .isolate(NodeId(2), Window::always())
            .is_empty());
    }

    #[test]
    fn link_loss_matches_specific_or_all() {
        let plan = FaultPlan::new()
            .link_loss(Some(LinkId(7)), 0.25, Window::always())
            .link_loss(None, 0.01, Window::always());
        assert_eq!(plan.link_loss_prob(LinkId(7), ms(0)), 0.25);
        assert_eq!(plan.link_loss_prob(LinkId(8), ms(0)), 0.01);
    }

    #[test]
    fn empty_plan_reports_empty() {
        assert!(FaultPlan::new().is_empty());
        assert!(!FaultPlan::new().duplicate(0.1, Window::always()).is_empty());
    }
}
