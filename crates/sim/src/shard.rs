//! A sharded discrete-event engine with a deterministic merge.
//!
//! [`ShardedWorld`] partitions nodes across worker threads
//! (`shard_of(node) = node_id % n_shards`) and advances simulated time in
//! **conservative lookahead windows**: the minimum link propagation delay
//! is a hard lower bound on how far in the future any cross-node event can
//! land, so every shard can safely process its local queue up to
//! `window_start + lookahead` without seeing an event from another shard
//! that belongs inside the window. Cross-shard (and, for uniformity,
//! same-shard) packet arrivals are staged in per-`(dst, src)` inboxes,
//! flushed at the window edge, and drained after a single barrier per
//! window.
//!
//! **Determinism is shard-count-independent.** Every event carries a
//! canonical key `(at, src_rank, src_seq)` — rank 0 is the build
//! schedule (start and admin link events), rank `n + 1` is node `n`, and
//! `src_seq` is a per-source emission counter. Because a node's handler
//! emissions depend only on the sequence of deliveries it observes, and
//! deliveries are replayed in canonical key order at every shard count,
//! the same seed produces byte-identical results (see [`ShardedWorld::digest`])
//! whether the run uses 1, 2, or 8 shards. The property test in
//! `zen-core/tests/shard.rs` and the unit tests below hold this invariant.
//!
//! Design notes, relative to [`crate::world::World`]:
//!
//! * **Data plane only.** There is no out-of-band control channel and no
//!   fault plan; the sharded engine exists to scale packet-level fabric
//!   experiments (E21). Control-plane scenarios stay on `World`.
//! * **Replicated link table.** Each shard owns a full replica of the
//!   link table. A direction's `busy_until` is only read and written by
//!   the shard owning the *sending* endpoint, so replicas never diverge
//!   on state that matters. Admin up/down flips are pre-seeded into every
//!   shard's queue with build-order root keys; each shard flips its own
//!   replica at the same canonical position and notifies its *local*
//!   endpoints inline.
//! * **Batched delivery.** All events at one instant are popped together;
//!   runs of packet arrivals for the same node (its canonical
//!   subsequence, timers break a run) are handed to
//!   [`ShardNode::on_packet_batch`] in one call so datapath-backed nodes
//!   can amortize classification with `Datapath::process_batch`.
//! * **Edge-of-horizon drop.** An arrival staged *during* the final
//!   window that lands exactly at the deadline is never delivered. The
//!   window loop is identical at every shard count, so the drop is too.
//! * **Merged observability.** Per-shard [`Metrics`] registries are
//!   summed by name after the run; per-shard recorder loop profiles are
//!   folded into the world's recorder. Loop-span *counts* are
//!   shard-count-independent; summed `sim_advance` is not (each shard
//!   advances its own clock) and is excluded from the digest.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::{Barrier, Mutex};

use zen_telemetry::{trace_id_for_frame, Recorder, TraceEvent};

use crate::rng::Rng;
use crate::stats::{CounterId, Metrics};
use crate::time::{transmission_time, Duration, Instant};
use crate::world::{LinkId, LinkParams, NodeId, PortNo};

/// Behavior contract for nodes driven by the sharded engine.
///
/// `Send` is required because nodes migrate onto worker threads for the
/// duration of the run. Handlers interact with the world only through
/// [`ShardCtx`], mirroring [`crate::world::Node`] minus the control
/// channel.
pub trait ShardNode: Send + 'static {
    /// Called once at simulated time zero, before any traffic.
    fn on_start(&mut self, _ctx: &mut ShardCtx<'_, '_>) {}

    /// A frame arrived on `in_port`.
    fn on_packet(&mut self, ctx: &mut ShardCtx<'_, '_>, in_port: PortNo, frame: &[u8]);

    /// A run of frames arrived at the same instant.
    ///
    /// The default loops [`ShardNode::on_packet`]. Overrides may amortize
    /// work across the batch, but **batch boundaries are an engine
    /// artifact**: implementations must be observably identical to the
    /// scalar loop for any partitioning of the same frame sequence (the
    /// contract `Datapath::process_batch` proves differentially).
    fn on_packet_batch(&mut self, ctx: &mut ShardCtx<'_, '_>, frames: &[(PortNo, Vec<u8>)]) {
        for (port, frame) in frames {
            self.on_packet(ctx, *port, frame);
        }
    }

    /// A timer set via [`ShardCtx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut ShardCtx<'_, '_>, _token: u64) {}

    /// A local link changed administrative state.
    fn on_link_status(&mut self, _ctx: &mut ShardCtx<'_, '_>, _port: PortNo, _up: bool) {}

    /// Downcast support for post-run inspection.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Canonical event key: `(at, src, seq)`. `src` 0 is the build schedule;
/// node `n` emits with rank `n + 1`, so admin flips sort before packet
/// work at the same instant regardless of sharding.
#[derive(Debug)]
struct ShardEvent {
    at: Instant,
    src: u32,
    seq: u64,
    node: NodeId,
    kind: ShardEventKind,
}

#[derive(Debug)]
enum ShardEventKind {
    Start,
    Packet { port: PortNo, frame: Vec<u8> },
    Timer { token: u64 },
    AdminLink { link: LinkId, up: bool },
}

impl ShardEventKind {
    fn name(&self) -> &'static str {
        match self {
            ShardEventKind::Start => "start",
            ShardEventKind::Packet { .. } => "packet",
            ShardEventKind::Timer { .. } => "timer",
            ShardEventKind::AdminLink { .. } => "admin_link",
        }
    }
}

impl PartialEq for ShardEvent {
    fn eq(&self, other: &ShardEvent) -> bool {
        (self.at, self.src, self.seq) == (other.at, other.src, other.seq)
    }
}

impl Eq for ShardEvent {}

impl PartialOrd for ShardEvent {
    fn partial_cmp(&self, other: &ShardEvent) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ShardEvent {
    fn cmp(&self, other: &ShardEvent) -> core::cmp::Ordering {
        (self.at, self.src, self.seq).cmp(&(other.at, other.src, other.seq))
    }
}

/// One shard's replica of a link. `busy_ab`/`busy_ba` are only touched by
/// the shard owning the sending endpoint of that direction.
#[derive(Debug, Clone)]
struct ShardLink {
    a: (NodeId, PortNo),
    b: (NodeId, PortNo),
    params: LinkParams,
    up: bool,
    busy_ab: Instant,
    busy_ba: Instant,
}

/// Pre-registered counter handles, mirroring the `World` name set that
/// applies to the data plane.
#[derive(Debug, Clone, Copy)]
struct ShardCounters {
    tx_no_link: CounterId,
    tx_frames: CounterId,
    tx_bytes: CounterId,
    drops_down: CounterId,
    drops_queue: CounterId,
    drops_in_flight: CounterId,
}

impl ShardCounters {
    fn register(metrics: &mut Metrics) -> ShardCounters {
        ShardCounters {
            tx_no_link: metrics.register_counter("sim.tx_no_link"),
            tx_frames: metrics.register_counter("sim.tx_frames"),
            tx_bytes: metrics.register_counter("sim.tx_bytes"),
            drops_down: metrics.register_counter("sim.drops_down"),
            drops_queue: metrics.register_counter("sim.drops_queue"),
            drops_in_flight: metrics.register_counter("sim.drops_in_flight"),
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_byte(h: u64, b: u8) -> u64 {
    (h ^ u64::from(b)).wrapping_mul(FNV_PRIME)
}

fn fnv_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h = fnv_byte(h, b);
    }
    h
}

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    h = fnv_u64(h, bytes.len() as u64);
    for &b in bytes {
        h = fnv_byte(h, b);
    }
    h
}

/// Shard-local mutable state reachable from handler callbacks.
struct ShardCore<'w> {
    shard_id: usize,
    n_shards: usize,
    now: Instant,
    links: Vec<ShardLink>,
    ports: &'w BTreeMap<(NodeId, PortNo), LinkId>,
    rngs: Vec<Rng>,
    emit_seq: Vec<u64>,
    heap: BinaryHeap<Reverse<ShardEvent>>,
    outboxes: Vec<Vec<ShardEvent>>,
    metrics: Metrics,
    ids: ShardCounters,
    recorder: Recorder,
    events_processed: u64,
    digests: Vec<u64>,
    digest_enabled: bool,
}

/// The world as seen from inside a [`ShardNode`] handler.
pub struct ShardCtx<'a, 'w> {
    /// The node being dispatched.
    pub self_id: NodeId,
    core: &'a mut ShardCore<'w>,
}

impl ShardCtx<'_, '_> {
    /// Current simulated time on this shard.
    pub fn now(&self) -> Instant {
        self.core.now
    }

    /// This node's private deterministic RNG (forked from the world seed
    /// by node id, so draws are identical at every shard count).
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.core.rngs[self.self_id.0 as usize]
    }

    /// This shard's metrics registry (merged into the world's after the
    /// run; counters sum by name).
    pub fn metrics(&mut self) -> &mut Metrics {
        &mut self.core.metrics
    }

    /// This shard's flight recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.core.recorder
    }

    /// Ports wired on this node, ascending.
    pub fn ports(&self) -> Vec<PortNo> {
        self.core
            .ports
            .range((self.self_id, PortNo::MIN)..=(self.self_id, PortNo::MAX))
            .map(|(&(_, port), _)| port)
            .collect()
    }

    /// Whether the link on `port` is administratively up (per this
    /// shard's replica — identical on every shard at handler time).
    pub fn port_up(&self, port: PortNo) -> bool {
        self.core
            .ports
            .get(&(self.self_id, port))
            .map(|lid| self.core.links[lid.0 as usize].up)
            .unwrap_or(false)
    }

    /// The `(node, port)` on the far side of `port`, if wired.
    pub fn peer_of(&self, port: PortNo) -> Option<(NodeId, PortNo)> {
        let lid = self.core.ports.get(&(self.self_id, port))?;
        let link = &self.core.links[lid.0 as usize];
        if link.a == (self.self_id, port) {
            Some(link.b)
        } else {
            Some(link.a)
        }
    }

    /// Schedule `on_timer(token)` for this node after `delay`.
    pub fn set_timer(&mut self, delay: Duration, token: u64) {
        let core = &mut *self.core;
        let idx = self.self_id.0 as usize;
        let seq = core.emit_seq[idx];
        core.emit_seq[idx] += 1;
        core.heap.push(Reverse(ShardEvent {
            at: core.now + delay,
            src: self.self_id.0 + 1,
            seq,
            node: self.self_id,
            kind: ShardEventKind::Timer { token },
        }));
    }

    /// Transmit `frame` out of `port`, with the same serialization,
    /// queueing, and drop semantics as `World`'s links (minus fault
    /// injection). The arrival is staged through the window inboxes even
    /// when the peer lives on this shard, so one shard behaves exactly
    /// like many.
    pub fn transmit(&mut self, port: PortNo, frame: &[u8]) {
        let core = &mut *self.core;
        let ids = core.ids;
        let Some(&lid) = core.ports.get(&(self.self_id, port)) else {
            core.metrics.incr(ids.tx_no_link);
            return;
        };
        let link = &mut core.links[lid.0 as usize];
        let (dst, busy) = if link.a == (self.self_id, port) {
            (link.b, &mut link.busy_ab)
        } else {
            (link.a, &mut link.busy_ba)
        };
        if !link.up {
            core.metrics.incr(ids.drops_down);
            return;
        }
        let arrival = if link.params.bandwidth_bps == 0 {
            core.now + link.params.latency
        } else {
            let backlog = busy.duration_since(core.now);
            let backlog_bytes = (backlog.as_nanos() as u128 * link.params.bandwidth_bps as u128
                / 8
                / 1_000_000_000) as usize;
            if backlog_bytes + frame.len() > link.params.queue_bytes {
                core.metrics.incr(ids.drops_queue);
                return;
            }
            let tx_start = (*busy).max(core.now);
            let tx_end = tx_start + transmission_time(frame.len(), link.params.bandwidth_bps);
            *busy = tx_end;
            tx_end + link.params.latency
        };
        core.metrics.incr(ids.tx_frames);
        core.metrics.add(ids.tx_bytes, frame.len() as u64);
        if core.recorder.is_enabled() {
            if let Some(tid) = trace_id_for_frame(frame) {
                core.recorder.record(
                    core.now.as_nanos(),
                    tid,
                    TraceEvent::LinkTx {
                        node: self.self_id.0,
                        port,
                    },
                );
            }
        }
        let idx = self.self_id.0 as usize;
        let seq = core.emit_seq[idx];
        core.emit_seq[idx] += 1;
        let dst_shard = dst.0 .0 as usize % core.n_shards;
        core.outboxes[dst_shard].push(ShardEvent {
            at: arrival,
            src: self.self_id.0 + 1,
            seq,
            node: dst.0,
            kind: ShardEventKind::Packet {
                port: dst.1,
                frame: frame.to_vec(),
            },
        });
    }
}

/// Cross-shard plumbing shared by every worker for one run.
struct SharedRun {
    barrier: Barrier,
    /// `inboxes[dst][src]`: events staged by shard `src` for shard `dst`.
    inboxes: Vec<Vec<Mutex<Vec<ShardEvent>>>>,
}

fn locked<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// One worker: the nodes it owns plus its shard-local core.
struct ShardWorker<'w> {
    nodes: Vec<Option<Box<dyn ShardNode>>>,
    core: ShardCore<'w>,
}

impl ShardWorker<'_> {
    fn owns(&self, node: NodeId) -> bool {
        node.0 as usize % self.core.n_shards == self.core.shard_id
    }

    fn run(&mut self, shared: &SharedRun, deadline: Instant, lookahead: Duration) {
        let mut window_start = Instant::ZERO;
        loop {
            let window_end = (window_start + lookahead).min(deadline);
            let last = window_end == deadline;
            self.run_window(window_end, last);
            for (dst, buffer) in self.core.outboxes.iter_mut().enumerate() {
                if buffer.is_empty() {
                    continue;
                }
                locked(&shared.inboxes[dst][self.core.shard_id]).append(buffer);
            }
            shared.barrier.wait();
            for src in 0..self.core.n_shards {
                let mut slot = locked(&shared.inboxes[self.core.shard_id][src]);
                for event in slot.drain(..) {
                    self.core.heap.push(Reverse(event));
                }
            }
            if last {
                break;
            }
            window_start = window_end;
        }
        self.core.now = deadline;
    }

    /// Drain the local heap up to the window edge, one instant at a time.
    fn run_window(&mut self, window_end: Instant, last: bool) {
        loop {
            let t = match self.core.heap.peek() {
                Some(Reverse(head)) if (last && head.at <= window_end) || head.at < window_end => {
                    head.at
                }
                _ => break,
            };
            let mut events = Vec::new();
            while matches!(self.core.heap.peek(), Some(Reverse(head)) if head.at == t) {
                events.push(self.core.heap.pop().expect("peeked").0);
            }
            self.dispatch_instant(t, events);
        }
    }

    /// Deliver every event at one instant. Events are already in canonical
    /// `(src, seq)` order; runs of packet arrivals in a node's subsequence
    /// (timers break a run) are delivered as one batch. Cross-node
    /// interleaving at a single instant carries no information — emission
    /// keys are per-source — so grouping per node is order-safe.
    fn dispatch_instant(&mut self, t: Instant, mut events: Vec<ShardEvent>) {
        let advance = t.duration_since(self.core.now);
        let mut advance_nanos = advance.as_nanos();
        self.core.now = t;
        let rec_on = self.core.recorder.is_enabled();
        let wall_on = rec_on && self.core.recorder.wall_profile_enabled();
        let mut consumed = vec![false; events.len()];
        for i in 0..events.len() {
            if consumed[i] {
                continue;
            }
            let kind = events[i].kind.name();
            let started = wall_on.then(std::time::Instant::now);
            // How many globally-counted events this arm dispatched. Admin
            // flips are replicated to every shard, so only shard 0 accounts
            // them — keeping event totals and loop-span counts
            // shard-count-independent.
            let mut dispatched = 1u64;
            match &events[i].kind {
                ShardEventKind::AdminLink { link, up } => {
                    let (link, up) = (*link, *up);
                    self.apply_admin(link, up);
                    if self.core.shard_id != 0 {
                        dispatched = 0;
                    }
                }
                ShardEventKind::Start => {
                    let node = events[i].node;
                    if self.core.digest_enabled {
                        let idx = node.0 as usize;
                        let h = fnv_u64(self.core.digests[idx], t.as_nanos());
                        self.core.digests[idx] = fnv_byte(h, 1);
                    }
                    self.deliver(node, |n, ctx| n.on_start(ctx));
                }
                ShardEventKind::Timer { token } => {
                    let (node, token) = (events[i].node, *token);
                    if self.core.digest_enabled {
                        let idx = node.0 as usize;
                        let h = fnv_u64(self.core.digests[idx], t.as_nanos());
                        let h = fnv_byte(h, 3);
                        self.core.digests[idx] = fnv_u64(h, token);
                    }
                    self.deliver(node, |n, ctx| n.on_timer(ctx, token));
                }
                ShardEventKind::Packet { .. } => {
                    let node = events[i].node;
                    let mut batch: Vec<(PortNo, Vec<u8>)> = Vec::new();
                    for (j, event) in events.iter_mut().enumerate().skip(i) {
                        if consumed[j] || event.node != node {
                            continue;
                        }
                        let ShardEventKind::Packet { port, frame } = &mut event.kind else {
                            // A timer (or start) in this node's canonical
                            // subsequence ends the batch.
                            break;
                        };
                        consumed[j] = true;
                        if j > i {
                            dispatched += 1;
                        }
                        let up = self
                            .core
                            .ports
                            .get(&(node, *port))
                            .map(|lid| self.core.links[lid.0 as usize].up)
                            .unwrap_or(false);
                        if !up {
                            let id = self.core.ids.drops_in_flight;
                            self.core.metrics.incr(id);
                            continue;
                        }
                        if self.core.digest_enabled {
                            let idx = node.0 as usize;
                            let h = fnv_u64(self.core.digests[idx], t.as_nanos());
                            let h = fnv_byte(h, 2);
                            let h = fnv_u64(h, u64::from(*port));
                            self.core.digests[idx] = fnv_bytes(h, frame);
                        }
                        batch.push((*port, std::mem::take(frame)));
                    }
                    if !batch.is_empty() {
                        self.deliver(node, |n, ctx| n.on_packet_batch(ctx, &batch));
                    }
                }
            }
            self.core.events_processed += dispatched;
            if rec_on && dispatched > 0 {
                let wall = started.map(|s| s.elapsed().as_nanos() as u64).unwrap_or(0);
                self.core.recorder.note_loop(kind, wall, advance_nanos);
                for _ in 1..dispatched {
                    self.core.recorder.note_loop(kind, 0, 0);
                }
                advance_nanos = 0;
            }
        }
    }

    /// Flip this shard's link replica and notify local endpoints inline
    /// (`a` first, then `b` — the same relative order every shard uses).
    fn apply_admin(&mut self, link: LinkId, up: bool) {
        let l = &mut self.core.links[link.0 as usize];
        l.up = up;
        let endpoints = [l.a, l.b];
        for (node, port) in endpoints {
            if !self.owns(node) {
                continue;
            }
            if self.core.digest_enabled {
                let idx = node.0 as usize;
                let h = fnv_u64(self.core.digests[idx], self.core.now.as_nanos());
                let h = fnv_byte(h, 4);
                let h = fnv_u64(h, u64::from(port));
                self.core.digests[idx] = fnv_byte(h, up as u8);
            }
            self.deliver(node, |n, ctx| n.on_link_status(ctx, port, up));
        }
    }

    fn deliver<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut dyn ShardNode, &mut ShardCtx<'_, '_>),
    {
        let idx = node.0 as usize;
        let mut boxed = self.nodes[idx]
            .take()
            .expect("event for a node this shard owns");
        let mut ctx = ShardCtx {
            self_id: node,
            core: &mut self.core,
        };
        f(&mut *boxed, &mut ctx);
        self.nodes[idx] = Some(boxed);
    }
}

/// A data-plane simulation partitioned across worker threads, producing
/// shard-count-independent results. See the module docs for the design.
pub struct ShardedWorld {
    seed: u64,
    nodes: Vec<Option<Box<dyn ShardNode>>>,
    next_port: Vec<PortNo>,
    links: Vec<ShardLink>,
    ports: BTreeMap<(NodeId, PortNo), LinkId>,
    admin: Vec<(Instant, LinkId, bool)>,
    recorder: Recorder,
    digest_enabled: bool,
    ran: bool,
    metrics: Metrics,
    events_processed: u64,
    digest: Option<u64>,
}

impl ShardedWorld {
    /// Create an empty sharded world with the given RNG seed.
    pub fn new(seed: u64) -> ShardedWorld {
        ShardedWorld {
            seed,
            nodes: Vec::new(),
            next_port: Vec::new(),
            links: Vec::new(),
            ports: BTreeMap::new(),
            admin: Vec::new(),
            recorder: Recorder::new(),
            digest_enabled: false,
            ran: false,
            metrics: Metrics::new(),
            events_processed: 0,
            digest: None,
        }
    }

    /// Add a node; it receives `on_start` at simulated time zero.
    pub fn add_node(&mut self, node: Box<dyn ShardNode>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Some(node));
        self.next_port.push(1);
        id
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Connect two nodes with a fresh port on each; returns
    /// `(link, port_on_a, port_on_b)`. Link latency must be positive — it
    /// is the engine's lookahead horizon.
    pub fn connect(
        &mut self,
        a: NodeId,
        b: NodeId,
        params: LinkParams,
    ) -> (LinkId, PortNo, PortNo) {
        assert!(
            params.latency > Duration::ZERO,
            "sharded links need positive latency (the lookahead horizon)"
        );
        let pa = self.next_port[a.0 as usize];
        self.next_port[a.0 as usize] += 1;
        let pb = self.next_port[b.0 as usize];
        self.next_port[b.0 as usize] += 1;
        let id = LinkId(self.links.len() as u32);
        self.links.push(ShardLink {
            a: (a, pa),
            b: (b, pb),
            params,
            up: true,
            busy_ab: Instant::ZERO,
            busy_ba: Instant::ZERO,
        });
        self.ports.insert((a, pa), id);
        self.ports.insert((b, pb), id);
        (id, pa, pb)
    }

    /// Schedule an administrative up/down flip. Local endpoints receive
    /// `on_link_status` when it takes effect.
    pub fn schedule_link_state(&mut self, link: LinkId, up: bool, at: Instant) {
        self.admin.push((at, link, up));
    }

    /// The world's flight recorder handle. Enabling it before the run
    /// enables every per-shard recorder; loop profiles merge back in.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Record a run digest: a per-node FNV-1a fold of every delivery,
    /// combined with the merged counters. Off by default (benchmarks);
    /// the determinism suites turn it on and compare across shard counts.
    pub fn set_digest_enabled(&mut self, on: bool) {
        self.digest_enabled = on;
    }

    /// Run the simulation to `deadline` across `n_shards` worker threads.
    /// One-shot: a `ShardedWorld` runs exactly once.
    pub fn run_until(&mut self, deadline: Instant, n_shards: usize) {
        assert!(!self.ran, "a ShardedWorld runs exactly once");
        self.ran = true;
        let n_shards = n_shards.clamp(1, self.nodes.len().max(1));
        // The conservative horizon: no cross-node event can land closer
        // than the fastest link's propagation delay.
        let lookahead = self
            .links
            .iter()
            .map(|l| l.params.latency)
            .min()
            .unwrap_or_else(|| deadline.duration_since(Instant::ZERO))
            .max(Duration::from_nanos(1));

        let ports = std::mem::take(&mut self.ports);
        let mut all_nodes = std::mem::take(&mut self.nodes);
        let n_nodes = all_nodes.len();

        // Per-node RNG streams, forked in id order so every shard count
        // sees the same draws. Each shard computes the full table (cheap)
        // and uses only the nodes it owns.
        let rec_enabled = self.recorder.is_enabled();
        let wall_profile = self.recorder.wall_profile_enabled();

        let mut workers: Vec<ShardWorker<'_>> = (0..n_shards)
            .map(|shard_id| {
                let mut metrics = Metrics::new();
                let ids = ShardCounters::register(&mut metrics);
                let recorder = Recorder::new();
                recorder.set_enabled(rec_enabled);
                recorder.set_wall_profile(wall_profile);
                let mut base = Rng::new(self.seed);
                let rngs = (0..n_nodes).map(|i| base.fork(i as u64)).collect();
                ShardWorker {
                    nodes: (0..n_nodes).map(|_| None).collect(),
                    core: ShardCore {
                        shard_id,
                        n_shards,
                        now: Instant::ZERO,
                        links: self.links.clone(),
                        ports: &ports,
                        rngs,
                        emit_seq: vec![0; n_nodes],
                        heap: BinaryHeap::new(),
                        outboxes: (0..n_shards).map(|_| Vec::new()).collect(),
                        metrics,
                        ids,
                        recorder,
                        events_processed: 0,
                        digests: vec![FNV_OFFSET; n_nodes],
                        digest_enabled: self.digest_enabled,
                    },
                }
            })
            .collect();

        // Distribute nodes and seed the root-sourced schedule: starts to
        // their owners, admin flips to every shard (each flips its own
        // link replica). Root seqs follow build order.
        for (i, slot) in all_nodes.iter_mut().enumerate() {
            let shard = i % n_shards;
            workers[shard].nodes[i] = slot.take();
            workers[shard].core.heap.push(Reverse(ShardEvent {
                at: Instant::ZERO,
                src: 0,
                seq: i as u64,
                node: NodeId(i as u32),
                kind: ShardEventKind::Start,
            }));
        }
        for (j, &(at, link, up)) in self.admin.iter().enumerate() {
            for worker in workers.iter_mut() {
                worker.core.heap.push(Reverse(ShardEvent {
                    at,
                    src: 0,
                    seq: (n_nodes + j) as u64,
                    node: NodeId(0),
                    kind: ShardEventKind::AdminLink { link, up },
                }));
            }
        }

        let shared = SharedRun {
            barrier: Barrier::new(n_shards),
            inboxes: (0..n_shards)
                .map(|_| (0..n_shards).map(|_| Mutex::new(Vec::new())).collect())
                .collect(),
        };
        std::thread::scope(|scope| {
            for worker in workers.iter_mut() {
                let shared = &shared;
                scope.spawn(move || worker.run(shared, deadline, lookahead));
            }
        });

        // Deterministic merge, in shard order.
        for worker in workers.iter_mut() {
            self.metrics.merge_from(&worker.core.metrics);
            self.recorder.merge_loop_profile(&worker.core.recorder);
            self.events_processed += worker.core.events_processed;
            for (i, slot) in worker.nodes.iter_mut().enumerate() {
                if slot.is_some() {
                    all_nodes[i] = slot.take();
                }
            }
        }
        if self.digest_enabled {
            let mut h = FNV_OFFSET;
            for i in 0..n_nodes {
                h = fnv_u64(h, workers[i % n_shards].core.digests[i]);
            }
            for (name, value) in self.metrics.counters() {
                h = fnv_bytes(h, name.as_bytes());
                h = fnv_u64(h, value);
            }
            self.digest = Some(h);
        }
        drop(workers);
        self.nodes = all_nodes;
        self.ports = ports;
    }

    /// Merged metrics (counters summed by name across shards).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Total events dispatched across all shards.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The run digest, when enabled: identical for identical seeds and
    /// topologies at any shard count.
    pub fn digest(&self) -> Option<u64> {
        self.digest
    }

    /// Downcast a node to its concrete type.
    ///
    /// Panics if the node does not exist or has a different type.
    pub fn node_as<T: ShardNode>(&self, id: NodeId) -> &T {
        self.nodes[id.0 as usize]
            .as_ref()
            .expect("node is being dispatched")
            .as_any()
            .downcast_ref::<T>()
            .expect("node type mismatch")
    }

    /// Downcast a node to its concrete type, mutably.
    pub fn node_as_mut<T: ShardNode>(&mut self, id: NodeId) -> &mut T {
        self.nodes[id.0 as usize]
            .as_mut()
            .expect("node is being dispatched")
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("node type mismatch")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A chatty test node: every period it bursts frames on all ports;
    /// received frames are counted and probabilistically echoed back
    /// (bounded by frame length, so chains terminate).
    struct Chatter {
        period: Duration,
        rounds: u64,
        burst: u64,
        sent: u64,
        rx: u64,
        batches: Vec<usize>,
    }

    impl Chatter {
        fn new(period: Duration, rounds: u64, burst: u64) -> Chatter {
            Chatter {
                period,
                rounds,
                burst,
                sent: 0,
                rx: 0,
                batches: Vec::new(),
            }
        }
    }

    impl ShardNode for Chatter {
        fn on_start(&mut self, ctx: &mut ShardCtx<'_, '_>) {
            ctx.set_timer(self.period, 0);
        }

        fn on_timer(&mut self, ctx: &mut ShardCtx<'_, '_>, round: u64) {
            for port in ctx.ports() {
                for k in 0..self.burst {
                    let tag = ctx.rng().next_u64();
                    let frame = [ctx.self_id.0 as u8, port as u8, k as u8, (tag & 0xff) as u8];
                    ctx.transmit(port, &frame);
                    self.sent += 1;
                }
            }
            if round + 1 < self.rounds {
                let period = self.period;
                ctx.set_timer(period, round + 1);
            }
        }

        fn on_packet(&mut self, ctx: &mut ShardCtx<'_, '_>, in_port: PortNo, frame: &[u8]) {
            self.rx += 1;
            if frame.len() < 8 && ctx.rng().gen_bool(0.4) {
                let mut echo = frame.to_vec();
                echo.push(ctx.self_id.0 as u8);
                ctx.transmit(in_port, &echo);
                self.sent += 1;
            }
        }

        fn on_packet_batch(&mut self, ctx: &mut ShardCtx<'_, '_>, frames: &[(PortNo, Vec<u8>)]) {
            self.batches.push(frames.len());
            for (port, frame) in frames {
                self.on_packet(ctx, *port, frame);
            }
        }

        fn as_any(&self) -> &dyn Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// A ring of chatters with mixed link parameters and a mid-run link
    /// flap; returns the full observable outcome of the run.
    fn ring_run(n_shards: usize) -> (u64, Vec<(String, u64)>, u64, Vec<u64>) {
        let mut w = ShardedWorld::new(0x5EED);
        let n = 6u32;
        let ids: Vec<NodeId> = (0..n)
            .map(|_| w.add_node(Box::new(Chatter::new(Duration::from_micros(50), 8, 3))))
            .collect();
        let mut flap = None;
        for i in 0..n {
            let params = if i % 2 == 0 {
                LinkParams::new(Duration::from_micros(10), 1_000_000_000, 4096)
            } else {
                LinkParams::new(Duration::from_micros(25), 0, 0)
            };
            let (link, _, _) = w.connect(ids[i as usize], ids[((i + 1) % n) as usize], params);
            if i == 2 {
                flap = Some(link);
            }
        }
        let flap = flap.unwrap();
        w.schedule_link_state(flap, false, Instant::from_micros(120));
        w.schedule_link_state(flap, true, Instant::from_micros(260));
        w.set_digest_enabled(true);
        w.recorder().set_enabled(true);
        w.run_until(Instant::from_millis(2), n_shards);
        let counters = w
            .metrics()
            .counters()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        let rx: Vec<u64> = ids.iter().map(|&id| w.node_as::<Chatter>(id).rx).collect();
        (w.digest().unwrap(), counters, w.events_processed(), rx)
    }

    #[test]
    fn shard_count_does_not_change_the_run() {
        let one = ring_run(1);
        let two = ring_run(2);
        let four = ring_run(4);
        assert_eq!(one, two);
        assert_eq!(one, four);
        // The run must actually exercise drops and traffic to mean much.
        let drops: u64 = one
            .1
            .iter()
            .filter(|(k, _)| k.starts_with("sim.drops"))
            .map(|(_, v)| v)
            .sum();
        assert!(drops > 0, "flap produced no drops: {:?}", one.1);
        assert!(one.3.iter().sum::<u64>() > 100, "too little traffic");
    }

    #[test]
    fn instant_links_form_multi_frame_batches() {
        let mut w = ShardedWorld::new(7);
        let a = w.add_node(Box::new(Chatter::new(Duration::from_micros(10), 4, 16)));
        let b = w.add_node(Box::new(Chatter::new(Duration::from_secs(10), 1, 0)));
        w.connect(a, b, LinkParams::instant(Duration::from_micros(5)));
        w.run_until(Instant::from_millis(1), 2);
        let peer = w.node_as::<Chatter>(b);
        assert!(
            peer.batches.iter().any(|&len| len > 1),
            "expected batched delivery, got {:?}",
            peer.batches
        );
        assert!(peer.rx >= 64, "all burst frames (plus echoes) arrived");
    }

    #[test]
    fn loop_span_counts_are_shard_count_independent() {
        let profile = |shards: usize| {
            let mut w = ShardedWorld::new(11);
            let a = w.add_node(Box::new(Chatter::new(Duration::from_micros(20), 5, 2)));
            let b = w.add_node(Box::new(Chatter::new(Duration::from_micros(30), 5, 2)));
            w.connect(a, b, LinkParams::default());
            w.recorder().set_enabled(true);
            w.run_until(Instant::from_millis(1), shards);
            w.recorder()
                .loop_profile()
                .into_iter()
                .map(|(k, s)| (k, s.count))
                .collect::<Vec<_>>()
        };
        assert_eq!(profile(1), profile(2));
    }

    #[test]
    #[should_panic(expected = "runs exactly once")]
    fn sharded_world_is_one_shot() {
        let mut w = ShardedWorld::new(1);
        let a = w.add_node(Box::new(Chatter::new(Duration::from_micros(10), 1, 1)));
        let b = w.add_node(Box::new(Chatter::new(Duration::from_micros(10), 1, 1)));
        w.connect(a, b, LinkParams::default());
        w.run_until(Instant::from_micros(100), 1);
        w.run_until(Instant::from_micros(200), 1);
    }

    #[test]
    #[should_panic(expected = "positive latency")]
    fn zero_latency_links_are_rejected() {
        let mut w = ShardedWorld::new(1);
        let a = w.add_node(Box::new(Chatter::new(Duration::from_micros(10), 1, 1)));
        let b = w.add_node(Box::new(Chatter::new(Duration::from_micros(10), 1, 1)));
        w.connect(a, b, LinkParams::new(Duration::ZERO, 0, 0));
    }
}
