//! Simulated time: nanosecond-resolution instants and durations.
//!
//! The simulator never consults the wall clock; all time flows from the
//! event queue. `Instant` counts nanoseconds since the start of the
//! simulation.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Instant {
    nanos: u64,
}

impl Instant {
    /// The simulation epoch (t = 0).
    pub const ZERO: Instant = Instant { nanos: 0 };

    /// Construct from nanoseconds since the epoch.
    pub const fn from_nanos(nanos: u64) -> Instant {
        Instant { nanos }
    }

    /// Construct from microseconds since the epoch.
    pub const fn from_micros(micros: u64) -> Instant {
        Instant {
            nanos: micros * 1_000,
        }
    }

    /// Construct from milliseconds since the epoch.
    pub const fn from_millis(millis: u64) -> Instant {
        Instant {
            nanos: millis * 1_000_000,
        }
    }

    /// Construct from seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Instant {
        Instant {
            nanos: secs * 1_000_000_000,
        }
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(&self) -> u64 {
        self.nanos
    }

    /// Whole microseconds since the epoch.
    pub const fn as_micros(&self) -> u64 {
        self.nanos / 1_000
    }

    /// Whole milliseconds since the epoch.
    pub const fn as_millis(&self) -> u64 {
        self.nanos / 1_000_000
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.nanos as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, saturating to zero if
    /// `earlier` is in the future.
    pub fn duration_since(&self, earlier: Instant) -> Duration {
        Duration::from_nanos(self.nanos.saturating_sub(earlier.nanos))
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;

    fn add(self, rhs: Duration) -> Instant {
        Instant {
            nanos: self.nanos + rhs.nanos,
        }
    }
}

impl AddAssign<Duration> for Instant {
    fn add_assign(&mut self, rhs: Duration) {
        self.nanos += rhs.nanos;
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;

    fn sub(self, rhs: Instant) -> Duration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration {
    nanos: u64,
}

impl Duration {
    /// The zero duration.
    pub const ZERO: Duration = Duration { nanos: 0 };

    /// Construct from nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Duration {
        Duration { nanos }
    }

    /// Construct from microseconds.
    pub const fn from_micros(micros: u64) -> Duration {
        Duration {
            nanos: micros * 1_000,
        }
    }

    /// Construct from milliseconds.
    pub const fn from_millis(millis: u64) -> Duration {
        Duration {
            nanos: millis * 1_000_000,
        }
    }

    /// Construct from seconds.
    pub const fn from_secs(secs: u64) -> Duration {
        Duration {
            nanos: secs * 1_000_000_000,
        }
    }

    /// Construct from a float number of seconds (saturating at zero).
    pub fn from_secs_f64(secs: f64) -> Duration {
        Duration {
            nanos: (secs.max(0.0) * 1e9) as u64,
        }
    }

    /// Nanoseconds in this duration.
    pub const fn as_nanos(&self) -> u64 {
        self.nanos
    }

    /// Whole microseconds.
    pub const fn as_micros(&self) -> u64 {
        self.nanos / 1_000
    }

    /// Whole milliseconds.
    pub const fn as_millis(&self) -> u64 {
        self.nanos / 1_000_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.nanos as f64 / 1e9
    }

    /// Multiply by an integer factor.
    pub const fn mul(self, factor: u64) -> Duration {
        Duration {
            nanos: self.nanos * factor,
        }
    }

    /// Divide by an integer divisor.
    pub const fn div(self, divisor: u64) -> Duration {
        Duration {
            nanos: self.nanos / divisor,
        }
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;

    fn add(self, rhs: Duration) -> Duration {
        Duration {
            nanos: self.nanos + rhs.nanos,
        }
    }
}

impl AddAssign<Duration> for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.nanos += rhs.nanos;
    }
}

impl Sub<Duration> for Duration {
    type Output = Duration;

    fn sub(self, rhs: Duration) -> Duration {
        Duration {
            nanos: self.nanos.saturating_sub(rhs.nanos),
        }
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.nanos >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.nanos >= 1_000_000 {
            write!(f, "{:.3}ms", self.nanos as f64 / 1e6)
        } else if self.nanos >= 1_000 {
            write!(f, "{:.3}us", self.nanos as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.nanos)
        }
    }
}

/// The time to serialize `bytes` onto a link of `bits_per_sec`, rounded up
/// to the next nanosecond.
pub fn transmission_time(bytes: usize, bits_per_sec: u64) -> Duration {
    if bits_per_sec == 0 {
        return Duration::ZERO;
    }
    let bits = bytes as u128 * 8;
    let nanos = (bits * 1_000_000_000).div_ceil(bits_per_sec as u128);
    Duration::from_nanos(nanos as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let t = Instant::from_millis(1500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!(t.as_millis(), 1500);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = Instant::from_secs(1) + Duration::from_millis(200);
        assert_eq!(t.as_millis(), 1200);
        assert_eq!(
            (t - Instant::from_secs(1)).as_millis(),
            Duration::from_millis(200).as_millis()
        );
        // Saturating subtraction.
        assert_eq!(
            Instant::from_secs(1) - Instant::from_secs(2),
            Duration::ZERO
        );
    }

    #[test]
    fn duration_scaling() {
        let d = Duration::from_micros(10);
        assert_eq!(d.mul(3).as_micros(), 30);
        assert_eq!(d.div(2).as_micros(), 5);
    }

    #[test]
    fn transmission_times() {
        // 1500 bytes at 1 Gb/s = 12 microseconds.
        assert_eq!(
            transmission_time(1500, 1_000_000_000),
            Duration::from_micros(12)
        );
        // 1 byte at 1 Gb/s = 8 ns.
        assert_eq!(transmission_time(1, 1_000_000_000), Duration::from_nanos(8));
        // Rounded up.
        assert_eq!(transmission_time(1, 3_000_000_000), Duration::from_nanos(3));
        // Zero rate means instantaneous (infinite-capacity) links.
        assert_eq!(transmission_time(1500, 0), Duration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Duration::from_nanos(5).to_string(), "5ns");
        assert_eq!(Duration::from_micros(5).to_string(), "5.000us");
        assert_eq!(Duration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(Duration::from_secs(5).to_string(), "5.000s");
    }
}
