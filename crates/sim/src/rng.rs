//! A small, fully deterministic pseudo-random number generator.
//!
//! The simulator must replay bit-for-bit from a seed, independently of any
//! external crate's algorithm choices, so it carries its own generator:
//! `xoshiro256**` seeded through SplitMix64 (the reference initialization).

/// A seeded `xoshiro256**` generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: [u64; 4],
}

impl Rng {
    /// Create a generator from a seed. Any seed (including zero) is valid.
    pub fn new(seed: u64) -> Rng {
        // SplitMix64 expansion, per Vigna's reference implementation.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Rng {
            state: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// The next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `[0, bound)` via Lemire's multiply-shift
    /// rejection method. Returns 0 when `bound` is 0.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform `usize` in `[0, bound)`.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// A uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli trial with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// An exponentially distributed float with the given mean.
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        // Inverse-CDF; (1 - f) avoids ln(0).
        -mean * (1.0 - self.gen_f64()).ln()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Choose a uniformly random element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_index(slice.len())])
        }
    }

    /// Fork a statistically independent generator (e.g. one per node),
    /// keyed by a stream id so forks are reproducible and distinct.
    pub fn fork(&mut self, stream: u64) -> Rng {
        Rng::new(self.next_u64() ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut rng = Rng::new(0);
        let values: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(values.iter().any(|&v| v != 0));
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut rng = Rng::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..50 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
        assert_eq!(rng.gen_range(0), 0);
    }

    #[test]
    fn gen_range_covers_values() {
        let mut rng = Rng::new(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_index(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = Rng::new(11);
        for _ in 0..1000 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_exp_mean_roughly_correct() {
        let mut rng = Rng::new(5);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen_exp(3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean was {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::new(9);
        let mut data: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut data);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // Overwhelmingly likely to have moved something.
        assert_ne!(data, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn forks_are_independent_and_reproducible() {
        let mut parent1 = Rng::new(1);
        let mut parent2 = Rng::new(1);
        let mut fork_a = parent1.fork(10);
        let mut fork_a2 = parent2.fork(10);
        assert_eq!(fork_a.next_u64(), fork_a2.next_u64());

        let mut parent3 = Rng::new(1);
        let mut fork_b = parent3.fork(11);
        assert_ne!(Rng::new(1).fork(10).next_u64(), fork_b.next_u64());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = Rng::new(1);
        let empty: &[u8] = &[];
        assert!(rng.choose(empty).is_none());
        assert_eq!(rng.choose(&[42]), Some(&42));
    }
}
