//! A simulated IPv4 end host.
//!
//! Hosts terminate the network: they resolve next hops with real ARP,
//! answer ICMP echo, and run configurable traffic workloads (ping probes
//! and constant-bit-rate UDP flows) whose datagrams carry sequence numbers
//! and send timestamps, so receivers measure one-way latency and loss
//! without any out-of-band channel.
//!
//! A host has exactly one network port (port 1).

use std::any::Any;
use std::collections::BTreeMap;

use zen_telemetry::{probe_trace_id, TraceEvent, PROBE_MAGIC};
use zen_wire::builder::PacketBuilder;
use zen_wire::ethernet::{EtherType, Frame};
use zen_wire::{arp, icmpv4, ipv4, udp};
use zen_wire::{EthernetAddress, Ipv4Address};

use crate::stats::{Histogram, HistogramId};
use crate::time::{Duration, Instant};
use crate::world::{Context, Node, PortNo};

/// The single port a host owns.
pub const HOST_PORT: PortNo = 1;

/// Timer token for gratuitous-ARP re-announcements.
const ANNOUNCE_TOKEN: u64 = u64::MAX;

/// A traffic workload a host can run.
#[derive(Debug, Clone)]
pub enum Workload {
    /// ICMP echo probes: `count` requests to `dst`, one every `interval`,
    /// starting at `start`.
    Ping {
        /// Destination IP.
        dst: Ipv4Address,
        /// Number of requests.
        count: u64,
        /// Inter-request gap.
        interval: Duration,
        /// First request time.
        start: Instant,
    },
    /// Constant-bit-rate UDP: `count` datagrams of `size` payload bytes to
    /// `dst:dst_port`, one every `interval`, starting at `start`.
    Udp {
        /// Destination IP.
        dst: Ipv4Address,
        /// Destination UDP port.
        dst_port: u16,
        /// Payload size in bytes (min 20 for the probe header).
        size: usize,
        /// Number of datagrams.
        count: u64,
        /// Inter-datagram gap.
        interval: Duration,
        /// First datagram time.
        start: Instant,
    },
}

/// Measured host statistics, exposed after a run.
#[derive(Debug, Default)]
pub struct HostStats {
    /// Frames received (all kinds).
    pub rx_frames: u64,
    /// UDP probe datagrams received.
    pub udp_rx: u64,
    /// UDP probe payload bytes received.
    pub udp_rx_bytes: u64,
    /// One-way latency samples (seconds) from UDP probe timestamps.
    pub udp_latency: Histogram,
    /// Highest sequence number received per source IP.
    pub udp_max_seq: BTreeMap<Ipv4Address, u64>,
    /// Distinct probe datagrams received per source IP.
    pub udp_rx_per_src: BTreeMap<Ipv4Address, u64>,
    /// Ping RTT samples (seconds).
    pub ping_rtts: Histogram,
    /// Echo requests answered.
    pub echo_answered: u64,
    /// ARP requests answered.
    pub arp_answered: u64,
    /// UDP probe datagrams sent.
    pub udp_tx: u64,
    /// Echo requests sent.
    pub ping_tx: u64,
}

/// A simulated IPv4 host. See the module docs.
pub struct Host {
    mac: EthernetAddress,
    ip: Ipv4Address,
    gratuitous_arp: bool,
    arp_cache: BTreeMap<Ipv4Address, EthernetAddress>,
    /// IP packets waiting for ARP resolution, keyed by next-hop IP.
    pending: BTreeMap<Ipv4Address, Vec<Vec<u8>>>,
    workloads: Vec<WorkloadState>,
    ping_sent_at: BTreeMap<(u16, u16), Instant>,
    next_ping_ident: u16,
    /// Typed handle for the shared `host.udp_latency_secs` histogram,
    /// registered lazily so the receive path never does a string lookup.
    latency_hid: Option<HistogramId>,
    /// Measured statistics.
    pub stats: HostStats,
}

#[derive(Debug)]
struct WorkloadState {
    spec: Workload,
    sent: u64,
    seq: u64,
}

impl Host {
    /// Create a host with the given addresses.
    pub fn new(mac: EthernetAddress, ip: Ipv4Address) -> Host {
        Host {
            mac,
            ip,
            gratuitous_arp: false,
            arp_cache: BTreeMap::new(),
            pending: BTreeMap::new(),
            workloads: Vec::new(),
            ping_sent_at: BTreeMap::new(),
            next_ping_ident: 1,
            latency_hid: None,
            stats: HostStats::default(),
        }
    }

    /// Announce the host's address with gratuitous ARPs at start and
    /// shortly after (250 ms and 1 s) — lets learning switches and
    /// controllers locate it even if the first announcement races their
    /// own startup.
    pub fn with_gratuitous_arp(mut self) -> Host {
        self.gratuitous_arp = true;
        self
    }

    /// Add a traffic workload.
    pub fn with_workload(mut self, spec: Workload) -> Host {
        self.workloads.push(WorkloadState {
            spec,
            sent: 0,
            seq: 0,
        });
        self
    }

    /// Pre-populate the ARP cache (for experiments that want pure
    /// data-path behaviour without resolution traffic).
    pub fn with_static_arp(mut self, ip: Ipv4Address, mac: EthernetAddress) -> Host {
        self.arp_cache.insert(ip, mac);
        self
    }

    /// This host's MAC address.
    pub fn mac(&self) -> EthernetAddress {
        self.mac
    }

    /// This host's IP address.
    pub fn ip(&self) -> Ipv4Address {
        self.ip
    }

    fn workload_timer_token(idx: usize) -> u64 {
        idx as u64
    }

    /// Send a gratuitous ARP (sender == target == us).
    fn announce(&self, ctx: &mut Context<'_>) {
        let frame = PacketBuilder::arp_request(self.mac, self.ip, self.ip);
        ctx.transmit(HOST_PORT, frame);
    }

    fn send_ip(&mut self, ctx: &mut Context<'_>, dst_ip: Ipv4Address, ip_packet: Vec<u8>) {
        // All hosts in zen experiments share one subnet: the next hop is
        // the destination itself.
        if let Some(&dst_mac) = self.arp_cache.get(&dst_ip) {
            let frame = PacketBuilder::ethernet(self.mac, dst_mac, EtherType::Ipv4, &ip_packet);
            ctx.transmit(HOST_PORT, frame);
        } else {
            let first_for_target = !self.pending.contains_key(&dst_ip);
            self.pending.entry(dst_ip).or_default().push(ip_packet);
            if first_for_target {
                let req = PacketBuilder::arp_request(self.mac, self.ip, dst_ip);
                ctx.transmit(HOST_PORT, req);
            }
        }
    }

    fn flush_pending(&mut self, ctx: &mut Context<'_>, ip: Ipv4Address, mac: EthernetAddress) {
        if let Some(packets) = self.pending.remove(&ip) {
            for ip_packet in packets {
                let frame = PacketBuilder::ethernet(self.mac, mac, EtherType::Ipv4, &ip_packet);
                ctx.transmit(HOST_PORT, frame);
            }
        }
    }

    fn build_ip(&self, dst: Ipv4Address, protocol: ipv4::Protocol, l4: &[u8]) -> Vec<u8> {
        let repr = ipv4::Repr {
            src_addr: self.ip,
            dst_addr: dst,
            protocol,
            payload_len: l4.len(),
            ttl: 64,
            dscp_ecn: 0,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut packet = ipv4::Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut packet);
        packet.payload_mut().copy_from_slice(l4);
        buf
    }

    fn fire_workload(&mut self, ctx: &mut Context<'_>, idx: usize) {
        let now = ctx.now();
        let (spec, seq) = {
            let w = &mut self.workloads[idx];
            w.sent += 1;
            let seq = w.seq;
            w.seq += 1;
            (w.spec.clone(), seq)
        };
        match spec {
            Workload::Ping { dst, .. } => {
                // Each workload needs its own ident: seq numbers are
                // per-workload, so a shared ident would collide in
                // `ping_sent_at` when several ping workloads run at once.
                let ident = self.next_ping_ident.wrapping_add(idx as u16);
                let seq16 = (seq & 0xffff) as u16;
                self.ping_sent_at.insert((ident, seq16), now);
                self.stats.ping_tx += 1;
                let message = icmpv4::Message::EchoRequest { ident, seq: seq16 };
                let repr = icmpv4::Repr {
                    message,
                    payload_len: 0,
                };
                let mut icmp = vec![0u8; repr.buffer_len()];
                repr.emit(&mut icmpv4::Packet::new_unchecked(&mut icmp[..]));
                let packet = self.build_ip(dst, ipv4::Protocol::Icmp, &icmp);
                self.send_ip(ctx, dst, packet);
            }
            Workload::Udp {
                dst,
                dst_port,
                size,
                ..
            } => {
                let size = size.max(20);
                let mut payload = vec![0u8; size];
                payload[0..4].copy_from_slice(&PROBE_MAGIC.to_be_bytes());
                payload[4..12].copy_from_slice(&seq.to_be_bytes());
                payload[12..20].copy_from_slice(&now.as_nanos().to_be_bytes());
                let repr = udp::Repr {
                    src_port: 10_000 + idx as u16,
                    dst_port,
                    payload_len: payload.len(),
                };
                let mut dgram_buf = vec![0u8; repr.buffer_len()];
                let mut dgram = udp::Datagram::new_unchecked(&mut dgram_buf[..]);
                dgram.set_len_field(repr.buffer_len() as u16);
                dgram.payload_mut().copy_from_slice(&payload);
                repr.emit(&mut dgram, self.ip, dst);
                self.stats.udp_tx += 1;
                if ctx.recorder().is_enabled() {
                    let tid = probe_trace_id(self.ip.to_u32(), dst.to_u32(), seq, now.as_nanos());
                    let node = ctx.self_id.0;
                    ctx.recorder()
                        .record(now.as_nanos(), tid, TraceEvent::HostEmit { node });
                }
                let packet = self.build_ip(dst, ipv4::Protocol::Udp, &dgram_buf);
                self.send_ip(ctx, dst, packet);
            }
        }
        // Schedule the next shot if any remain.
        let w = &self.workloads[idx];
        let (count, interval) = match &w.spec {
            Workload::Ping {
                count, interval, ..
            }
            | Workload::Udp {
                count, interval, ..
            } => (*count, *interval),
        };
        if w.sent < count {
            ctx.set_timer(interval, Self::workload_timer_token(idx));
        }
    }

    fn handle_arp(&mut self, ctx: &mut Context<'_>, payload: &[u8]) {
        let Ok(packet) = arp::Packet::new_checked(payload) else {
            return;
        };
        let Ok(repr) = arp::Repr::parse(&packet) else {
            return;
        };
        // Learn the sender mapping opportunistically.
        if repr.sender_protocol_addr.is_unicast() {
            self.arp_cache
                .insert(repr.sender_protocol_addr, repr.sender_hardware_addr);
            self.flush_pending(ctx, repr.sender_protocol_addr, repr.sender_hardware_addr);
        }
        if repr.operation == arp::Operation::Request && repr.target_protocol_addr == self.ip {
            self.stats.arp_answered += 1;
            let reply = PacketBuilder::arp_reply(&repr, self.mac);
            ctx.transmit(HOST_PORT, reply);
        }
    }

    fn handle_ipv4(&mut self, ctx: &mut Context<'_>, src_mac: EthernetAddress, payload: &[u8]) {
        let Ok(packet) = ipv4::Packet::new_checked(payload) else {
            return;
        };
        let Ok(ip) = ipv4::Repr::parse(&packet) else {
            return;
        };
        if ip.dst_addr != self.ip {
            return; // not ours; hosts do not forward
        }
        // Opportunistic ARP learning from traffic.
        self.arp_cache.entry(ip.src_addr).or_insert(src_mac);
        match ip.protocol {
            ipv4::Protocol::Icmp => self.handle_icmp(ctx, ip.src_addr, packet.payload()),
            ipv4::Protocol::Udp => self.handle_udp(ctx, ip.src_addr, packet.payload()),
            _ => {}
        }
    }

    fn handle_icmp(&mut self, ctx: &mut Context<'_>, src_ip: Ipv4Address, payload: &[u8]) {
        let Ok(packet) = icmpv4::Packet::new_checked(payload) else {
            return;
        };
        let Ok(repr) = icmpv4::Repr::parse(&packet) else {
            return;
        };
        match repr.message {
            icmpv4::Message::EchoRequest { ident, seq } => {
                self.stats.echo_answered += 1;
                let reply = icmpv4::Repr {
                    message: icmpv4::Message::EchoReply { ident, seq },
                    payload_len: 0,
                };
                let mut icmp = vec![0u8; reply.buffer_len()];
                reply.emit(&mut icmpv4::Packet::new_unchecked(&mut icmp[..]));
                let ip_packet = self.build_ip(src_ip, ipv4::Protocol::Icmp, &icmp);
                self.send_ip(ctx, src_ip, ip_packet);
            }
            icmpv4::Message::EchoReply { ident, seq } => {
                if let Some(sent) = self.ping_sent_at.remove(&(ident, seq)) {
                    let rtt = ctx.now() - sent;
                    self.stats.ping_rtts.record(rtt.as_secs_f64());
                }
            }
            _ => {}
        }
    }

    fn handle_udp(&mut self, ctx: &mut Context<'_>, src_ip: Ipv4Address, payload: &[u8]) {
        let Ok(dgram) = udp::Datagram::new_checked(payload) else {
            return;
        };
        if !dgram.verify_checksum(src_ip, self.ip) {
            return;
        }
        let data = dgram.payload();
        self.stats.udp_rx += 1;
        self.stats.udp_rx_bytes += data.len() as u64;
        if data.len() >= 20 && data[0..4] == PROBE_MAGIC.to_be_bytes() {
            let seq = u64::from_be_bytes(data[4..12].try_into().unwrap());
            let sent_nanos = u64::from_be_bytes(data[12..20].try_into().unwrap());
            let latency = ctx.now().as_nanos().saturating_sub(sent_nanos);
            self.stats.udp_latency.record(latency as f64 / 1e9);
            let hid = *self
                .latency_hid
                .get_or_insert_with(|| ctx.metrics().register_histogram("host.udp_latency_secs"));
            ctx.metrics().record(hid, latency as f64 / 1e9);
            if ctx.recorder().is_enabled() {
                let tid = probe_trace_id(src_ip.to_u32(), self.ip.to_u32(), seq, sent_nanos);
                let node = ctx.self_id.0;
                ctx.recorder()
                    .record(ctx.now().as_nanos(), tid, TraceEvent::HostRecv { node });
            }
            let max = self.stats.udp_max_seq.entry(src_ip).or_insert(0);
            *max = (*max).max(seq);
            *self.stats.udp_rx_per_src.entry(src_ip).or_insert(0) += 1;
        }
    }
}

impl Node for Host {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if self.gratuitous_arp {
            self.announce(ctx);
            ctx.set_timer(Duration::from_millis(250), ANNOUNCE_TOKEN);
            ctx.set_timer(Duration::from_millis(1000), ANNOUNCE_TOKEN);
        }
        let now = ctx.now();
        for idx in 0..self.workloads.len() {
            let start = match &self.workloads[idx].spec {
                Workload::Ping { start, .. } | Workload::Udp { start, .. } => *start,
            };
            let delay = start.duration_since(now);
            ctx.set_timer(delay, Self::workload_timer_token(idx));
        }
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, _port: PortNo, frame: &[u8]) {
        self.stats.rx_frames += 1;
        let Ok(eth) = Frame::new_checked(frame) else {
            return;
        };
        // Accept only frames addressed to us, broadcast, or multicast.
        let dst = eth.dst_addr();
        if dst != self.mac && !dst.is_multicast() {
            return;
        }
        match eth.ethertype() {
            EtherType::Arp => self.handle_arp(ctx, eth.payload()),
            EtherType::Ipv4 => self.handle_ipv4(ctx, eth.src_addr(), eth.payload()),
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        if token == ANNOUNCE_TOKEN {
            self.announce(ctx);
            return;
        }
        let idx = token as usize;
        if idx < self.workloads.len() {
            self.fire_workload(ctx, idx);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{LinkParams, World};

    fn host(id: u64) -> Host {
        Host::new(
            EthernetAddress::from_id(id),
            Ipv4Address::new(10, 0, 0, id as u8),
        )
    }

    #[test]
    fn ping_between_directly_connected_hosts() {
        let mut world = World::new(1);
        let a = world.add_node(Box::new(host(1).with_workload(Workload::Ping {
            dst: Ipv4Address::new(10, 0, 0, 2),
            count: 5,
            interval: Duration::from_millis(10),
            start: Instant::from_millis(1),
        })));
        let b = world.add_node(Box::new(host(2)));
        world.connect(a, b, LinkParams::default());
        world.run_until(Instant::from_secs(1));

        let ha = world.node_as::<Host>(a);
        assert_eq!(ha.stats.ping_tx, 5);
        assert_eq!(ha.stats.ping_rtts.count(), 5);
        // RTT must exceed 2x propagation latency.
        assert!(ha.stats.ping_rtts.min().unwrap() >= 20e-6);
        let hb = world.node_as::<Host>(b);
        assert_eq!(hb.stats.echo_answered, 5);
        // ARP was resolved exactly once in each direction... b learned a
        // from the request, so only a sent a request.
        assert_eq!(hb.stats.arp_answered, 1);
    }

    #[test]
    fn udp_flow_measures_latency_and_loss() {
        let mut world = World::new(1);
        let a = world.add_node(Box::new(host(1).with_workload(Workload::Udp {
            dst: Ipv4Address::new(10, 0, 0, 2),
            dst_port: 9,
            size: 100,
            count: 20,
            interval: Duration::from_millis(1),
            start: Instant::from_millis(1),
        })));
        let b = world.add_node(Box::new(host(2)));
        world.connect(a, b, LinkParams::default());
        world.run_until(Instant::from_secs(1));

        let hb = world.node_as::<Host>(b);
        assert_eq!(hb.stats.udp_rx, 20);
        assert_eq!(hb.stats.udp_rx_per_src[&Ipv4Address::new(10, 0, 0, 1)], 20);
        assert_eq!(hb.stats.udp_max_seq[&Ipv4Address::new(10, 0, 0, 1)], 19);
        assert!(hb.stats.udp_latency.min().unwrap() > 0.0);
    }

    #[test]
    fn static_arp_skips_resolution() {
        let mac2 = EthernetAddress::from_id(2);
        let mut world = World::new(1);
        let a = world.add_node(Box::new(
            host(1)
                .with_static_arp(Ipv4Address::new(10, 0, 0, 2), mac2)
                .with_workload(Workload::Udp {
                    dst: Ipv4Address::new(10, 0, 0, 2),
                    dst_port: 9,
                    size: 64,
                    count: 1,
                    interval: Duration::from_millis(1),
                    start: Instant::ZERO,
                }),
        ));
        let b = world.add_node(Box::new(host(2)));
        world.connect(a, b, LinkParams::default());
        world.run_until(Instant::from_secs(1));
        let hb = world.node_as::<Host>(b);
        assert_eq!(hb.stats.udp_rx, 1);
        assert_eq!(hb.stats.arp_answered, 0);
        // Suppress unused warning pattern: a still exists.
        let _ = world.node_as::<Host>(a);
    }

    #[test]
    fn gratuitous_arp_emitted() {
        let mut world = World::new(1);
        let a = world.add_node(Box::new(host(1).with_gratuitous_arp()));
        let b = world.add_node(Box::new(host(2)));
        world.connect(a, b, LinkParams::default());
        world.run_until(Instant::from_millis(10));
        // b saw the broadcast and learned a's mapping.
        let hb = world.node_as::<Host>(b);
        assert_eq!(
            hb.arp_cache.get(&Ipv4Address::new(10, 0, 0, 1)),
            Some(&EthernetAddress::from_id(1))
        );
        // But did not answer it (target was not b's IP).
        assert_eq!(hb.stats.arp_answered, 0);
    }

    #[test]
    fn ignores_frames_for_other_macs() {
        let mut world = World::new(1);
        let a = world.add_node(Box::new(host(1)));
        let b = world.add_node(Box::new(host(2)));
        world.connect(a, b, LinkParams::default());

        // Inject a frame addressed to a third MAC via a tiny sender node.
        struct Inject;
        impl Node for Inject {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                let frame = PacketBuilder::udp(
                    EthernetAddress::from_id(9),
                    Ipv4Address::new(10, 0, 0, 9),
                    1,
                    EthernetAddress::from_id(77), // not the host's MAC
                    Ipv4Address::new(10, 0, 0, 2),
                    2,
                    b"x",
                );
                ctx.transmit(1, frame);
            }
            fn on_packet(&mut self, _: &mut Context<'_>, _: PortNo, _: &[u8]) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let inj = world.add_node(Box::new(Inject));
        world.connect(inj, b, LinkParams::default());
        world.run_until(Instant::from_millis(10));
        let hb = world.node_as::<Host>(b);
        assert_eq!(hb.stats.udp_rx, 0);
        let _ = world.node_as::<Host>(a);
    }
}
