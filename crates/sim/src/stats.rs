//! Measurement primitives: counters, sample histograms, and time series.

use std::collections::BTreeMap;

use crate::time::Instant;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Counter {
        Counter { value: 0 }
    }

    /// Add one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Add `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current value.
    pub const fn get(&self) -> u64 {
        self.value
    }
}

/// A sample-retaining histogram with exact quantiles.
///
/// Retains every recorded value (the simulator's sample counts are modest),
/// so quantiles are exact rather than bucketed approximations.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record a sample.
    pub fn record(&mut self, value: f64) {
        self.samples.push(value);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::min)
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::max)
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) by the nearest-rank method, or `None`
    /// if empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let rank = ((q.clamp(0.0, 1.0)) * (self.samples.len() - 1) as f64).round() as usize;
        Some(self.samples[rank])
    }

    /// Convenience: the median.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Convenience: the 99th percentile.
    pub fn p99(&mut self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// All samples, unsorted, in recording order... unless quantiles were
    /// queried (which sorts in place).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// A time series of `(Instant, value)` observations.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(Instant, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> TimeSeries {
        TimeSeries::default()
    }

    /// Append an observation; `at` values should be non-decreasing.
    pub fn record(&mut self, at: Instant, value: f64) {
        self.points.push((at, value));
    }

    /// The raw points.
    pub fn points(&self) -> &[(Instant, f64)] {
        &self.points
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The last value recorded at or before `at`, or `None`.
    pub fn value_at(&self, at: Instant) -> Option<f64> {
        self.points
            .iter()
            .take_while(|(t, _)| *t <= at)
            .last()
            .map(|(_, v)| *v)
    }
}

/// A registry of named metrics, used by nodes and experiment harnesses.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Add `n` to the named counter, creating it at zero if absent.
    pub fn add(&mut self, name: &str, n: u64) {
        self.counters.entry(name.to_string()).or_default().add(n);
    }

    /// Add one to the named counter.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Read a counter (zero if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, |c| c.get())
    }

    /// Record a sample in the named histogram.
    pub fn record(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Access a histogram mutably (quantiles need `&mut`), creating it if
    /// absent.
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        self.histograms.entry(name.to_string()).or_default()
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), v.get()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), Some(3.0));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(5.0));
        assert_eq!(h.median(), Some(3.0));
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(5.0));
    }

    #[test]
    fn histogram_empty() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.median(), None);
    }

    #[test]
    fn histogram_p99() {
        let mut h = Histogram::new();
        for i in 0..100 {
            h.record(i as f64);
        }
        assert_eq!(h.p99(), Some(98.0));
    }

    #[test]
    fn time_series_lookup() {
        let mut ts = TimeSeries::new();
        ts.record(Instant::from_secs(1), 10.0);
        ts.record(Instant::from_secs(2), 20.0);
        assert_eq!(ts.value_at(Instant::from_millis(500)), None);
        assert_eq!(ts.value_at(Instant::from_secs(1)), Some(10.0));
        assert_eq!(ts.value_at(Instant::from_millis(1500)), Some(10.0));
        assert_eq!(ts.value_at(Instant::from_secs(3)), Some(20.0));
    }

    #[test]
    fn metrics_registry() {
        let mut m = Metrics::new();
        m.incr("pkts");
        m.add("pkts", 2);
        assert_eq!(m.counter("pkts"), 3);
        assert_eq!(m.counter("missing"), 0);
        m.record("latency", 1.5);
        m.record("latency", 2.5);
        assert_eq!(m.histogram("latency").mean(), Some(2.0));
        let names: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["pkts"]);
    }
}
