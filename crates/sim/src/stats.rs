//! Measurement primitives: counters, sample histograms, and time series.

use std::collections::BTreeMap;

use crate::time::Instant;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Counter {
        Counter { value: 0 }
    }

    /// Add one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Add `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current value.
    pub const fn get(&self) -> u64 {
        self.value
    }
}

/// A sample-retaining histogram with exact quantiles.
///
/// Retains every recorded value (the simulator's sample counts are modest),
/// so quantiles are exact rather than bucketed approximations.
///
/// [`Histogram::samples`] always returns samples in recording order;
/// quantile queries maintain a separate lazily-rebuilt sorted copy and
/// never disturb it.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: Vec<f64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record a sample.
    pub fn record(&mut self, value: f64) {
        self.samples.push(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::min)
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::max)
    }

    fn ensure_sorted(&mut self) {
        if self.sorted.len() != self.samples.len() {
            self.sorted.clear();
            self.sorted.extend_from_slice(&self.samples);
            self.sorted
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) by the nearest-rank method, or `None`
    /// if empty. Sorts into a side buffer; `samples()` is unaffected.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let rank = ((q.clamp(0.0, 1.0)) * (self.sorted.len() - 1) as f64).round() as usize;
        Some(self.sorted[rank])
    }

    /// Convenience: the median.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Convenience: the 99th percentile.
    pub fn p99(&mut self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// All samples in recording order. Quantile queries do not perturb
    /// this: sorting happens in a separate cached buffer.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// A time series of `(Instant, value)` observations.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(Instant, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> TimeSeries {
        TimeSeries::default()
    }

    /// Append an observation; `at` values should be non-decreasing.
    pub fn record(&mut self, at: Instant, value: f64) {
        self.points.push((at, value));
    }

    /// The raw points.
    pub fn points(&self) -> &[(Instant, f64)] {
        &self.points
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The last value recorded at or before `at`, or `None`.
    pub fn value_at(&self, at: Instant) -> Option<f64> {
        self.points
            .iter()
            .take_while(|(t, _)| *t <= at)
            .last()
            .map(|(_, v)| *v)
    }
}

/// Typed handle to a pre-registered counter: an O(1) array index.
///
/// Obtain one with [`Metrics::register_counter`] at setup time and use it
/// on the hot path instead of a string name — no map lookup, no hashing,
/// no allocation per increment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CounterId(u32);

/// Typed handle to a pre-registered histogram. See [`CounterId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HistogramId(u32);

/// A registry of named metrics, used by nodes and experiment harnesses.
///
/// The write path is typed: callers register names once (setup time) and
/// receive [`CounterId`] / [`HistogramId`] handles that index directly
/// into dense storage. The read path stays name-based — reports, tests,
/// and the snapshot exporter iterate `(name, value)` pairs in name order.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: Vec<Counter>,
    histograms: Vec<Histogram>,
    counter_index: BTreeMap<String, u32>,
    histogram_index: BTreeMap<String, u32>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Register (or look up) the counter `name`, returning its typed
    /// handle. Registering the same name twice returns the same handle.
    pub fn register_counter(&mut self, name: &str) -> CounterId {
        if let Some(&idx) = self.counter_index.get(name) {
            return CounterId(idx);
        }
        let idx = u32::try_from(self.counters.len()).expect("too many counters");
        self.counters.push(Counter::new());
        self.counter_index.insert(name.to_string(), idx);
        CounterId(idx)
    }

    /// Register (or look up) the histogram `name`, returning its typed
    /// handle. Registering the same name twice returns the same handle.
    pub fn register_histogram(&mut self, name: &str) -> HistogramId {
        if let Some(&idx) = self.histogram_index.get(name) {
            return HistogramId(idx);
        }
        let idx = u32::try_from(self.histograms.len()).expect("too many histograms");
        self.histograms.push(Histogram::new());
        self.histogram_index.insert(name.to_string(), idx);
        HistogramId(idx)
    }

    /// Add `n` to a registered counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0 as usize].add(n);
    }

    /// Add one to a registered counter.
    #[inline]
    pub fn incr(&mut self, id: CounterId) {
        self.counters[id.0 as usize].incr();
    }

    /// Read a registered counter by handle.
    #[inline]
    pub fn get(&self, id: CounterId) -> u64 {
        self.counters[id.0 as usize].get()
    }

    /// Record a sample in a registered histogram.
    #[inline]
    pub fn record(&mut self, id: HistogramId, value: f64) {
        self.histograms[id.0 as usize].record(value);
    }

    /// Read a counter by name (zero if never registered). Report-path
    /// only — hot paths should hold a [`CounterId`].
    pub fn counter(&self, name: &str) -> u64 {
        self.counter_index
            .get(name)
            .map_or(0, |&idx| self.counters[idx as usize].get())
    }

    /// Access a histogram mutably by name (quantiles need `&mut`),
    /// registering it if absent. Report-path only.
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        let id = self.register_histogram(name);
        &mut self.histograms[id.0 as usize]
    }

    /// Access a registered histogram mutably by handle.
    #[inline]
    pub fn histogram_mut(&mut self, id: HistogramId) -> &mut Histogram {
        &mut self.histograms[id.0 as usize]
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counter_index
            .iter()
            .map(|(k, &idx)| (k.as_str(), self.counters[idx as usize].get()))
    }

    /// Iterate histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histogram_index
            .iter()
            .map(move |(k, &idx)| (k.as_str(), &self.histograms[idx as usize]))
    }

    /// Fold another registry into this one by name: counters are summed,
    /// histogram samples appended. Used to merge per-shard registries
    /// after a sharded run — the result is shard-count-independent for
    /// counters (addition commutes); histogram sample *order* follows
    /// shard order, so quantiles are exact but ordering-sensitive
    /// consumers should not be fed merged histograms.
    pub fn merge_from(&mut self, other: &Metrics) {
        for (name, value) in other.counters() {
            let id = self.register_counter(name);
            self.add(id, value);
        }
        for (name, hist) in other.histograms() {
            let id = self.register_histogram(name);
            for &sample in hist.samples() {
                self.histograms[id.0 as usize].record(sample);
            }
        }
    }

    /// Serialize every counter and histogram as deterministic JSON-lines,
    /// in name order. Takes `&mut self` because quantile queries build the
    /// histogram sort caches.
    pub fn write_jsonl(&mut self, out: &mut String) {
        use zen_telemetry::json::Line;
        for (name, value) in self.counters() {
            Line::new("counter")
                .str("name", name)
                .u64("value", value)
                .finish(out);
        }
        let names: Vec<String> = self.histogram_index.keys().cloned().collect();
        for name in names {
            let h = self.histogram(&name);
            let (count, mean, min, max, p50, p99) = (
                h.count() as u64,
                h.mean(),
                h.min(),
                h.max(),
                h.median(),
                h.p99(),
            );
            Line::new("histogram")
                .str("name", &name)
                .u64("count", count)
                .f64("mean", mean.unwrap_or(0.0))
                .f64("min", min.unwrap_or(0.0))
                .f64("max", max.unwrap_or(0.0))
                .f64("p50", p50.unwrap_or(0.0))
                .f64("p99", p99.unwrap_or(0.0))
                .finish(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), Some(3.0));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(5.0));
        assert_eq!(h.median(), Some(3.0));
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(5.0));
    }

    #[test]
    fn histogram_empty() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.median(), None);
    }

    #[test]
    fn histogram_p99() {
        let mut h = Histogram::new();
        for i in 0..100 {
            h.record(i as f64);
        }
        assert_eq!(h.p99(), Some(98.0));
    }

    #[test]
    fn time_series_lookup() {
        let mut ts = TimeSeries::new();
        ts.record(Instant::from_secs(1), 10.0);
        ts.record(Instant::from_secs(2), 20.0);
        assert_eq!(ts.value_at(Instant::from_millis(500)), None);
        assert_eq!(ts.value_at(Instant::from_secs(1)), Some(10.0));
        assert_eq!(ts.value_at(Instant::from_millis(1500)), Some(10.0));
        assert_eq!(ts.value_at(Instant::from_secs(3)), Some(20.0));
    }

    #[test]
    fn metrics_registry() {
        let mut m = Metrics::new();
        let pkts = m.register_counter("pkts");
        m.incr(pkts);
        m.add(pkts, 2);
        assert_eq!(m.get(pkts), 3);
        assert_eq!(m.counter("pkts"), 3);
        assert_eq!(m.counter("missing"), 0);
        let latency = m.register_histogram("latency");
        m.record(latency, 1.5);
        m.record(latency, 2.5);
        assert_eq!(m.histogram("latency").mean(), Some(2.0));
        let names: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["pkts"]);
    }

    #[test]
    fn metrics_registration_is_idempotent() {
        let mut m = Metrics::new();
        let a = m.register_counter("x");
        let b = m.register_counter("x");
        assert_eq!(a, b);
        m.incr(a);
        m.incr(b);
        assert_eq!(m.counter("x"), 2);
    }

    #[test]
    fn counters_iterate_in_name_order() {
        let mut m = Metrics::new();
        // Register out of name order; iteration must still be sorted.
        let z = m.register_counter("zeta");
        let a = m.register_counter("alpha");
        m.add(z, 1);
        m.add(a, 2);
        let got: Vec<(&str, u64)> = m.counters().collect();
        assert_eq!(got, vec![("alpha", 2), ("zeta", 1)]);
    }

    #[test]
    fn quantiles_do_not_perturb_recording_order() {
        let mut h = Histogram::new();
        for v in [5.0, 1.0, 3.0] {
            h.record(v);
        }
        assert_eq!(h.median(), Some(3.0));
        assert_eq!(h.samples(), &[5.0, 1.0, 3.0]);
        // Recording after a quantile query invalidates the sorted cache.
        h.record(0.0);
        assert_eq!(h.quantile(0.0), Some(0.0));
        assert_eq!(h.samples(), &[5.0, 1.0, 3.0, 0.0]);
    }
}
