//! The discrete-event simulation core: nodes, links, events, and the
//! world that schedules them.
//!
//! # Model
//!
//! A [`World`] owns a set of [`Node`]s connected by point-to-point
//! [`Link`]s. Each link direction models a work-conserving FIFO egress
//! queue: a frame sent at time *t* begins serialization at
//! `max(t, busy_until)`, occupies the line for `len * 8 / rate`, and
//! arrives `latency` after serialization completes. Frames that would
//! overflow the configured queue depth are dropped, as are frames sent
//! onto administratively-down links.
//!
//! Control-plane traffic (switch ↔ controller) travels out-of-band via
//! [`Context::send_control`], modelling a dedicated management network
//! with configurable latency — the common deployment for SDN controllers.
//!
//! # Determinism
//!
//! Execution is a pure function of the initial configuration and the RNG
//! seed: the event queue breaks time ties by sequence number, and every
//! internal collection whose iteration order can influence event creation
//! is ordered (`BTreeMap`).

use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use zen_telemetry::{trace_id_for_frame, Recorder, TraceEvent};

use crate::fault::FaultPlan;
use crate::rng::Rng;
use crate::stats::{CounterId, Metrics};
use crate::time::{transmission_time, Duration, Instant};

/// Identifies a node in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A port number on a node. Port numbers start at 1; 0 is reserved.
pub type PortNo = u32;

/// Identifies a link in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

/// Static link characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkParams {
    /// One-way propagation delay.
    pub latency: Duration,
    /// Line rate in bits per second. `0` means infinite (no serialization
    /// delay, no queueing).
    pub bandwidth_bps: u64,
    /// Egress queue capacity in bytes (per direction). Ignored when
    /// `bandwidth_bps == 0`.
    pub queue_bytes: usize,
}

impl Default for LinkParams {
    fn default() -> LinkParams {
        LinkParams {
            latency: Duration::from_micros(10),
            bandwidth_bps: 1_000_000_000,
            queue_bytes: 512 * 1024,
        }
    }
}

impl LinkParams {
    /// A convenience constructor.
    pub fn new(latency: Duration, bandwidth_bps: u64, queue_bytes: usize) -> LinkParams {
        LinkParams {
            latency,
            bandwidth_bps,
            queue_bytes,
        }
    }

    /// Infinite-capacity link with the given latency (useful for control
    /// or abstract topologies).
    pub fn instant(latency: Duration) -> LinkParams {
        LinkParams {
            latency,
            bandwidth_bps: 0,
            queue_bytes: 0,
        }
    }
}

/// Per-direction dynamic link state and counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkDirStats {
    /// When the line becomes free.
    busy_until: Instant,
    /// Bytes successfully serialized onto the line.
    pub tx_bytes: u64,
    /// Frames successfully serialized onto the line.
    pub tx_frames: u64,
    /// Frames dropped due to queue overflow.
    pub drops_queue: u64,
    /// Frames dropped because the link was down.
    pub drops_down: u64,
}

/// A bidirectional point-to-point link.
#[derive(Debug)]
pub struct Link {
    /// Endpoint A as (node, port).
    pub a: (NodeId, PortNo),
    /// Endpoint B as (node, port).
    pub b: (NodeId, PortNo),
    /// Static characteristics.
    pub params: LinkParams,
    /// Administrative + operational state.
    pub up: bool,
    /// Counters for the A→B direction.
    pub ab: LinkDirStats,
    /// Counters for the B→A direction.
    pub ba: LinkDirStats,
}

impl Link {
    /// Utilization of the A→B direction over `[0, horizon]`, as a fraction
    /// of line rate. Returns 0 for infinite links.
    pub fn utilization_ab(&self, horizon: Duration) -> f64 {
        utilization(self.ab.tx_bytes, self.params.bandwidth_bps, horizon)
    }

    /// Utilization of the B→A direction over `[0, horizon]`.
    pub fn utilization_ba(&self, horizon: Duration) -> f64 {
        utilization(self.ba.tx_bytes, self.params.bandwidth_bps, horizon)
    }
}

fn utilization(tx_bytes: u64, rate: u64, horizon: Duration) -> f64 {
    if rate == 0 || horizon == Duration::ZERO {
        return 0.0;
    }
    (tx_bytes as f64 * 8.0) / (rate as f64 * horizon.as_secs_f64())
}

/// The behaviour of a simulated node.
///
/// Implementations also provide `as_any` so tests and harnesses can
/// downcast a node back to its concrete type after a run.
pub trait Node: 'static {
    /// Called once when the simulation starts (or when the node is added
    /// to an already-running world).
    fn on_start(&mut self, _ctx: &mut Context<'_>) {}

    /// A frame arrived on `port`.
    fn on_packet(&mut self, ctx: &mut Context<'_>, port: PortNo, frame: &[u8]);

    /// A timer set via [`Context::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut Context<'_>, _token: u64) {}

    /// An out-of-band control message arrived.
    fn on_control(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _bytes: &[u8]) {}

    /// A local port changed operational state.
    fn on_link_status(&mut self, _ctx: &mut Context<'_>, _port: PortNo, _up: bool) {}

    /// Downcast support.
    fn as_any(&self) -> &dyn Any;

    /// Downcast support (mutable).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[derive(Debug)]
enum EventKind {
    Start,
    Packet {
        port: PortNo,
        frame: Vec<u8>,
    },
    Timer {
        token: u64,
    },
    Control {
        from: NodeId,
        bytes: Vec<u8>,
    },
    LinkStatus {
        port: PortNo,
        up: bool,
    },
    AdminLink {
        link: LinkId,
        up: bool,
        notify: bool,
    },
}

impl EventKind {
    /// Stable name used for event-loop span accounting.
    fn name(&self) -> &'static str {
        match self {
            EventKind::Start => "start",
            EventKind::Packet { .. } => "packet",
            EventKind::Timer { .. } => "timer",
            EventKind::Control { .. } => "control",
            EventKind::LinkStatus { .. } => "link_status",
            EventKind::AdminLink { .. } => "admin_link",
        }
    }
}

#[derive(Debug)]
struct Event {
    at: Instant,
    seq: u64,
    node: NodeId,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Event) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Event) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Event) -> core::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Typed handles to the simulator's own counters, registered once at
/// world construction so the hot paths never do string lookups.
struct SimCounters {
    tx_no_link: CounterId,
    tx_frames: CounterId,
    tx_bytes: CounterId,
    drops_down: CounterId,
    drops_queue: CounterId,
    drops_in_flight: CounterId,
    control_msgs: CounterId,
    control_bytes: CounterId,
    fault_data_dropped: CounterId,
    fault_control_partitioned: CounterId,
    fault_control_dropped: CounterId,
    fault_control_duplicated: CounterId,
}

impl SimCounters {
    fn register(m: &mut Metrics) -> SimCounters {
        SimCounters {
            tx_no_link: m.register_counter("sim.tx_no_link"),
            tx_frames: m.register_counter("sim.tx_frames"),
            tx_bytes: m.register_counter("sim.tx_bytes"),
            drops_down: m.register_counter("sim.drops_down"),
            drops_queue: m.register_counter("sim.drops_queue"),
            drops_in_flight: m.register_counter("sim.drops_in_flight"),
            control_msgs: m.register_counter("sim.control_msgs"),
            control_bytes: m.register_counter("sim.control_bytes"),
            fault_data_dropped: m.register_counter("fault.data_dropped"),
            fault_control_partitioned: m.register_counter("fault.control_partitioned"),
            fault_control_dropped: m.register_counter("fault.control_dropped"),
            fault_control_duplicated: m.register_counter("fault.control_duplicated"),
        }
    }
}

/// Everything a node may touch while handling an event.
struct CoreState {
    now: Instant,
    seq: u64,
    queue: BinaryHeap<Reverse<Event>>,
    links: Vec<Link>,
    /// (node, port) → link.
    ports: BTreeMap<(NodeId, PortNo), LinkId>,
    /// Next free port number per node.
    next_port: Vec<PortNo>,
    rng: Rng,
    metrics: Metrics,
    ids: SimCounters,
    recorder: Recorder,
    control_latency: Duration,
    control_latency_override: BTreeMap<(NodeId, NodeId), Duration>,
    control_jitter: Duration,
    faults: FaultPlan,
    events_processed: u64,
    /// Control writes buffered during the event currently dispatching,
    /// keyed by (destination, delivery latency in ns). Flushed at the
    /// end of the dispatch as one concatenated Control event per key —
    /// the write coalescing a stream socket gives back-to-back sends.
    /// Fault-duplicated copies bypass the buffer (each is its own
    /// delivery, so duplicates can still reorder under jitter).
    pending_control: BTreeMap<(NodeId, u64), (NodeId, Vec<u8>)>,
}

impl CoreState {
    fn push(&mut self, at: Instant, node: NodeId, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Event {
            at,
            seq,
            node,
            kind,
        }));
    }

    /// Deliver the control writes buffered during the event just
    /// handled: one concatenated Control event per (destination,
    /// latency) key, in deterministic key order.
    fn flush_control(&mut self) {
        if self.pending_control.is_empty() {
            return;
        }
        for ((to, latency_ns), (from, bytes)) in std::mem::take(&mut self.pending_control) {
            let at = self.now + Duration::from_nanos(latency_ns);
            self.push(at, to, EventKind::Control { from, bytes });
        }
    }

    fn transmit(&mut self, from: NodeId, port: PortNo, frame: Vec<u8>) {
        let Some(&link_id) = self.ports.get(&(from, port)) else {
            self.metrics.incr(self.ids.tx_no_link);
            return;
        };
        // Fault plan: lossy links. Checked before queueing, so a dropped
        // frame consumes no line time (loss at the ingress transceiver).
        if !self.faults.is_empty() && self.links[link_id.0 as usize].up {
            let p = self.faults.link_loss_prob(link_id, self.now);
            if p > 0.0 && self.rng.gen_bool(p) {
                self.metrics.incr(self.ids.fault_data_dropped);
                return;
            }
        }
        let link = &mut self.links[link_id.0 as usize];
        if !link.up {
            let dir = if link.a == (from, port) {
                &mut link.ab
            } else {
                &mut link.ba
            };
            dir.drops_down += 1;
            self.metrics.incr(self.ids.drops_down);
            return;
        }
        let (dst, dir) = if link.a == (from, port) {
            (link.b, &mut link.ab)
        } else {
            (link.a, &mut link.ba)
        };
        let params = link.params;
        let arrival = if params.bandwidth_bps == 0 {
            self.now + params.latency
        } else {
            // Backlog currently waiting in the egress queue, in bytes.
            let backlog = dir.busy_until.duration_since(self.now);
            let backlog_bytes = (backlog.as_nanos() as u128 * params.bandwidth_bps as u128
                / 8
                / 1_000_000_000) as usize;
            if backlog_bytes + frame.len() > params.queue_bytes {
                dir.drops_queue += 1;
                self.metrics.incr(self.ids.drops_queue);
                return;
            }
            let tx_start = dir.busy_until.max(self.now);
            let tx_end = tx_start + transmission_time(frame.len(), params.bandwidth_bps);
            dir.busy_until = tx_end;
            tx_end + params.latency
        };
        dir.tx_bytes += frame.len() as u64;
        dir.tx_frames += 1;
        self.metrics.incr(self.ids.tx_frames);
        self.metrics.add(self.ids.tx_bytes, frame.len() as u64);
        if self.recorder.is_enabled() {
            if let Some(tid) = trace_id_for_frame(&frame) {
                self.recorder.record(
                    self.now.as_nanos(),
                    tid,
                    TraceEvent::LinkTx { node: from.0, port },
                );
            }
        }
        self.push(arrival, dst.0, EventKind::Packet { port: dst.1, frame });
    }

    fn control_latency_for(&self, from: NodeId, to: NodeId) -> Duration {
        self.control_latency_override
            .get(&(from, to))
            .copied()
            .unwrap_or(self.control_latency)
    }
}

/// The mutable environment passed to node callbacks.
pub struct Context<'a> {
    /// This node's id.
    pub self_id: NodeId,
    core: &'a mut CoreState,
}

impl Context<'_> {
    /// The current simulated time.
    pub fn now(&self) -> Instant {
        self.core.now
    }

    /// Send a frame out of a local port. The frame is queued on the
    /// attached link (or dropped if the queue is full or the link down).
    pub fn transmit(&mut self, port: PortNo, frame: Vec<u8>) {
        let id = self.self_id;
        self.core.transmit(id, port, frame);
    }

    /// Schedule [`Node::on_timer`] with `token` after `delay`.
    pub fn set_timer(&mut self, delay: Duration, token: u64) {
        let at = self.core.now + delay;
        let id = self.self_id;
        self.core.push(at, id, EventKind::Timer { token });
    }

    /// Send an out-of-band control message to another node.
    ///
    /// Messages sent to the same peer while handling a single event are
    /// *coalesced*: all writes that drew the same delivery latency
    /// arrive as one concatenated `on_control` delivery, the way a
    /// stream socket batches back-to-back writes. Receivers must
    /// loop-decode (every protocol endpoint in this workspace does).
    /// Fault draws (loss, duplication) still happen per logical
    /// message.
    ///
    /// When control jitter is configured (see
    /// [`World::set_control_jitter`]) each message independently draws a
    /// uniform extra delay, so messages may be *reordered* — the
    /// asynchronous-update fault model of the congestion-free-update
    /// literature.
    pub fn send_control(&mut self, to: NodeId, bytes: Vec<u8>) {
        let from = self.self_id;
        let mut copies = 1;
        if !self.core.faults.is_empty() {
            let now = self.core.now;
            if self.core.faults.is_partitioned(from, to, now) {
                self.core
                    .metrics
                    .incr(self.core.ids.fault_control_partitioned);
                return;
            }
            let loss = self.core.faults.control_loss_prob(from, to, now);
            if loss > 0.0 && self.core.rng.gen_bool(loss) {
                self.core.metrics.incr(self.core.ids.fault_control_dropped);
                return;
            }
            let dup = self.core.faults.control_dup_prob(from, to, now);
            if dup > 0.0 && self.core.rng.gen_bool(dup) {
                self.core
                    .metrics
                    .incr(self.core.ids.fault_control_duplicated);
                copies = 2;
            }
        }
        self.core.metrics.incr(self.core.ids.control_msgs);
        self.core
            .metrics
            .add(self.core.ids.control_bytes, bytes.len() as u64);
        let draw_latency = |core: &mut CoreState| {
            let mut latency = core.control_latency_for(from, to);
            let jitter = core.control_jitter.as_nanos();
            if jitter > 0 {
                // Each copy draws its own jitter, so duplicates reorder.
                latency += Duration::from_nanos(core.rng.gen_range(jitter));
            }
            latency
        };
        // Fault-duplicated copies are their own deliveries.
        for _ in 1..copies {
            let at = self.core.now + draw_latency(self.core);
            self.core.push(
                at,
                to,
                EventKind::Control {
                    from,
                    bytes: bytes.clone(),
                },
            );
        }
        // Primary copy: coalesced with every other write this handler
        // makes to `to` at the same latency; delivered as one Control
        // event when the handler returns.
        let latency = draw_latency(self.core);
        match self.core.pending_control.entry((to, latency.as_nanos())) {
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert((from, bytes));
            }
            std::collections::btree_map::Entry::Occupied(mut slot) => {
                slot.get_mut().1.extend_from_slice(&bytes);
            }
        }
    }

    /// This node's ports, in ascending order.
    pub fn ports(&self) -> Vec<PortNo> {
        let id = self.self_id;
        self.core
            .ports
            .range((id, 0)..=(id, PortNo::MAX))
            .map(|((_, p), _)| *p)
            .collect()
    }

    /// Whether the link on `port` is up. `false` for unknown ports.
    pub fn port_up(&self, port: PortNo) -> bool {
        let id = self.self_id;
        self.core
            .ports
            .get(&(id, port))
            .map(|l| self.core.links[l.0 as usize].up)
            .unwrap_or(false)
    }

    /// The neighbour `(node, port)` on the other end of `port`, if any.
    /// This is *ground truth* for harnesses; protocol code should discover
    /// neighbours with LLDP or hellos instead.
    pub fn peer_of(&self, port: PortNo) -> Option<(NodeId, PortNo)> {
        let id = self.self_id;
        let link_id = self.core.ports.get(&(id, port))?;
        let link = &self.core.links[link_id.0 as usize];
        Some(if link.a == (id, port) { link.b } else { link.a })
    }

    /// The deterministic RNG.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.core.rng
    }

    /// Global metrics registry.
    pub fn metrics(&mut self) -> &mut Metrics {
        &mut self.core.metrics
    }

    /// The world's shared flight recorder. Tap points must guard per-event
    /// work behind [`Recorder::is_enabled`].
    pub fn recorder(&self) -> &Recorder {
        &self.core.recorder
    }
}

/// The simulation world: nodes, links, and the event queue.
pub struct World {
    nodes: Vec<Option<Box<dyn Node>>>,
    core: CoreState,
    started: bool,
}

impl World {
    /// Create an empty world with the given RNG seed.
    pub fn new(seed: u64) -> World {
        let mut metrics = Metrics::new();
        let ids = SimCounters::register(&mut metrics);
        World {
            nodes: Vec::new(),
            core: CoreState {
                now: Instant::ZERO,
                seq: 0,
                queue: BinaryHeap::new(),
                links: Vec::new(),
                ports: BTreeMap::new(),
                next_port: Vec::new(),
                rng: Rng::new(seed),
                metrics,
                ids,
                recorder: Recorder::new(),
                control_latency: Duration::from_micros(50),
                control_latency_override: BTreeMap::new(),
                control_jitter: Duration::ZERO,
                faults: FaultPlan::default(),
                events_processed: 0,
                pending_control: BTreeMap::new(),
            },
            started: false,
        }
    }

    /// Add a node; returns its id. `on_start` is scheduled at the current
    /// simulated time.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Some(node));
        self.core.next_port.push(1);
        self.core.push(self.core.now, id, EventKind::Start);
        id
    }

    /// Connect two nodes with a new link, auto-assigning the next free
    /// port on each. Returns `(link, port_on_a, port_on_b)`.
    pub fn connect(
        &mut self,
        a: NodeId,
        b: NodeId,
        params: LinkParams,
    ) -> (LinkId, PortNo, PortNo) {
        let pa = self.core.next_port[a.0 as usize];
        self.core.next_port[a.0 as usize] += 1;
        let pb = self.core.next_port[b.0 as usize];
        self.core.next_port[b.0 as usize] += 1;
        let link = self.connect_ports(a, pa, b, pb, params);
        (link, pa, pb)
    }

    /// Connect two nodes on explicit port numbers.
    ///
    /// # Panics
    /// Panics if either port is 0 or already connected.
    pub fn connect_ports(
        &mut self,
        a: NodeId,
        pa: PortNo,
        b: NodeId,
        pb: PortNo,
        params: LinkParams,
    ) -> LinkId {
        assert!(pa != 0 && pb != 0, "port 0 is reserved");
        assert!(
            !self.core.ports.contains_key(&(a, pa)),
            "port {pa} on {a} already connected"
        );
        assert!(
            !self.core.ports.contains_key(&(b, pb)),
            "port {pb} on {b} already connected"
        );
        let id = LinkId(self.core.links.len() as u32);
        self.core.links.push(Link {
            a: (a, pa),
            b: (b, pb),
            params,
            up: true,
            ab: LinkDirStats::default(),
            ba: LinkDirStats::default(),
        });
        self.core.ports.insert((a, pa), id);
        self.core.ports.insert((b, pb), id);
        self.core.next_port[a.0 as usize] = self.core.next_port[a.0 as usize].max(pa + 1);
        self.core.next_port[b.0 as usize] = self.core.next_port[b.0 as usize].max(pb + 1);
        id
    }

    /// Schedule an administrative link state change at time `at`. Both
    /// endpoints receive `on_link_status` when it takes effect.
    pub fn schedule_link_state(&mut self, link: LinkId, up: bool, at: Instant) {
        // Delivered to node 0 as a placeholder; AdminLink is handled by the
        // core, not a node.
        self.core.push(
            at,
            NodeId(0),
            EventKind::AdminLink {
                link,
                up,
                notify: true,
            },
        );
    }

    /// Schedule a *silent* link failure (or repair) at time `at`: frames
    /// are dropped but neither endpoint gets a carrier notification —
    /// the fault model of a wedged middlebox or unidirectional fiber
    /// break, which only protocol-level liveness (hellos, LLDP, dead
    /// intervals) can detect.
    pub fn schedule_link_state_silent(&mut self, link: LinkId, up: bool, at: Instant) {
        self.core.push(
            at,
            NodeId(0),
            EventKind::AdminLink {
                link,
                up,
                notify: false,
            },
        );
    }

    /// Immediately set a link's administrative state (before or between
    /// runs). Endpoint notifications are delivered at the current time.
    pub fn set_link_state(&mut self, link: LinkId, up: bool) {
        self.schedule_link_state(link, up, self.core.now);
    }

    /// Set the default out-of-band control-channel latency.
    pub fn set_control_latency(&mut self, latency: Duration) {
        self.core.control_latency = latency;
    }

    /// Override control latency for a specific (from, to) pair.
    pub fn set_control_latency_between(&mut self, from: NodeId, to: NodeId, latency: Duration) {
        self.core
            .control_latency_override
            .insert((from, to), latency);
    }

    /// Install a fault plan; subsequent control sends and data-plane
    /// transmissions consult it. Replaces any previous plan. Combined
    /// with a fixed seed this makes chaos runs replayable: the same
    /// plan + seed reproduces the identical event trace.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.core.faults = plan;
    }

    /// The currently installed fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.core.faults
    }

    /// Add uniform random per-message control-channel jitter in
    /// `[0, jitter)`. Nonzero jitter means control messages can be
    /// **reordered in flight** — switches apply updates at unpredictable
    /// relative times, the fault model consistency-aware update schemes
    /// (zUpdate, SWAN) are built for.
    pub fn set_control_jitter(&mut self, jitter: Duration) {
        self.core.control_jitter = jitter;
    }

    /// The current simulated time.
    pub fn now(&self) -> Instant {
        self.core.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.core.events_processed
    }

    /// Global metrics (packet counts, drops, control-channel totals, plus
    /// anything nodes record).
    pub fn metrics(&self) -> &Metrics {
        &self.core.metrics
    }

    /// Global metrics, mutably (for harnesses querying histograms).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.core.metrics
    }

    /// The world's shared flight recorder. Disabled by default; enable
    /// with `world.recorder().set_enabled(true)`. Components that hold a
    /// clone (datapaths, controller, hosts) observe the shared state, so
    /// enabling after the fabric is built still takes effect everywhere.
    pub fn recorder(&self) -> &Recorder {
        &self.core.recorder
    }

    /// Inspect a link.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.core.links[id.0 as usize]
    }

    /// Iterate all links.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &Link)> {
        self.core
            .links
            .iter()
            .enumerate()
            .map(|(i, l)| (LinkId(i as u32), l))
    }

    /// Downcast a node to a concrete type.
    ///
    /// # Panics
    /// Panics if the node does not exist or has a different type.
    pub fn node_as<T: Node>(&self, id: NodeId) -> &T {
        self.nodes[id.0 as usize]
            .as_ref()
            .expect("node is being dispatched")
            .as_any()
            .downcast_ref::<T>()
            .expect("node type mismatch")
    }

    /// Downcast a node to a concrete type, mutably.
    pub fn node_as_mut<T: Node>(&mut self, id: NodeId) -> &mut T {
        self.nodes[id.0 as usize]
            .as_mut()
            .expect("node is being dispatched")
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("node type mismatch")
    }

    /// Process a single event. Returns the time it occurred, or `None` if
    /// the queue is empty.
    ///
    /// When the flight recorder is enabled, each dispatch is accounted to
    /// its event type: how far simulated time advanced to reach it (part
    /// of the deterministic export) and — only when wall profiling is
    /// opted into via [`zen_telemetry::Recorder::set_wall_profile`] —
    /// the wall-clock dispatch cost. Sampling the OS clock twice per
    /// event dominates enabled-recorder overhead, so it is off unless
    /// asked for.
    pub fn step(&mut self) -> Option<Instant> {
        let Reverse(event) = self.core.queue.pop()?;
        debug_assert!(event.at >= self.core.now, "time went backwards");
        let advance = event.at.duration_since(self.core.now);
        self.core.now = event.at;
        self.core.events_processed += 1;
        let at = event.at;
        if !self.core.recorder.is_enabled() {
            self.dispatch(event);
            return Some(at);
        }
        let kind = event.kind.name();
        if !self.core.recorder.wall_profile_enabled() {
            self.dispatch(event);
            self.core.recorder.note_loop(kind, 0, advance.as_nanos());
            return Some(at);
        }
        let t0 = std::time::Instant::now();
        self.dispatch(event);
        let wall = t0.elapsed().as_nanos() as u64;
        self.core.recorder.note_loop(kind, wall, advance.as_nanos());
        Some(at)
    }

    /// Deliver one already-dequeued event to its target.
    fn dispatch(&mut self, event: Event) {
        if let EventKind::AdminLink { link, up, notify } = event.kind {
            let l = &mut self.core.links[link.0 as usize];
            if l.up != up {
                l.up = up;
                if notify {
                    let (a, b) = (l.a, l.b);
                    self.core
                        .push(self.core.now, a.0, EventKind::LinkStatus { port: a.1, up });
                    self.core
                        .push(self.core.now, b.0, EventKind::LinkStatus { port: b.1, up });
                }
            }
            return;
        }

        // Frames still propagating when their link went down are lost
        // (a cut cable takes the in-flight bits with it).
        if let EventKind::Packet { port, .. } = &event.kind {
            let alive = self
                .core
                .ports
                .get(&(event.node, *port))
                .map(|l| self.core.links[l.0 as usize].up)
                .unwrap_or(false);
            if !alive {
                self.core.metrics.incr(self.core.ids.drops_in_flight);
                return;
            }
        }

        let idx = event.node.0 as usize;
        let mut node = match self.nodes.get_mut(idx).and_then(Option::take) {
            Some(node) => node,
            None => return, // node removed or never existed
        };
        {
            let mut ctx = Context {
                self_id: event.node,
                core: &mut self.core,
            };
            match event.kind {
                EventKind::Start => node.on_start(&mut ctx),
                EventKind::Packet { port, frame } => node.on_packet(&mut ctx, port, &frame),
                EventKind::Timer { token } => node.on_timer(&mut ctx, token),
                EventKind::Control { from, bytes } => node.on_control(&mut ctx, from, &bytes),
                EventKind::LinkStatus { port, up } => node.on_link_status(&mut ctx, port, up),
                EventKind::AdminLink { .. } => unreachable!("handled above"),
            }
        }
        self.nodes[idx] = Some(node);
        self.core.flush_control();
    }

    /// Run until the queue is empty or simulated time would exceed
    /// `deadline`. Events at exactly `deadline` are processed. Time is left
    /// at `deadline` (or the last event, if the queue drained first).
    pub fn run_until(&mut self, deadline: Instant) {
        self.started = true;
        while let Some(Reverse(head)) = self.core.queue.peek() {
            if head.at > deadline {
                break;
            }
            self.step();
        }
        if self.core.now < deadline {
            self.core.now = deadline;
        }
    }

    /// Run for `span` beyond the current time.
    pub fn run_for(&mut self, span: Duration) {
        let deadline = self.core.now + span;
        self.run_until(deadline);
    }

    /// Run until the event queue drains, up to `max_events` (a safety
    /// valve against livelocking protocols). Returns the number of events
    /// processed.
    ///
    /// Marks the world as started exactly like [`World::run_until`], so
    /// worlds driven only to quiescence take the same bootstrap path as
    /// deadline-driven ones.
    pub fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        self.started = true;
        let mut n = 0;
        while n < max_events && self.step().is_some() {
            n += 1;
        }
        n
    }

    /// Whether any run entry point ([`World::run_until`],
    /// [`World::run_for`], [`World::run_to_quiescence`]) has been invoked.
    pub fn started(&self) -> bool {
        self.started
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes every frame back out the port it arrived on, and counts.
    struct Echo {
        rx: u64,
    }

    impl Node for Echo {
        fn on_packet(&mut self, ctx: &mut Context<'_>, port: PortNo, frame: &[u8]) {
            self.rx += 1;
            if self.rx == 1 {
                // Only echo the first to avoid infinite ping-pong.
                ctx.transmit(port, frame.to_vec());
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Sends one frame on start, records the arrival time of responses.
    struct Pinger {
        sent_at: Option<Instant>,
        rtt: Option<Duration>,
    }

    impl Node for Pinger {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            self.sent_at = Some(ctx.now());
            ctx.transmit(1, vec![0u8; 100]);
        }
        fn on_packet(&mut self, ctx: &mut Context<'_>, _port: PortNo, _frame: &[u8]) {
            self.rtt = Some(ctx.now() - self.sent_at.unwrap());
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn two_node_world(params: LinkParams) -> (World, NodeId, NodeId) {
        let mut world = World::new(1);
        let a = world.add_node(Box::new(Pinger {
            sent_at: None,
            rtt: None,
        }));
        let b = world.add_node(Box::new(Echo { rx: 0 }));
        world.connect(a, b, params);
        (world, a, b)
    }

    #[test]
    fn ping_rtt_accounts_latency_and_serialization() {
        // 100 bytes at 1 Gb/s = 800 ns each way; latency 10 us each way.
        let (mut world, a, b) = two_node_world(LinkParams::default());
        world.run_until(Instant::from_secs(1));
        let pinger = world.node_as::<Pinger>(a);
        assert_eq!(pinger.rtt, Some(Duration::from_nanos(2 * (10_000 + 800))));
        assert_eq!(world.node_as::<Echo>(b).rx, 1);
    }

    #[test]
    fn instant_links_have_latency_only() {
        let (mut world, a, _) = two_node_world(LinkParams::instant(Duration::from_millis(5)));
        world.run_until(Instant::from_secs(1));
        assert_eq!(
            world.node_as::<Pinger>(a).rtt,
            Some(Duration::from_millis(10))
        );
    }

    /// Sends `n` back-to-back frames on start.
    struct Burst {
        n: usize,
        size: usize,
    }

    impl Node for Burst {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for _ in 0..self.n {
                ctx.transmit(1, vec![0u8; self.size]);
            }
        }
        fn on_packet(&mut self, _: &mut Context<'_>, _: PortNo, _: &[u8]) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    struct Sink {
        rx: u64,
        last_at: Option<Instant>,
    }

    impl Node for Sink {
        fn on_packet(&mut self, ctx: &mut Context<'_>, _: PortNo, _: &[u8]) {
            self.rx += 1;
            self.last_at = Some(ctx.now());
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn run_entry_points_bootstrap_identically() {
        // The same scenario driven by run_until and by run_to_quiescence
        // must mark the world started and produce identical outcomes.
        let (mut deadline_world, da, db) = two_node_world(LinkParams::default());
        let (mut quiescent_world, qa, qb) = two_node_world(LinkParams::default());
        assert!(!deadline_world.started());
        assert!(!quiescent_world.started());
        deadline_world.run_until(Instant::from_secs(1));
        quiescent_world.run_to_quiescence(1_000_000);
        assert!(deadline_world.started());
        assert!(quiescent_world.started());
        assert_eq!(
            deadline_world.node_as::<Pinger>(da).rtt,
            quiescent_world.node_as::<Pinger>(qa).rtt
        );
        assert_eq!(
            deadline_world.node_as::<Echo>(db).rx,
            quiescent_world.node_as::<Echo>(qb).rx
        );
        assert_eq!(
            deadline_world.events_processed(),
            quiescent_world.events_processed()
        );
    }

    #[test]
    fn queue_overflow_drops() {
        let mut world = World::new(1);
        let a = world.add_node(Box::new(Burst { n: 10, size: 1000 }));
        let b = world.add_node(Box::new(Sink {
            rx: 0,
            last_at: None,
        }));
        // Queue holds only 3000 bytes; 10 x 1000-byte frames burst in.
        let (link, _, _) = world.connect(
            a,
            b,
            LinkParams::new(Duration::from_micros(1), 1_000_000_000, 3000),
        );
        world.run_until(Instant::from_secs(1));
        let delivered = world.node_as::<Sink>(b).rx;
        let dropped = world.link(link).ab.drops_queue;
        assert_eq!(delivered + dropped, 10);
        assert!(dropped > 0, "expected queue drops");
        // The backlog (including the frame in service) may not exceed
        // 3000 bytes, so exactly three 1000-byte frames are admitted.
        assert_eq!(delivered, 3);
    }

    #[test]
    fn serialization_spaces_frames() {
        let mut world = World::new(1);
        let a = world.add_node(Box::new(Burst { n: 3, size: 1250 }));
        let b = world.add_node(Box::new(Sink {
            rx: 0,
            last_at: None,
        }));
        // 1250 bytes at 1 Gb/s = 10 us serialization each.
        world.connect(
            a,
            b,
            LinkParams::new(Duration::from_micros(5), 1_000_000_000, 1 << 20),
        );
        world.run_until(Instant::from_secs(1));
        let sink = world.node_as::<Sink>(b);
        assert_eq!(sink.rx, 3);
        // Last frame completes serialization at 30 us, +5 us latency.
        assert_eq!(sink.last_at, Some(Instant::from_micros(35)));
    }

    #[test]
    fn down_links_drop_and_notify() {
        struct Watcher {
            down_seen: bool,
            up_seen: bool,
        }
        impl Node for Watcher {
            fn on_packet(&mut self, _: &mut Context<'_>, _: PortNo, _: &[u8]) {}
            fn on_link_status(&mut self, _: &mut Context<'_>, _: PortNo, up: bool) {
                if up {
                    self.up_seen = true;
                } else {
                    self.down_seen = true;
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let mut world = World::new(1);
        let a = world.add_node(Box::new(Watcher {
            down_seen: false,
            up_seen: false,
        }));
        let b = world.add_node(Box::new(Watcher {
            down_seen: false,
            up_seen: false,
        }));
        let (link, _, _) = world.connect(a, b, LinkParams::default());
        world.schedule_link_state(link, false, Instant::from_millis(10));
        world.schedule_link_state(link, true, Instant::from_millis(20));
        world.run_until(Instant::from_millis(30));
        for node in [a, b] {
            let w = world.node_as::<Watcher>(node);
            assert!(w.down_seen && w.up_seen);
        }
        assert!(world.link(link).up);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerNode {
            fired: Vec<u64>,
        }
        impl Node for TimerNode {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(Duration::from_millis(3), 3);
                ctx.set_timer(Duration::from_millis(1), 1);
                ctx.set_timer(Duration::from_millis(2), 2);
            }
            fn on_packet(&mut self, _: &mut Context<'_>, _: PortNo, _: &[u8]) {}
            fn on_timer(&mut self, _: &mut Context<'_>, token: u64) {
                self.fired.push(token);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let mut world = World::new(1);
        let n = world.add_node(Box::new(TimerNode { fired: vec![] }));
        world.run_until(Instant::from_millis(10));
        assert_eq!(world.node_as::<TimerNode>(n).fired, vec![1, 2, 3]);
    }

    #[test]
    fn control_channel_delivers_with_latency() {
        struct Controller {
            got: Vec<(NodeId, Vec<u8>)>,
            got_at: Option<Instant>,
        }
        impl Node for Controller {
            fn on_packet(&mut self, _: &mut Context<'_>, _: PortNo, _: &[u8]) {}
            fn on_control(&mut self, ctx: &mut Context<'_>, from: NodeId, bytes: &[u8]) {
                self.got.push((from, bytes.to_vec()));
                self.got_at = Some(ctx.now());
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        struct Agent {
            controller: NodeId,
        }
        impl Node for Agent {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.send_control(self.controller, vec![1, 2, 3]);
            }
            fn on_packet(&mut self, _: &mut Context<'_>, _: PortNo, _: &[u8]) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let mut world = World::new(1);
        let c = world.add_node(Box::new(Controller {
            got: vec![],
            got_at: None,
        }));
        let a = world.add_node(Box::new(Agent { controller: c }));
        world.set_control_latency(Duration::from_micros(100));
        world.run_until(Instant::from_secs(1));
        let ctl = world.node_as::<Controller>(c);
        assert_eq!(ctl.got, vec![(a, vec![1, 2, 3])]);
        assert_eq!(ctl.got_at, Some(Instant::from_micros(100)));
        assert_eq!(world.metrics().counter("sim.control_msgs"), 1);
        assert_eq!(world.metrics().counter("sim.control_bytes"), 3);
    }

    #[test]
    fn deterministic_replay() {
        fn run() -> (u64, u64) {
            let mut world = World::new(99);
            let a = world.add_node(Box::new(Burst { n: 50, size: 700 }));
            let b = world.add_node(Box::new(Sink {
                rx: 0,
                last_at: None,
            }));
            world.connect(
                a,
                b,
                LinkParams::new(Duration::from_micros(7), 100_000_000, 2000),
            );
            world.run_until(Instant::from_secs(1));
            (world.node_as::<Sink>(b).rx, world.events_processed())
        }
        assert_eq!(run(), run());
    }

    #[test]
    fn explicit_ports_and_peer_lookup() {
        struct Probe {
            peer: Option<(NodeId, PortNo)>,
        }
        impl Node for Probe {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                self.peer = ctx.peer_of(5);
            }
            fn on_packet(&mut self, _: &mut Context<'_>, _: PortNo, _: &[u8]) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut world = World::new(1);
        let a = world.add_node(Box::new(Probe { peer: None }));
        let b = world.add_node(Box::new(Probe { peer: None }));
        world.connect_ports(a, 5, b, 9, LinkParams::default());
        world.run_until(Instant::from_millis(1));
        assert_eq!(world.node_as::<Probe>(a).peer, Some((b, 9)));
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_connect_panics() {
        struct Dummy;
        impl Node for Dummy {
            fn on_packet(&mut self, _: &mut Context<'_>, _: PortNo, _: &[u8]) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut world = World::new(1);
        let a = world.add_node(Box::new(Dummy));
        let b = world.add_node(Box::new(Dummy));
        world.connect_ports(a, 1, b, 1, LinkParams::default());
        world.connect_ports(a, 1, b, 2, LinkParams::default());
    }

    /// Sends a control message to `peer` every millisecond.
    struct Chatter {
        peer: NodeId,
        got: u64,
    }

    impl Node for Chatter {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(Duration::from_millis(1), 0);
        }
        fn on_packet(&mut self, _: &mut Context<'_>, _: PortNo, _: &[u8]) {}
        fn on_timer(&mut self, ctx: &mut Context<'_>, _: u64) {
            ctx.send_control(self.peer, vec![0xAB]);
            ctx.set_timer(Duration::from_millis(1), 0);
        }
        fn on_control(&mut self, _: &mut Context<'_>, _: NodeId, _: &[u8]) {
            self.got += 1;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn fault_partition_blackholes_control() {
        use crate::fault::{FaultPlan, Window};
        let mut world = World::new(1);
        let a = world.add_node(Box::new(Chatter {
            peer: NodeId(1),
            got: 0,
        }));
        let b = world.add_node(Box::new(Chatter { peer: a, got: 0 }));
        // Partition for the first half of the run; ~50 of 100 messages
        // blackholed, the rest delivered after the heal.
        world.set_fault_plan(FaultPlan::new().partition(
            a,
            b,
            Window::new(Instant::ZERO, Instant::from_millis(50)),
        ));
        world.run_until(Instant::from_millis(100));
        let delivered = world.node_as::<Chatter>(b).got;
        assert!((45..=55).contains(&delivered), "delivered {delivered}");
        assert!(world.metrics().counter("fault.control_partitioned") >= 90);
    }

    #[test]
    fn fault_loss_and_duplication_are_counted() {
        use crate::fault::{FaultPlan, Window};
        let mut world = World::new(2);
        let a = world.add_node(Box::new(Chatter {
            peer: NodeId(1),
            got: 0,
        }));
        let b = world.add_node(Box::new(Chatter { peer: a, got: 0 }));
        world.set_fault_plan(
            FaultPlan::new()
                .control_loss(0.5, Window::always())
                .duplicate(0.5, Window::always()),
        );
        world.run_until(Instant::from_millis(1000));
        let m = world.metrics();
        let dropped = m.counter("fault.control_dropped");
        let duplicated = m.counter("fault.control_duplicated");
        // ~2000 sends: about half dropped, half the survivors doubled.
        assert!((800..=1200).contains(&dropped), "dropped {dropped}");
        assert!((350..=650).contains(&duplicated), "duplicated {duplicated}");
        // Everything sent either arrived or was dropped, modulo the few
        // messages still in flight at the deadline.
        let got = world.node_as::<Chatter>(a).got + world.node_as::<Chatter>(b).got;
        let expected = 2000 - dropped + duplicated;
        assert!(expected - got <= 4, "got {got}, expected ~{expected}");
    }

    #[test]
    fn fault_lossy_link_drops_data() {
        use crate::fault::{FaultPlan, Window};
        let mut world = World::new(3);
        let a = world.add_node(Box::new(Burst { n: 1000, size: 100 }));
        let b = world.add_node(Box::new(Sink {
            rx: 0,
            last_at: None,
        }));
        let (link, _, _) = world.connect(a, b, LinkParams::instant(Duration::from_micros(1)));
        world.set_fault_plan(FaultPlan::new().link_loss(Some(link), 0.3, Window::always()));
        world.run_until(Instant::from_secs(1));
        let rx = world.node_as::<Sink>(b).rx;
        assert!((620..=780).contains(&rx), "delivered {rx}");
        assert_eq!(world.metrics().counter("fault.data_dropped"), 1000 - rx);
    }

    #[test]
    fn chaos_replay_is_deterministic() {
        use crate::fault::{FaultPlan, Window};
        fn run() -> (u64, u64, u64) {
            let mut world = World::new(77);
            let a = world.add_node(Box::new(Chatter {
                peer: NodeId(1),
                got: 0,
            }));
            let b = world.add_node(Box::new(Chatter { peer: a, got: 0 }));
            world.set_control_jitter(Duration::from_micros(30));
            world.set_fault_plan(
                FaultPlan::new()
                    .control_loss(0.2, Window::always())
                    .duplicate(
                        0.1,
                        Window::new(Instant::from_millis(10), Instant::from_millis(40)),
                    )
                    .partition(
                        a,
                        b,
                        Window::new(Instant::from_millis(50), Instant::from_millis(60)),
                    ),
            );
            world.run_until(Instant::from_millis(100));
            (
                world.node_as::<Chatter>(a).got,
                world.node_as::<Chatter>(b).got,
                world.events_processed(),
            )
        }
        assert_eq!(run(), run());
    }

    #[test]
    fn utilization_accounting() {
        let mut world = World::new(1);
        let a = world.add_node(Box::new(Burst { n: 100, size: 1250 }));
        let b = world.add_node(Box::new(Sink {
            rx: 0,
            last_at: None,
        }));
        // 100 x 1250 B = 1 Mb on a 10 Mb/s link = 100 ms busy.
        let (link, _, _) = world.connect(
            a,
            b,
            LinkParams::new(Duration::from_micros(1), 10_000_000, 1 << 20),
        );
        world.run_until(Instant::from_millis(200));
        let util = world.link(link).utilization_ab(Duration::from_millis(200));
        assert!((util - 0.5).abs() < 0.01, "utilization was {util}");
    }
}
