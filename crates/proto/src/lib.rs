//! # zen-proto — the switch ↔ controller control protocol
//!
//! A binary, length-prefixed protocol in the mould of OpenFlow 1.3,
//! carrying the message set an SDN deployment actually exercises:
//! session setup (HELLO / FEATURES), the reactive path (PACKET_IN /
//! PACKET_OUT), state programming (FLOW_MOD / GROUP_MOD / METER_MOD),
//! asynchronous notifications (PORT_STATUS / FLOW_REMOVED), statistics
//! (STATS_REQUEST / STATS_REPLY), liveness (ECHO), and ordering
//! (BARRIER).
//!
//! Every message is framed as:
//!
//! ```text
//! +---------+--------+----------------+------------+----------------+
//! | version | type   | length (u32)   | xid (u32)  | body ...       |
//! |  1 B    |  1 B   | whole message  | request id |                |
//! +---------+--------+----------------+------------+----------------+
//! ```
//!
//! [`codec`] provides [`codec::encode`] / [`codec::decode`] and a
//! [`codec::FrameAssembler`] for reassembling messages from a byte
//! stream. Decoding is total: malformed input yields
//! [`CodecError`], never a panic.
//!
//! Match, action, flow-spec and group types are the native
//! `zen-dataplane` types — the protocol is exactly as expressive as the
//! data plane it programs, as in OpenFlow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;

pub use codec::{
    decode, decode_view, encode, encode_packet_out, ew_entry_bytes, intent_entry_bytes,
    match_bytes, CodecError, FrameAssembler, MessageView, HEADER_LEN,
};

use zen_dataplane::{FlowMatch, FlowSpec, GroupDesc, PortNo};

/// The protocol version this crate implements.
pub const VERSION: u8 = 1;

/// Description of one switch port in FEATURES_REPLY / PORT_STATUS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortDesc {
    /// The port number.
    pub port_no: PortNo,
    /// Operational state.
    pub up: bool,
}

/// FLOW_MOD sub-commands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowModCmd {
    /// Install (replacing an identical priority+match entry).
    Add(FlowSpec),
    /// Strict delete by (priority, match).
    DeleteStrict {
        /// Entry priority.
        priority: u16,
        /// Entry match.
        matcher: FlowMatch,
    },
    /// Delete every entry carrying a cookie (all tables).
    DeleteByCookie {
        /// The cookie.
        cookie: u64,
    },
}

/// GROUP_MOD sub-commands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupModCmd {
    /// Install or replace a group.
    Add(GroupDesc),
    /// Remove a group.
    Delete,
}

/// METER_MOD sub-commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeterModCmd {
    /// Install or replace: sustained rate and burst.
    Add {
        /// Rate in bits/sec.
        rate_bps: u64,
        /// Burst in bytes.
        burst_bytes: u64,
    },
    /// Remove the meter.
    Delete,
}

/// What a STATS_REQUEST asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsKind {
    /// Per-flow stats of one table (or all with `table_id == 0xff`).
    Flow {
        /// Table selector.
        table_id: u8,
    },
    /// Per-port counters (`port_no == 0` selects all ports).
    Port {
        /// Port selector.
        port_no: PortNo,
    },
    /// Per-table entry counts and hit/miss counters.
    Table,
    /// Flow-cache (microflow/megaflow) effectiveness counters.
    Cache,
}

/// One flow-stats record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowStats {
    /// Table holding the entry.
    pub table_id: u8,
    /// Entry priority.
    pub priority: u16,
    /// Entry cookie.
    pub cookie: u64,
    /// Packets matched.
    pub packets: u64,
    /// Bytes matched.
    pub bytes: u64,
}

/// One port-stats record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortStatsRec {
    /// The port.
    pub port_no: PortNo,
    /// Frames received.
    pub rx_frames: u64,
    /// Bytes received.
    pub rx_bytes: u64,
    /// Frames emitted.
    pub tx_frames: u64,
    /// Bytes emitted.
    pub tx_bytes: u64,
}

/// One table-stats record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableStats {
    /// The table.
    pub table_id: u8,
    /// Installed entries.
    pub active: u32,
    /// Configured capacity bound; 0 = unbounded.
    pub max_entries: u32,
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Entries displaced by capacity eviction.
    pub evictions: u64,
    /// Adds bounced with `TABLE_FULL` under the refuse policy.
    pub refusals: u64,
}

/// Flow-cache effectiveness counters, as carried on the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStatsRec {
    /// Exact-match (microflow) tier hits.
    pub micro_hits: u64,
    /// Wildcard (megaflow) tier hits.
    pub mega_hits: u64,
    /// Slow-path classifications.
    pub misses: u64,
    /// Programs inserted.
    pub inserts: u64,
    /// Whole-cache invalidations.
    pub invalidations: u64,
    /// Microflow-tier capacity evictions (turnover, including megaflow
    /// promotions cycling back out of tier 1).
    pub micro_evictions: u64,
    /// Megaflow-tier capacity evictions (wildcard-tier pressure).
    pub mega_evictions: u64,
    /// Current cache generation.
    pub generation: u64,
    /// Entries resident across both tiers.
    pub entries: u64,
}

/// One entry of the installed-state digest carried by
/// [`Message::HelloResync`]: a cookie and how many flow entries carry it
/// (summed across all tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CookieCount {
    /// The flow cookie.
    pub cookie: u64,
    /// Installed entries carrying it.
    pub count: u32,
}

/// A STATS_REPLY body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsBody {
    /// Flow records.
    Flow(Vec<FlowStats>),
    /// Port records.
    Port(Vec<PortStatsRec>),
    /// Table records.
    Table(Vec<TableStats>),
    /// Flow-cache counters.
    Cache(CacheStatsRec),
}

/// Why a FLOW_REMOVED was sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemovedReason {
    /// Idle timeout.
    IdleTimeout,
    /// Hard timeout.
    HardTimeout,
    /// Controller delete.
    Delete,
    /// Displaced by a capacity eviction (table-full, evict policy).
    Eviction,
}

impl From<zen_dataplane::RemovedReason> for RemovedReason {
    fn from(value: zen_dataplane::RemovedReason) -> RemovedReason {
        match value {
            zen_dataplane::RemovedReason::IdleTimeout => RemovedReason::IdleTimeout,
            zen_dataplane::RemovedReason::HardTimeout => RemovedReason::HardTimeout,
            zen_dataplane::RemovedReason::Delete => RemovedReason::Delete,
            zen_dataplane::RemovedReason::Eviction => RemovedReason::Eviction,
        }
    }
}

/// Error codes carried by [`Message::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Version negotiation failed.
    HelloFailed,
    /// The request was understood but invalid (bad table, bad group...).
    BadRequest,
    /// The switch cannot satisfy the request (table full under the
    /// refuse overflow policy). The diagnostic bytes carry the bounced
    /// flow-mod's xid (big-endian u32) so the sender can retire it from
    /// its pending-mod table instead of retransmitting forever.
    TableFull,
    /// A state mod arrived on a connection that does not hold the
    /// Master role for this switch. The diagnostic bytes carry the
    /// offending request's xid (big-endian u32) so the sender can
    /// reconcile its pending-mod table.
    NotMaster,
}

/// The role a controller connection holds toward a switch, as in
/// OpenFlow's OFPT_ROLE_REQUEST. Exactly one connection may be Master;
/// Equals receive asynchronous messages and may inject packets but may
/// not mutate state; Slaves get synchronous replies only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Role {
    /// Full control: state mods accepted, async messages delivered.
    Master,
    /// Read-mostly: stats and packet-out allowed, mods rejected.
    Equal,
    /// Standby: synchronous request/reply only.
    Slave,
}

/// One replicated network-view mutation, gossiped between controller
/// replicas (the east-west interface). Events carry enough to rebuild
/// the shared portions of a [`NetworkView`]-like store; switch liveness
/// and port state are *not* replicated because every replica observes
/// them first-hand over its own switch connections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViewEvent {
    /// A directed link was discovered (LLDP confirmed).
    LinkAdd {
        /// Source datapath id.
        from_dpid: u64,
        /// Source port.
        from_port: PortNo,
        /// Destination datapath id.
        to_dpid: u64,
        /// Destination port.
        to_port: PortNo,
    },
    /// A directed link lapsed or was torn down.
    LinkDel {
        /// Source datapath id.
        from_dpid: u64,
        /// Source port.
        from_port: PortNo,
    },
    /// A host was located at an edge port.
    HostLearned {
        /// Host MAC.
        mac: zen_wire::EthernetAddress,
        /// Attachment switch.
        dpid: u64,
        /// Attachment port.
        port: PortNo,
        /// Host IP, if observed.
        ip: Option<zen_wire::Ipv4Address>,
    },
    /// The master's cookie shadow for one switch (full replacement), so
    /// a standby taking over can diff-resync without re-flooding.
    ShadowSet {
        /// The switch.
        dpid: u64,
        /// Per-cookie installed flow-entry counts, ascending by cookie.
        cookies: Vec<CookieCount>,
    },
    /// A content stamp for one application's programming of one switch
    /// (a hash of the desired flow/group state). A replica gaining
    /// mastership compares the stamp against its own computed desired
    /// state and reprograms only on mismatch.
    ProgramStamp {
        /// The switch.
        dpid: u64,
        /// The application cookie the stamp belongs to.
        cookie: u64,
        /// Hash of the desired per-switch program.
        hash: u64,
    },
}

/// One entry of a replica's monotonic event log: the origin replica,
/// its per-origin sequence number, and the mastership term it was
/// logged under. `(term, seq, origin)` orders concurrent writes to the
/// same key last-writer-wins, as in ONOS's eventually-consistent maps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EwEntry {
    /// Index of the replica that logged the event.
    pub origin: u32,
    /// Position in the origin's log (1-based, contiguous).
    pub seq: u64,
    /// Mastership term at the origin when logged.
    pub term: u64,
    /// The mutation itself.
    pub event: ViewEvent,
}

/// One summary line of a replica's per-origin log position, carried by
/// [`Message::EwDigest`] and [`Message::EwSnapshot`]: the retention
/// floor (entries at or below it are pruned), the applied head, and the
/// rolling chain hash over the origin's log up to the head. Two
/// replicas with equal `(head, hash)` hold byte-identical logs for that
/// origin; a peer whose head is behind fetches exactly the missing
/// range, and a hash mismatch at an equal head flags divergence worth a
/// snapshot resync.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OriginHead {
    /// The origin replica the summary describes.
    pub origin: u32,
    /// Seqs at or below this are pruned at the sender.
    pub floor: u64,
    /// Highest contiguous seq the sender has applied from the origin.
    pub head: u64,
    /// Rolling chain hash over entries `1..=head`.
    pub hash: u64,
}

/// A linearizable mutation carried by the replicated intent log — the
/// few control-plane writes that must not ride the eventually
/// consistent event store (see `zen-consensus`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Intent {
    /// A leader barrier appended on activation: committing it commits
    /// every earlier-term entry beneath it (the Raft no-op). Never
    /// proposed by applications.
    Noop,
    /// Install (or withdraw) a network-wide ACL deny rule.
    AclDeny {
        /// Rule priority.
        priority: u16,
        /// The traffic to deny.
        matcher: FlowMatch,
        /// `true` installs the deny, `false` withdraws it.
        install: bool,
    },
    /// Pin (or unpin) mastership of one switch to a replica, overriding
    /// the deterministic assignment while the pinned replica is alive.
    MastershipPin {
        /// The switch.
        dpid: u64,
        /// The replica to pin mastership to.
        replica: u32,
        /// `true` pins, `false` releases the pin.
        pinned: bool,
    },
}

/// One entry of the replicated intent log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntentEntry {
    /// Position in the replicated log (1-based, contiguous).
    pub index: u64,
    /// Leader term the entry was appended under.
    pub term: u64,
    /// Replica that proposed the intent (receives the commit callback).
    pub origin: u32,
    /// Proposer-chosen token identifying the proposal (0 for no-ops).
    pub token: u64,
    /// The intent itself.
    pub intent: Intent,
}

/// A control-channel message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Session start; carries the sender's version.
    Hello {
        /// Highest protocol version the sender speaks.
        version: u8,
    },
    /// An error notification referencing the offending request's xid.
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// Optional diagnostic bytes.
        data: Vec<u8>,
    },
    /// Liveness probe.
    EchoRequest {
        /// Opaque token echoed back.
        token: u64,
    },
    /// Liveness response.
    EchoReply {
        /// The probed token.
        token: u64,
    },
    /// Ask the switch to describe itself.
    FeaturesRequest,
    /// The switch's self-description.
    FeaturesReply {
        /// Datapath id.
        dpid: u64,
        /// Number of flow tables.
        n_tables: u8,
        /// The switch's ports.
        ports: Vec<PortDesc>,
    },
    /// A frame punted to the controller.
    PacketIn {
        /// Ingress port.
        in_port: PortNo,
        /// Table that punted it.
        table_id: u8,
        /// `true` if punted by table miss, `false` if by action.
        is_miss: bool,
        /// The (possibly truncated) frame.
        frame: Vec<u8>,
    },
    /// A frame the controller injects into the data plane.
    PacketOut {
        /// Treat the frame as if received on this port (0 = none).
        in_port: PortNo,
        /// Actions to run on it.
        actions: Vec<zen_dataplane::Action>,
        /// The frame.
        frame: Vec<u8>,
    },
    /// Program a flow table.
    FlowMod {
        /// Target table.
        table_id: u8,
        /// The command.
        cmd: FlowModCmd,
    },
    /// Program the group table.
    GroupMod {
        /// Target group id.
        group_id: u32,
        /// The command.
        cmd: GroupModCmd,
    },
    /// Program a meter.
    MeterMod {
        /// Target meter id.
        meter_id: u32,
        /// The command.
        cmd: MeterModCmd,
    },
    /// A port changed operational state.
    PortStatus {
        /// The port description after the change.
        port: PortDesc,
    },
    /// An entry was evicted or deleted.
    FlowRemoved {
        /// Table it lived in.
        table_id: u8,
        /// Its priority.
        priority: u16,
        /// Its cookie.
        cookie: u64,
        /// Why it went away.
        reason: RemovedReason,
        /// Lifetime packet count.
        packets: u64,
        /// Lifetime byte count.
        bytes: u64,
    },
    /// Fence: the switch answers after all prior messages took effect.
    ///
    /// Carries the xids of the state mods the fence covers: on an
    /// unreliable channel, "the barrier came back" does not prove the
    /// mods sent before it arrived, so the reply reports which of the
    /// covered xids the switch actually applied.
    BarrierRequest {
        /// Xids of the unacknowledged mods this fence covers.
        xids: Vec<u32>,
    },
    /// Fence acknowledgement.
    BarrierReply {
        /// The subset of the request's xids the switch has applied.
        /// Anything missing was lost in transit and needs resending.
        applied: Vec<u32>,
    },
    /// Ask for statistics.
    StatsRequest {
        /// Which statistics.
        kind: StatsKind,
    },
    /// Statistics response.
    StatsReply {
        /// The records.
        body: StatsBody,
    },
    /// Reconnect handshake: after a control-channel outage the switch
    /// reports a digest of its installed flow state (per-cookie entry
    /// counts plus a mutation generation) so the controller can
    /// diff-resync instead of blindly reinstalling everything.
    HelloResync {
        /// Monotonic count of state-mutating mods the switch has
        /// applied since boot; two digests with equal generations
        /// describe identical state.
        generation: u64,
        /// Per-cookie installed flow-entry counts, ascending by cookie.
        cookies: Vec<CookieCount>,
    },
    /// Controller asks a switch for a fresh [`Message::HelloResync`].
    ResyncRequest,
    /// A controller claims a role for this switch connection, carrying
    /// its mastership term and replica index; the highest `(term,
    /// replica)` claim wins a contested mastership.
    RoleRequest {
        /// The requested role.
        role: Role,
        /// The claimant's mastership term.
        term: u64,
        /// The claimant's replica index.
        replica: u32,
    },
    /// The switch's answer to a [`Message::RoleRequest`]: the role
    /// actually granted and the `(term, replica)` of the connection
    /// currently holding Master, so a losing claimant learns who
    /// outranked it.
    RoleReply {
        /// The granted role.
        role: Role,
        /// Current master's term.
        term: u64,
        /// Current master's replica index.
        replica: u32,
    },
    /// East-west liveness + anti-entropy summary between replicas: the
    /// sender's identity, mastership term, and per-origin applied
    /// high-water marks, from which a peer computes what to resend.
    EwHeartbeat {
        /// Sender's replica index.
        replica: u32,
        /// Sender's mastership term.
        term: u64,
        /// `(origin, highest contiguous seq applied)` pairs, ascending
        /// by origin.
        acks: Vec<(u32, u64)>,
    },
    /// A batch of east-west log entries, contiguous per origin.
    EwEvents {
        /// Sender's replica index.
        replica: u32,
        /// The entries, ascending by seq.
        entries: Vec<EwEntry>,
    },
    /// Digest-mode anti-entropy summary: per-origin log heads and chain
    /// hashes instead of a blind suffix resend. A peer compares the
    /// digest against its own applied marks and pulls exactly the
    /// missing ranges with [`Message::EwFetch`].
    EwDigest {
        /// Sender's replica index.
        replica: u32,
        /// Sender's mastership term.
        term: u64,
        /// One summary per origin, ascending by origin.
        heads: Vec<OriginHead>,
    },
    /// Pull request for east-west log ranges a digest showed missing.
    /// The range `(origin, 0, 0)` asks for a full snapshot (bootstrap,
    /// or divergence detected by a chain-hash mismatch).
    EwFetch {
        /// Sender's replica index.
        replica: u32,
        /// `(origin, from_seq, to_seq)` inclusive ranges to resend.
        ranges: Vec<(u32, u64, u64)>,
    },
    /// A checksummed snapshot of the winning east-west writes: the
    /// per-origin heads being installed plus one entry per logical key
    /// (the current last-writer-wins state). Serves bootstrap and
    /// requests below the sender's retention floor, replacing a full
    /// log replay with a state transfer.
    EwSnapshot {
        /// Sender's replica index.
        replica: u32,
        /// Per-origin heads the snapshot advances the receiver to.
        heads: Vec<OriginHead>,
        /// The winning entry per logical key, in key order.
        entries: Vec<EwEntry>,
        /// Chain hash over `entries`, for integrity.
        checksum: u64,
    },
    /// Forward an intent proposal to the current consensus leader.
    IntentPropose {
        /// Proposing replica's index.
        replica: u32,
        /// Proposer-chosen token (echoed in the commit callback).
        token: u64,
        /// The proposed intent.
        intent: Intent,
    },
    /// Leader-to-follower intent-log replication (also the consensus
    /// heartbeat): entries after `(prev_index, prev_term)` plus the
    /// leader's commit index.
    IntentAppend {
        /// The leader's replica index.
        leader: u32,
        /// The leader's term.
        term: u64,
        /// Index of the entry immediately before `entries`.
        prev_index: u64,
        /// Term of the entry at `prev_index`.
        prev_term: u64,
        /// The leader's commit index.
        commit: u64,
        /// Entries to append, ascending by index.
        entries: Vec<IntentEntry>,
    },
    /// Follower response to [`Message::IntentAppend`].
    IntentAck {
        /// The follower's replica index.
        replica: u32,
        /// The follower's term (a higher term steps the leader down).
        term: u64,
        /// On success: highest index now matching the leader's log. On
        /// failure: the follower's commit index, as a resend hint.
        match_index: u64,
        /// Whether the consistency check at `prev_index` passed.
        success: bool,
    },
    /// Pull a peer's intent-log suffix: a freshly elected leader syncs
    /// from a majority before activating, so every committed entry
    /// survives the failover.
    IntentFetch {
        /// The fetching replica's index.
        replica: u32,
        /// The fetcher's term.
        term: u64,
        /// Return entries with index strictly above this.
        from_index: u64,
    },
    /// Intent-log state transfer, serving both fetch replies and
    /// snapshot installs to followers behind the leader's retention
    /// floor. When `snap_index > 0` the receiver first installs the
    /// materialized committed state (`snap_state`) at that index, then
    /// appends `entries`.
    IntentCatchup {
        /// Sending replica's index.
        replica: u32,
        /// Sender's term.
        term: u64,
        /// Index the snapshot state materializes (0 = no snapshot).
        snap_index: u64,
        /// Term of the entry at `snap_index`.
        snap_term: u64,
        /// The active committed entries at `snap_index`, in key order.
        snap_state: Vec<IntentEntry>,
        /// Every committed `(origin, token)` pair at `snap_index`,
        /// ascending — including tokens of entries later superseded or
        /// withdrawn, which `snap_state` alone cannot reconstruct. The
        /// installer adopts these for at-most-once proposal dedup.
        snap_tokens: Vec<(u32, u64)>,
        /// Log entries above the snapshot (or above the fetch point).
        entries: Vec<IntentEntry>,
        /// Sender's commit index.
        commit: u64,
        /// Chain hash over `snap_tokens`, `snap_state`, and `entries`,
        /// for integrity.
        checksum: u64,
    },
}

impl Message {
    /// The wire type tag (used by the codec and for telemetry).
    pub fn type_id(&self) -> u8 {
        match self {
            Message::Hello { .. } => 0,
            Message::Error { .. } => 1,
            Message::EchoRequest { .. } => 2,
            Message::EchoReply { .. } => 3,
            Message::FeaturesRequest => 4,
            Message::FeaturesReply { .. } => 5,
            Message::PacketIn { .. } => 6,
            Message::PacketOut { .. } => 7,
            Message::FlowMod { .. } => 8,
            Message::GroupMod { .. } => 9,
            Message::MeterMod { .. } => 10,
            Message::PortStatus { .. } => 11,
            Message::FlowRemoved { .. } => 12,
            Message::BarrierRequest { .. } => 13,
            Message::BarrierReply { .. } => 14,
            Message::StatsRequest { .. } => 15,
            Message::StatsReply { .. } => 16,
            Message::HelloResync { .. } => 17,
            Message::ResyncRequest => 18,
            Message::RoleRequest { .. } => 19,
            Message::RoleReply { .. } => 20,
            Message::EwHeartbeat { .. } => 21,
            Message::EwEvents { .. } => 22,
            Message::EwDigest { .. } => 23,
            Message::EwFetch { .. } => 24,
            Message::EwSnapshot { .. } => 25,
            Message::IntentPropose { .. } => 26,
            Message::IntentAppend { .. } => 27,
            Message::IntentAck { .. } => 28,
            Message::IntentFetch { .. } => 29,
            Message::IntentCatchup { .. } => 30,
        }
    }
}
