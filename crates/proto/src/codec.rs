//! Binary encoding and decoding of control messages.
//!
//! Integers are big-endian. Decoding is bounds-checked everywhere and
//! returns [`CodecError`] on any malformation; every error names the
//! field and byte offset that failed, so a corrupt frame is debuggable
//! from the error alone.
//!
//! Decoding is zero-copy on the hot path: [`decode_view`] yields a
//! [`MessageView`] whose bulk byte payloads (PACKET_IN / PACKET_OUT
//! frames, ERROR data) are slices **borrowing the receive buffer** —
//! no allocation, no memcpy. Structured messages (flow mods, stats,
//! …) decode to owned values inside [`MessageView::Owned`]: they carry
//! no bulk bytes, and their consumers need ownership anyway. The
//! compatibility wrapper [`decode`] materializes a fully owned
//! [`Message`] when the caller wants to keep it past the buffer.

use zen_dataplane::{Action, Bucket, FlowMatch, FlowSpec, GroupDesc, GroupType, PortNo};
use zen_wire::{EthernetAddress, Ipv4Address, Ipv4Cidr};

use crate::{
    CacheStatsRec, CookieCount, ErrorCode, EwEntry, FlowModCmd, FlowStats, GroupModCmd, Intent,
    IntentEntry, Message, MeterModCmd, OriginHead, PortDesc, PortStatsRec, RemovedReason, Role,
    StatsBody, StatsKind, TableStats, ViewEvent, VERSION,
};

/// The fixed message header length: version, type, length (u32), xid.
pub const HEADER_LEN: usize = 1 + 1 + 4 + 4;

/// Decoding errors. Offsets are absolute frame offsets (0 = the
/// version byte), so an error locates the exact bad byte on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes than the structure requires.
    Truncated {
        /// Frame offset where the read started.
        offset: usize,
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually available from `offset`.
        available: usize,
    },
    /// The version byte is not [`VERSION`].
    BadVersion {
        /// The version byte found.
        found: u8,
    },
    /// Unknown message type tag.
    UnknownType {
        /// The type byte found.
        found: u8,
    },
    /// The header's length field claims less than the fixed header.
    BadLength {
        /// The claimed total frame length.
        claimed: usize,
    },
    /// An enum discriminant held an undefined value.
    BadTag {
        /// Which field (dotted path, e.g. `"flow_mod.cmd"`).
        field: &'static str,
        /// The undefined value found.
        value: u32,
        /// Frame offset of the discriminant.
        offset: usize,
    },
    /// A structurally valid field held a semantically invalid value.
    BadField {
        /// Which field.
        field: &'static str,
        /// Frame offset where the field starts.
        offset: usize,
    },
    /// A count field exceeds what the remaining body could possibly
    /// hold — rejected before allocating.
    CountOverflow {
        /// Which repeated field.
        field: &'static str,
        /// The claimed element count.
        count: usize,
        /// Upper bound on elements the remaining bytes could hold.
        capacity: usize,
    },
    /// Body bytes left over after the typed payload was fully decoded.
    TrailingBytes {
        /// Frame offset where the unconsumed bytes start.
        offset: usize,
        /// How many bytes are left over.
        trailing: usize,
    },
}

impl CodecError {
    /// Whether this error means "feed me more bytes" (a frame cut off
    /// mid-stream) rather than "this frame is garbage". Stream
    /// consumers retry truncation once more bytes arrive and treat
    /// everything else as a protocol error.
    pub fn is_truncated(&self) -> bool {
        matches!(self, CodecError::Truncated { .. })
    }
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            CodecError::Truncated {
                offset,
                needed,
                available,
            } => write!(
                f,
                "truncated at offset {offset}: needed {needed} bytes, {available} available"
            ),
            CodecError::BadVersion { found } => {
                write!(f, "unsupported protocol version {found}")
            }
            CodecError::UnknownType { found } => write!(f, "unknown message type {found}"),
            CodecError::BadLength { claimed } => {
                write!(f, "header claims impossible frame length {claimed}")
            }
            CodecError::BadTag {
                field,
                value,
                offset,
            } => write!(f, "undefined {field} tag {value} at offset {offset}"),
            CodecError::BadField { field, offset } => {
                write!(f, "invalid {field} at offset {offset}")
            }
            CodecError::CountOverflow {
                field,
                count,
                capacity,
            } => write!(
                f,
                "{field} count {count} exceeds remaining capacity {capacity}"
            ),
            CodecError::TrailingBytes { offset, trailing } => {
                write!(f, "{trailing} unconsumed body bytes at offset {offset}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

type Result<T> = core::result::Result<T, CodecError>;

// ---------------------------------------------------------------- writer

/// Big-endian append helpers over a plain `Vec<u8>`; the encoder needs
/// nothing more than this, so the workspace carries no buffer crate.
trait Put {
    fn put_u8(&mut self, v: u8);
    fn put_u16(&mut self, v: u16);
    fn put_u32(&mut self, v: u32);
    fn put_u64(&mut self, v: u64);
    fn put_slice(&mut self, s: &[u8]);
}

impl Put for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

// ---------------------------------------------------------------- reader

/// A bounds-checked cursor over a message body. `base` is the body's
/// absolute offset within the frame, so errors report frame offsets.
struct Rd<'a> {
    buf: &'a [u8],
    at: usize,
    base: usize,
}

impl<'a> Rd<'a> {
    fn new(buf: &'a [u8], base: usize) -> Rd<'a> {
        Rd { buf, at: 0, base }
    }

    /// Absolute frame offset of the next unread byte.
    fn pos(&self) -> usize {
        self.base + self.at
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.at + n > self.buf.len() {
            return Err(CodecError::Truncated {
                offset: self.pos(),
                needed: n,
                available: self.buf.len() - self.at,
            });
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn mac(&mut self) -> Result<EthernetAddress> {
        Ok(EthernetAddress::from_bytes(self.take(6)?))
    }

    fn ip(&mut self) -> Result<Ipv4Address> {
        Ok(Ipv4Address::from_bytes(self.take(4)?))
    }

    fn cidr(&mut self, field: &'static str) -> Result<Ipv4Cidr> {
        let offset = self.pos();
        let addr = self.ip()?;
        let plen = self.u8()?;
        Ipv4Cidr::new(addr, plen).map_err(|_| CodecError::BadField { field, offset })
    }

    fn finish(&self) -> Result<()> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes {
                offset: self.pos(),
                trailing: self.buf.len() - self.at,
            })
        }
    }
}

// ------------------------------------------------------------ sub-codecs

fn put_match(out: &mut Vec<u8>, m: &FlowMatch) {
    let mut bits = 0u16;
    for (i, present) in [
        m.in_port.is_some(),
        m.eth_src.is_some(),
        m.eth_dst.is_some(),
        m.ethertype.is_some(),
        m.vlan.is_some(),
        m.ipv4_src.is_some(),
        m.ipv4_dst.is_some(),
        m.ip_proto.is_some(),
        m.l4_src.is_some(),
        m.l4_dst.is_some(),
        m.epoch.is_some(),
    ]
    .into_iter()
    .enumerate()
    {
        if present {
            bits |= 1 << i;
        }
    }
    out.put_u16(bits);
    if let Some(p) = m.in_port {
        out.put_u32(p);
    }
    if let Some(a) = m.eth_src {
        out.put_slice(a.as_bytes());
    }
    if let Some(a) = m.eth_dst {
        out.put_slice(a.as_bytes());
    }
    if let Some(t) = m.ethertype {
        out.put_u16(t);
    }
    if let Some(v) = m.vlan {
        match v {
            Some(vid) => {
                out.put_u8(1);
                out.put_u16(vid);
            }
            None => {
                out.put_u8(0);
                out.put_u16(0);
            }
        }
    }
    if let Some(c) = m.ipv4_src {
        out.put_slice(c.address().as_bytes());
        out.put_u8(c.prefix_len());
    }
    if let Some(c) = m.ipv4_dst {
        out.put_slice(c.address().as_bytes());
        out.put_u8(c.prefix_len());
    }
    if let Some(p) = m.ip_proto {
        out.put_u8(p);
    }
    if let Some(p) = m.l4_src {
        out.put_u16(p);
    }
    if let Some(p) = m.l4_dst {
        out.put_u16(p);
    }
    if let Some(e) = m.epoch {
        match e {
            Some(tag) => {
                out.put_u8(1);
                out.put_u16(tag);
            }
            None => {
                out.put_u8(0);
                out.put_u16(0);
            }
        }
    }
}

fn get_match(rd: &mut Rd<'_>) -> Result<FlowMatch> {
    let bits_at = rd.pos();
    let bits = rd.u16()?;
    if bits >> 11 != 0 {
        return Err(CodecError::BadTag {
            field: "match.fields",
            value: bits as u32,
            offset: bits_at,
        });
    }
    let mut m = FlowMatch::ANY;
    if bits & (1 << 0) != 0 {
        m.in_port = Some(rd.u32()?);
    }
    if bits & (1 << 1) != 0 {
        m.eth_src = Some(rd.mac()?);
    }
    if bits & (1 << 2) != 0 {
        m.eth_dst = Some(rd.mac()?);
    }
    if bits & (1 << 3) != 0 {
        m.ethertype = Some(rd.u16()?);
    }
    if bits & (1 << 4) != 0 {
        let tagged_at = rd.pos();
        let tagged = rd.u8()?;
        let vid = rd.u16()?;
        m.vlan = Some(match tagged {
            0 => None,
            1 => Some(vid),
            other => {
                return Err(CodecError::BadTag {
                    field: "match.vlan_tagged",
                    value: other as u32,
                    offset: tagged_at,
                })
            }
        });
    }
    if bits & (1 << 5) != 0 {
        m.ipv4_src = Some(rd.cidr("match.ipv4_src")?);
    }
    if bits & (1 << 6) != 0 {
        m.ipv4_dst = Some(rd.cidr("match.ipv4_dst")?);
    }
    if bits & (1 << 7) != 0 {
        m.ip_proto = Some(rd.u8()?);
    }
    if bits & (1 << 8) != 0 {
        m.l4_src = Some(rd.u16()?);
    }
    if bits & (1 << 9) != 0 {
        m.l4_dst = Some(rd.u16()?);
    }
    if bits & (1 << 10) != 0 {
        let stamped_at = rd.pos();
        let stamped = rd.u8()?;
        let tag = rd.u16()?;
        m.epoch = Some(match stamped {
            0 => None,
            1 => Some(tag),
            other => {
                return Err(CodecError::BadTag {
                    field: "match.epoch_stamped",
                    value: other as u32,
                    offset: stamped_at,
                })
            }
        });
    }
    Ok(m)
}

fn put_action(out: &mut Vec<u8>, a: &Action) {
    match *a {
        Action::Output(p) => {
            out.put_u8(0);
            out.put_u32(p);
        }
        Action::Flood => out.put_u8(1),
        Action::ToController { max_len } => {
            out.put_u8(2);
            out.put_u16(max_len);
        }
        Action::SetEthSrc(mac) => {
            out.put_u8(3);
            out.put_slice(mac.as_bytes());
        }
        Action::SetEthDst(mac) => {
            out.put_u8(4);
            out.put_slice(mac.as_bytes());
        }
        Action::SetIpv4Src(ip) => {
            out.put_u8(5);
            out.put_slice(ip.as_bytes());
        }
        Action::SetIpv4Dst(ip) => {
            out.put_u8(6);
            out.put_slice(ip.as_bytes());
        }
        Action::SetDscp(v) => {
            out.put_u8(7);
            out.put_u8(v);
        }
        Action::DecTtl => out.put_u8(8),
        Action::PushVlan(vid) => {
            out.put_u8(9);
            out.put_u16(vid);
        }
        Action::PopVlan => out.put_u8(10),
        Action::Group(id) => {
            out.put_u8(11);
            out.put_u32(id);
        }
        Action::Meter(id) => {
            out.put_u8(12);
            out.put_u32(id);
        }
        Action::SetEpoch(tag) => {
            out.put_u8(13);
            out.put_u16(tag);
        }
        Action::PopEpoch => out.put_u8(14),
    }
}

fn get_action(rd: &mut Rd<'_>) -> Result<Action> {
    let tag_at = rd.pos();
    Ok(match rd.u8()? {
        0 => Action::Output(rd.u32()?),
        1 => Action::Flood,
        2 => Action::ToController { max_len: rd.u16()? },
        3 => Action::SetEthSrc(rd.mac()?),
        4 => Action::SetEthDst(rd.mac()?),
        5 => Action::SetIpv4Src(rd.ip()?),
        6 => Action::SetIpv4Dst(rd.ip()?),
        7 => Action::SetDscp(rd.u8()?),
        8 => Action::DecTtl,
        9 => Action::PushVlan(rd.u16()?),
        10 => Action::PopVlan,
        11 => Action::Group(rd.u32()?),
        12 => Action::Meter(rd.u32()?),
        13 => Action::SetEpoch(rd.u16()?),
        14 => Action::PopEpoch,
        other => {
            return Err(CodecError::BadTag {
                field: "action.kind",
                value: other as u32,
                offset: tag_at,
            })
        }
    })
}

fn put_actions(out: &mut Vec<u8>, actions: &[Action]) {
    out.put_u16(actions.len() as u16);
    for a in actions {
        put_action(out, a);
    }
}

/// Reject a claimed element count the remaining body cannot possibly
/// hold (every element is at least one byte) — before allocating.
fn check_count(rd: &Rd<'_>, field: &'static str, n: usize) -> Result<()> {
    let capacity = rd.buf.len() - rd.at;
    if n > capacity {
        return Err(CodecError::CountOverflow {
            field,
            count: n,
            capacity,
        });
    }
    Ok(())
}

fn get_actions(rd: &mut Rd<'_>) -> Result<Vec<Action>> {
    let n = rd.u16()? as usize;
    check_count(rd, "actions", n)?;
    let mut actions = Vec::with_capacity(n);
    for _ in 0..n {
        actions.push(get_action(rd)?);
    }
    Ok(actions)
}

fn put_spec(out: &mut Vec<u8>, spec: &FlowSpec) {
    out.put_u16(spec.priority);
    out.put_u16(spec.importance);
    out.put_u64(spec.cookie);
    out.put_u64(spec.idle_timeout);
    out.put_u64(spec.hard_timeout);
    out.put_u8(spec.goto_table.unwrap_or(0xff));
    put_match(out, &spec.matcher);
    put_actions(out, &spec.actions);
}

fn get_spec(rd: &mut Rd<'_>) -> Result<FlowSpec> {
    let priority = rd.u16()?;
    let importance = rd.u16()?;
    let cookie = rd.u64()?;
    let idle_timeout = rd.u64()?;
    let hard_timeout = rd.u64()?;
    let goto = rd.u8()?;
    let matcher = get_match(rd)?;
    let actions = get_actions(rd)?;
    Ok(FlowSpec {
        priority,
        matcher,
        actions,
        goto_table: if goto == 0xff { None } else { Some(goto) },
        cookie,
        idle_timeout,
        hard_timeout,
        importance,
    })
}

fn put_group(out: &mut Vec<u8>, desc: &GroupDesc) {
    out.put_u8(match desc.group_type {
        GroupType::All => 0,
        GroupType::Select => 1,
        GroupType::FastFailover => 2,
    });
    out.put_u16(desc.buckets.len() as u16);
    for bucket in &desc.buckets {
        out.put_u32(bucket.watch_port.unwrap_or(0));
        put_actions(out, &bucket.actions);
    }
}

fn get_group(rd: &mut Rd<'_>) -> Result<GroupDesc> {
    let tag_at = rd.pos();
    let group_type = match rd.u8()? {
        0 => GroupType::All,
        1 => GroupType::Select,
        2 => GroupType::FastFailover,
        other => {
            return Err(CodecError::BadTag {
                field: "group.type",
                value: other as u32,
                offset: tag_at,
            })
        }
    };
    let n = rd.u16()? as usize;
    check_count(rd, "group.buckets", n)?;
    let mut buckets = Vec::with_capacity(n);
    for _ in 0..n {
        let watch = rd.u32()?;
        let actions = get_actions(rd)?;
        buckets.push(Bucket {
            actions,
            watch_port: if watch == 0 { None } else { Some(watch) },
        });
    }
    Ok(GroupDesc {
        group_type,
        buckets,
    })
}

fn put_role(out: &mut Vec<u8>, role: Role) {
    out.put_u8(match role {
        Role::Master => 0,
        Role::Equal => 1,
        Role::Slave => 2,
    });
}

fn get_role(rd: &mut Rd<'_>) -> Result<Role> {
    let tag_at = rd.pos();
    Ok(match rd.u8()? {
        0 => Role::Master,
        1 => Role::Equal,
        2 => Role::Slave,
        other => {
            return Err(CodecError::BadTag {
                field: "role",
                value: other as u32,
                offset: tag_at,
            })
        }
    })
}

fn put_view_event(out: &mut Vec<u8>, event: &ViewEvent) {
    match event {
        ViewEvent::LinkAdd {
            from_dpid,
            from_port,
            to_dpid,
            to_port,
        } => {
            out.put_u8(0);
            out.put_u64(*from_dpid);
            out.put_u32(*from_port);
            out.put_u64(*to_dpid);
            out.put_u32(*to_port);
        }
        ViewEvent::LinkDel {
            from_dpid,
            from_port,
        } => {
            out.put_u8(1);
            out.put_u64(*from_dpid);
            out.put_u32(*from_port);
        }
        ViewEvent::HostLearned {
            mac,
            dpid,
            port,
            ip,
        } => {
            out.put_u8(2);
            out.put_slice(mac.as_bytes());
            out.put_u64(*dpid);
            out.put_u32(*port);
            match ip {
                Some(addr) => {
                    out.put_u8(1);
                    out.put_slice(addr.as_bytes());
                }
                None => out.put_u8(0),
            }
        }
        ViewEvent::ShadowSet { dpid, cookies } => {
            out.put_u8(3);
            out.put_u64(*dpid);
            out.put_u32(cookies.len() as u32);
            for c in cookies {
                out.put_u64(c.cookie);
                out.put_u32(c.count);
            }
        }
        ViewEvent::ProgramStamp { dpid, cookie, hash } => {
            out.put_u8(4);
            out.put_u64(*dpid);
            out.put_u64(*cookie);
            out.put_u64(*hash);
        }
    }
}

fn get_view_event(rd: &mut Rd<'_>) -> Result<ViewEvent> {
    let tag_at = rd.pos();
    Ok(match rd.u8()? {
        0 => ViewEvent::LinkAdd {
            from_dpid: rd.u64()?,
            from_port: rd.u32()?,
            to_dpid: rd.u64()?,
            to_port: rd.u32()?,
        },
        1 => ViewEvent::LinkDel {
            from_dpid: rd.u64()?,
            from_port: rd.u32()?,
        },
        2 => {
            let mac = rd.mac()?;
            let dpid = rd.u64()?;
            let port = rd.u32()?;
            let flag_at = rd.pos();
            let ip = match rd.u8()? {
                0 => None,
                1 => Some(rd.ip()?),
                other => {
                    return Err(CodecError::BadTag {
                        field: "view_event.ip_present",
                        value: other as u32,
                        offset: flag_at,
                    })
                }
            };
            ViewEvent::HostLearned {
                mac,
                dpid,
                port,
                ip,
            }
        }
        3 => {
            let dpid = rd.u64()?;
            let n = rd.u32()? as usize;
            check_count(rd, "view_event.cookies", n)?;
            let mut cookies = Vec::with_capacity(n);
            for _ in 0..n {
                cookies.push(CookieCount {
                    cookie: rd.u64()?,
                    count: rd.u32()?,
                });
            }
            ViewEvent::ShadowSet { dpid, cookies }
        }
        4 => ViewEvent::ProgramStamp {
            dpid: rd.u64()?,
            cookie: rd.u64()?,
            hash: rd.u64()?,
        },
        other => {
            return Err(CodecError::BadTag {
                field: "view_event.kind",
                value: other as u32,
                offset: tag_at,
            })
        }
    })
}

fn put_ew_entry(out: &mut Vec<u8>, entry: &EwEntry) {
    out.put_u32(entry.origin);
    out.put_u64(entry.seq);
    out.put_u64(entry.term);
    put_view_event(out, &entry.event);
}

fn get_ew_entry(rd: &mut Rd<'_>) -> Result<EwEntry> {
    Ok(EwEntry {
        origin: rd.u32()?,
        seq: rd.u64()?,
        term: rd.u64()?,
        event: get_view_event(rd)?,
    })
}

/// The canonical wire bytes of one east-west entry — the byte string
/// the anti-entropy chain hash folds over, so replicas comparing
/// digests agree on the exact bytes being summarized.
pub fn ew_entry_bytes(entry: &EwEntry) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    put_ew_entry(&mut out, entry);
    out
}

/// The canonical wire bytes of one flow match (used as a stable state
/// key for ACL intents).
pub fn match_bytes(m: &FlowMatch) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    put_match(&mut out, m);
    out
}

fn put_origin_head(out: &mut Vec<u8>, h: &OriginHead) {
    out.put_u32(h.origin);
    out.put_u64(h.floor);
    out.put_u64(h.head);
    out.put_u64(h.hash);
}

fn get_origin_head(rd: &mut Rd<'_>) -> Result<OriginHead> {
    Ok(OriginHead {
        origin: rd.u32()?,
        floor: rd.u64()?,
        head: rd.u64()?,
        hash: rd.u64()?,
    })
}

fn put_intent(out: &mut Vec<u8>, intent: &Intent) {
    match intent {
        Intent::Noop => out.put_u8(0),
        Intent::AclDeny {
            priority,
            matcher,
            install,
        } => {
            out.put_u8(1);
            out.put_u16(*priority);
            put_match(out, matcher);
            out.put_u8(u8::from(*install));
        }
        Intent::MastershipPin {
            dpid,
            replica,
            pinned,
        } => {
            out.put_u8(2);
            out.put_u64(*dpid);
            out.put_u32(*replica);
            out.put_u8(u8::from(*pinned));
        }
    }
}

fn get_intent(rd: &mut Rd<'_>) -> Result<Intent> {
    let tag_at = rd.pos();
    Ok(match rd.u8()? {
        0 => Intent::Noop,
        1 => Intent::AclDeny {
            priority: rd.u16()?,
            matcher: get_match(rd)?,
            install: rd.u8()? != 0,
        },
        2 => Intent::MastershipPin {
            dpid: rd.u64()?,
            replica: rd.u32()?,
            pinned: rd.u8()? != 0,
        },
        other => {
            return Err(CodecError::BadTag {
                field: "intent.kind",
                value: other as u32,
                offset: tag_at,
            })
        }
    })
}

fn put_intent_entry(out: &mut Vec<u8>, entry: &IntentEntry) {
    out.put_u64(entry.index);
    out.put_u64(entry.term);
    out.put_u32(entry.origin);
    out.put_u64(entry.token);
    put_intent(out, &entry.intent);
}

fn get_intent_entry(rd: &mut Rd<'_>) -> Result<IntentEntry> {
    Ok(IntentEntry {
        index: rd.u64()?,
        term: rd.u64()?,
        origin: rd.u32()?,
        token: rd.u64()?,
        intent: get_intent(rd)?,
    })
}

/// The canonical wire bytes of one intent-log entry — the byte string
/// snapshot checksums fold over.
pub fn intent_entry_bytes(entry: &IntentEntry) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    put_intent_entry(&mut out, entry);
    out
}

fn put_bytes(out: &mut Vec<u8>, data: &[u8]) {
    out.put_u32(data.len() as u32);
    out.put_slice(data);
}

/// Length-prefixed bytes as a borrowed slice of the receive buffer —
/// the zero-copy primitive behind [`MessageView`].
fn get_bytes_view<'a>(rd: &mut Rd<'a>) -> Result<&'a [u8]> {
    let n = rd.u32()? as usize;
    rd.take(n)
}

// ------------------------------------------------------------- messages

/// Encode `msg` with transaction id `xid` into a framed byte vector.
pub fn encode(msg: &Message, xid: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.put_u8(VERSION);
    out.put_u8(msg.type_id());
    out.put_u32(0); // length patched below
    out.put_u32(xid);
    match msg {
        Message::Hello { version } => out.put_u8(*version),
        Message::Error { code, data } => {
            out.put_u16(match code {
                ErrorCode::HelloFailed => 0,
                ErrorCode::BadRequest => 1,
                ErrorCode::TableFull => 2,
                ErrorCode::NotMaster => 3,
            });
            put_bytes(&mut out, data);
        }
        Message::EchoRequest { token } | Message::EchoReply { token } => out.put_u64(*token),
        Message::FeaturesRequest => {}
        Message::BarrierRequest { xids } => {
            out.put_u32(xids.len() as u32);
            for &x in xids {
                out.put_u32(x);
            }
        }
        Message::BarrierReply { applied } => {
            out.put_u32(applied.len() as u32);
            for &x in applied {
                out.put_u32(x);
            }
        }
        Message::FeaturesReply {
            dpid,
            n_tables,
            ports,
        } => {
            out.put_u64(*dpid);
            out.put_u8(*n_tables);
            out.put_u16(ports.len() as u16);
            for p in ports {
                out.put_u32(p.port_no);
                out.put_u8(u8::from(p.up));
            }
        }
        Message::PacketIn {
            in_port,
            table_id,
            is_miss,
            frame,
        } => {
            out.put_u32(*in_port);
            out.put_u8(*table_id);
            out.put_u8(u8::from(*is_miss));
            put_bytes(&mut out, frame);
        }
        Message::PacketOut {
            in_port,
            actions,
            frame,
        } => {
            out.put_u32(*in_port);
            put_actions(&mut out, actions);
            put_bytes(&mut out, frame);
        }
        Message::FlowMod { table_id, cmd } => {
            out.put_u8(*table_id);
            match cmd {
                FlowModCmd::Add(spec) => {
                    out.put_u8(0);
                    put_spec(&mut out, spec);
                }
                FlowModCmd::DeleteStrict { priority, matcher } => {
                    out.put_u8(1);
                    out.put_u16(*priority);
                    put_match(&mut out, matcher);
                }
                FlowModCmd::DeleteByCookie { cookie } => {
                    out.put_u8(2);
                    out.put_u64(*cookie);
                }
            }
        }
        Message::GroupMod { group_id, cmd } => {
            out.put_u32(*group_id);
            match cmd {
                GroupModCmd::Add(desc) => {
                    out.put_u8(0);
                    put_group(&mut out, desc);
                }
                GroupModCmd::Delete => out.put_u8(1),
            }
        }
        Message::MeterMod { meter_id, cmd } => {
            out.put_u32(*meter_id);
            match cmd {
                MeterModCmd::Add {
                    rate_bps,
                    burst_bytes,
                } => {
                    out.put_u8(0);
                    out.put_u64(*rate_bps);
                    out.put_u64(*burst_bytes);
                }
                MeterModCmd::Delete => out.put_u8(1),
            }
        }
        Message::PortStatus { port } => {
            out.put_u32(port.port_no);
            out.put_u8(u8::from(port.up));
        }
        Message::FlowRemoved {
            table_id,
            priority,
            cookie,
            reason,
            packets,
            bytes,
        } => {
            out.put_u8(*table_id);
            out.put_u16(*priority);
            out.put_u64(*cookie);
            out.put_u8(match reason {
                RemovedReason::IdleTimeout => 0,
                RemovedReason::HardTimeout => 1,
                RemovedReason::Delete => 2,
                RemovedReason::Eviction => 3,
            });
            out.put_u64(*packets);
            out.put_u64(*bytes);
        }
        Message::StatsRequest { kind } => match kind {
            StatsKind::Flow { table_id } => {
                out.put_u8(0);
                out.put_u8(*table_id);
            }
            StatsKind::Port { port_no } => {
                out.put_u8(1);
                out.put_u32(*port_no);
            }
            StatsKind::Table => out.put_u8(2),
            StatsKind::Cache => out.put_u8(3),
        },
        Message::StatsReply { body } => match body {
            StatsBody::Flow(records) => {
                out.put_u8(0);
                out.put_u32(records.len() as u32);
                for r in records {
                    out.put_u8(r.table_id);
                    out.put_u16(r.priority);
                    out.put_u64(r.cookie);
                    out.put_u64(r.packets);
                    out.put_u64(r.bytes);
                }
            }
            StatsBody::Port(records) => {
                out.put_u8(1);
                out.put_u32(records.len() as u32);
                for r in records {
                    out.put_u32(r.port_no);
                    out.put_u64(r.rx_frames);
                    out.put_u64(r.rx_bytes);
                    out.put_u64(r.tx_frames);
                    out.put_u64(r.tx_bytes);
                }
            }
            StatsBody::Table(records) => {
                out.put_u8(2);
                out.put_u32(records.len() as u32);
                for r in records {
                    out.put_u8(r.table_id);
                    out.put_u32(r.active);
                    out.put_u32(r.max_entries);
                    out.put_u64(r.hits);
                    out.put_u64(r.misses);
                    out.put_u64(r.evictions);
                    out.put_u64(r.refusals);
                }
            }
            StatsBody::Cache(r) => {
                out.put_u8(3);
                out.put_u32(1); // record count, for framing symmetry
                out.put_u64(r.micro_hits);
                out.put_u64(r.mega_hits);
                out.put_u64(r.misses);
                out.put_u64(r.inserts);
                out.put_u64(r.invalidations);
                out.put_u64(r.micro_evictions);
                out.put_u64(r.mega_evictions);
                out.put_u64(r.generation);
                out.put_u64(r.entries);
            }
        },
        Message::HelloResync {
            generation,
            cookies,
        } => {
            out.put_u64(*generation);
            out.put_u32(cookies.len() as u32);
            for c in cookies {
                out.put_u64(c.cookie);
                out.put_u32(c.count);
            }
        }
        Message::ResyncRequest => {}
        Message::RoleRequest {
            role,
            term,
            replica,
        }
        | Message::RoleReply {
            role,
            term,
            replica,
        } => {
            put_role(&mut out, *role);
            out.put_u64(*term);
            out.put_u32(*replica);
        }
        Message::EwHeartbeat {
            replica,
            term,
            acks,
        } => {
            out.put_u32(*replica);
            out.put_u64(*term);
            out.put_u32(acks.len() as u32);
            for &(origin, seq) in acks {
                out.put_u32(origin);
                out.put_u64(seq);
            }
        }
        Message::EwEvents { replica, entries } => {
            out.put_u32(*replica);
            out.put_u32(entries.len() as u32);
            for entry in entries {
                put_ew_entry(&mut out, entry);
            }
        }
        Message::EwDigest {
            replica,
            term,
            heads,
        } => {
            out.put_u32(*replica);
            out.put_u64(*term);
            out.put_u32(heads.len() as u32);
            for h in heads {
                put_origin_head(&mut out, h);
            }
        }
        Message::EwFetch { replica, ranges } => {
            out.put_u32(*replica);
            out.put_u32(ranges.len() as u32);
            for &(origin, from, to) in ranges {
                out.put_u32(origin);
                out.put_u64(from);
                out.put_u64(to);
            }
        }
        Message::EwSnapshot {
            replica,
            heads,
            entries,
            checksum,
        } => {
            out.put_u32(*replica);
            out.put_u32(heads.len() as u32);
            for h in heads {
                put_origin_head(&mut out, h);
            }
            out.put_u32(entries.len() as u32);
            for entry in entries {
                put_ew_entry(&mut out, entry);
            }
            out.put_u64(*checksum);
        }
        Message::IntentPropose {
            replica,
            token,
            intent,
        } => {
            out.put_u32(*replica);
            out.put_u64(*token);
            put_intent(&mut out, intent);
        }
        Message::IntentAppend {
            leader,
            term,
            prev_index,
            prev_term,
            commit,
            entries,
        } => {
            out.put_u32(*leader);
            out.put_u64(*term);
            out.put_u64(*prev_index);
            out.put_u64(*prev_term);
            out.put_u64(*commit);
            out.put_u32(entries.len() as u32);
            for entry in entries {
                put_intent_entry(&mut out, entry);
            }
        }
        Message::IntentAck {
            replica,
            term,
            match_index,
            success,
        } => {
            out.put_u32(*replica);
            out.put_u64(*term);
            out.put_u64(*match_index);
            out.put_u8(u8::from(*success));
        }
        Message::IntentFetch {
            replica,
            term,
            from_index,
        } => {
            out.put_u32(*replica);
            out.put_u64(*term);
            out.put_u64(*from_index);
        }
        Message::IntentCatchup {
            replica,
            term,
            snap_index,
            snap_term,
            snap_state,
            snap_tokens,
            entries,
            commit,
            checksum,
        } => {
            out.put_u32(*replica);
            out.put_u64(*term);
            out.put_u64(*snap_index);
            out.put_u64(*snap_term);
            out.put_u32(snap_state.len() as u32);
            for entry in snap_state {
                put_intent_entry(&mut out, entry);
            }
            out.put_u32(snap_tokens.len() as u32);
            for &(origin, token) in snap_tokens {
                out.put_u32(origin);
                out.put_u64(token);
            }
            out.put_u32(entries.len() as u32);
            for entry in entries {
                put_intent_entry(&mut out, entry);
            }
            out.put_u64(*commit);
            out.put_u64(*checksum);
        }
    }
    let len = out.len() as u32;
    out[2..6].copy_from_slice(&len.to_be_bytes());
    out
}

/// Encode a PACKET_OUT directly from a borrowed frame.
///
/// The general [`encode`] takes a [`Message`], whose `PacketOut`
/// variant owns its frame — so releasing a borrowed frame would force
/// a `to_vec` just to throw the copy away after serializing. This fast
/// path writes the wire form straight from the slice; it is
/// byte-identical to `encode(&Message::PacketOut { .. }, xid)`.
pub fn encode_packet_out(in_port: PortNo, actions: &[Action], frame: &[u8], xid: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + 4 + 2 + 4 + frame.len() + 8);
    out.put_u8(VERSION);
    out.put_u8(7); // Message::PacketOut type id
    out.put_u32(0); // length patched below
    out.put_u32(xid);
    out.put_u32(in_port);
    put_actions(&mut out, actions);
    put_bytes(&mut out, frame);
    let len = out.len() as u32;
    out[2..6].copy_from_slice(&len.to_be_bytes());
    out
}

/// A decoded message whose bulk byte payloads borrow the receive
/// buffer (the `BinaryDecoder` idiom: typed views over wire bytes).
///
/// Only the message types that carry an opaque byte blob get a
/// borrowed variant — PACKET_IN and PACKET_OUT (the punted/released
/// frame) and ERROR (its diagnostic data). These are the control
/// plane's hot path, and the blob is the bulk of the frame; borrowing
/// it makes decode allocation-free where it matters. Every other
/// message decodes to an owned [`Message`] inside
/// [`MessageView::Owned`]: their payloads are structured fields the
/// consumer must own to apply anyway, so a borrowed form would buy
/// nothing but lifetime friction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MessageView<'a> {
    /// A punted frame; `frame` borrows the receive buffer.
    PacketIn {
        /// Ingress port.
        in_port: PortNo,
        /// Table that punted it.
        table_id: u8,
        /// `true` if punted by table miss, `false` if by action.
        is_miss: bool,
        /// The frame, borrowed from the receive buffer.
        frame: &'a [u8],
    },
    /// A frame release; `frame` borrows the receive buffer.
    PacketOut {
        /// Treat the frame as if received on this port (0 = none).
        in_port: PortNo,
        /// Actions to run on it.
        actions: Vec<Action>,
        /// The frame, borrowed from the receive buffer.
        frame: &'a [u8],
    },
    /// An error notification; `data` borrows the receive buffer.
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// Offending-request context, borrowed from the receive buffer.
        data: &'a [u8],
    },
    /// Any other message, fully owned.
    Owned(Message),
}

impl MessageView<'_> {
    /// Materialize an owned [`Message`], copying any borrowed payload.
    pub fn into_message(self) -> Message {
        match self {
            MessageView::PacketIn {
                in_port,
                table_id,
                is_miss,
                frame,
            } => Message::PacketIn {
                in_port,
                table_id,
                is_miss,
                frame: frame.to_vec(),
            },
            MessageView::PacketOut {
                in_port,
                actions,
                frame,
            } => Message::PacketOut {
                in_port,
                actions,
                frame: frame.to_vec(),
            },
            MessageView::Error { code, data } => Message::Error {
                code,
                data: data.to_vec(),
            },
            MessageView::Owned(msg) => msg,
        }
    }
}

/// Decode one framed message from the front of `buf` into an owned
/// [`Message`]. Returns the message, its xid, and the bytes consumed.
///
/// Compatibility wrapper over [`decode_view`]: byte payloads are
/// copied out of the buffer. Hot paths should use [`decode_view`].
pub fn decode(buf: &[u8]) -> Result<(Message, u32, usize)> {
    let (view, xid, consumed) = decode_view(buf)?;
    Ok((view.into_message(), xid, consumed))
}

/// Decode one framed message from the front of `buf` as a
/// [`MessageView`] borrowing `buf`. Returns the view, its xid, and the
/// bytes consumed.
///
/// The view (and anything holding its `frame`/`data` slices) must be
/// dropped before the receive buffer can be reused; the borrow checker
/// enforces this. Use [`MessageView::into_message`] to outlive the
/// buffer.
pub fn decode_view(buf: &[u8]) -> Result<(MessageView<'_>, u32, usize)> {
    if buf.len() < HEADER_LEN {
        return Err(CodecError::Truncated {
            offset: 0,
            needed: HEADER_LEN,
            available: buf.len(),
        });
    }
    let version = buf[0];
    if version != VERSION {
        return Err(CodecError::BadVersion { found: version });
    }
    let type_id = buf[1];
    let length = u32::from_be_bytes(buf[2..6].try_into().unwrap()) as usize;
    if length < HEADER_LEN {
        return Err(CodecError::BadLength { claimed: length });
    }
    if buf.len() < length {
        return Err(CodecError::Truncated {
            offset: 0,
            needed: length,
            available: buf.len(),
        });
    }
    let xid = u32::from_be_bytes(buf[6..10].try_into().unwrap());
    let mut rd = Rd::new(&buf[HEADER_LEN..length], HEADER_LEN);
    let msg = match type_id {
        0 => Message::Hello { version: rd.u8()? },
        1 => {
            let code_at = rd.pos();
            let code = match rd.u16()? {
                0 => ErrorCode::HelloFailed,
                1 => ErrorCode::BadRequest,
                2 => ErrorCode::TableFull,
                3 => ErrorCode::NotMaster,
                other => {
                    return Err(CodecError::BadTag {
                        field: "error.code",
                        value: other as u32,
                        offset: code_at,
                    })
                }
            };
            let view = MessageView::Error {
                code,
                data: get_bytes_view(&mut rd)?,
            };
            rd.finish()?;
            return Ok((view, xid, length));
        }
        2 => Message::EchoRequest { token: rd.u64()? },
        3 => Message::EchoReply { token: rd.u64()? },
        4 => Message::FeaturesRequest,
        5 => {
            let dpid = rd.u64()?;
            let n_tables = rd.u8()?;
            let n = rd.u16()? as usize;
            check_count(&rd, "features.ports", n)?;
            let mut ports = Vec::with_capacity(n);
            for _ in 0..n {
                let port_no = rd.u32()?;
                let up = rd.u8()? != 0;
                ports.push(PortDesc { port_no, up });
            }
            Message::FeaturesReply {
                dpid,
                n_tables,
                ports,
            }
        }
        6 => {
            let view = MessageView::PacketIn {
                in_port: rd.u32()?,
                table_id: rd.u8()?,
                is_miss: rd.u8()? != 0,
                frame: get_bytes_view(&mut rd)?,
            };
            rd.finish()?;
            return Ok((view, xid, length));
        }
        7 => {
            let view = MessageView::PacketOut {
                in_port: rd.u32()?,
                actions: get_actions(&mut rd)?,
                frame: get_bytes_view(&mut rd)?,
            };
            rd.finish()?;
            return Ok((view, xid, length));
        }
        8 => {
            let table_id = rd.u8()?;
            let tag_at = rd.pos();
            let cmd = match rd.u8()? {
                0 => FlowModCmd::Add(get_spec(&mut rd)?),
                1 => FlowModCmd::DeleteStrict {
                    priority: rd.u16()?,
                    matcher: get_match(&mut rd)?,
                },
                2 => FlowModCmd::DeleteByCookie { cookie: rd.u64()? },
                other => {
                    return Err(CodecError::BadTag {
                        field: "flow_mod.cmd",
                        value: other as u32,
                        offset: tag_at,
                    })
                }
            };
            Message::FlowMod { table_id, cmd }
        }
        9 => {
            let group_id = rd.u32()?;
            let tag_at = rd.pos();
            let cmd = match rd.u8()? {
                0 => GroupModCmd::Add(get_group(&mut rd)?),
                1 => GroupModCmd::Delete,
                other => {
                    return Err(CodecError::BadTag {
                        field: "group_mod.cmd",
                        value: other as u32,
                        offset: tag_at,
                    })
                }
            };
            Message::GroupMod { group_id, cmd }
        }
        10 => {
            let meter_id = rd.u32()?;
            let tag_at = rd.pos();
            let cmd = match rd.u8()? {
                0 => MeterModCmd::Add {
                    rate_bps: rd.u64()?,
                    burst_bytes: rd.u64()?,
                },
                1 => MeterModCmd::Delete,
                other => {
                    return Err(CodecError::BadTag {
                        field: "meter_mod.cmd",
                        value: other as u32,
                        offset: tag_at,
                    })
                }
            };
            Message::MeterMod { meter_id, cmd }
        }
        11 => Message::PortStatus {
            port: PortDesc {
                port_no: rd.u32()?,
                up: rd.u8()? != 0,
            },
        },
        12 => {
            let table_id = rd.u8()?;
            let priority = rd.u16()?;
            let cookie = rd.u64()?;
            let reason_at = rd.pos();
            let reason = match rd.u8()? {
                0 => RemovedReason::IdleTimeout,
                1 => RemovedReason::HardTimeout,
                2 => RemovedReason::Delete,
                3 => RemovedReason::Eviction,
                other => {
                    return Err(CodecError::BadTag {
                        field: "flow_removed.reason",
                        value: other as u32,
                        offset: reason_at,
                    })
                }
            };
            Message::FlowRemoved {
                table_id,
                priority,
                cookie,
                reason,
                packets: rd.u64()?,
                bytes: rd.u64()?,
            }
        }
        13 => {
            let n = rd.u32()? as usize;
            check_count(&rd, "barrier.xids", n)?;
            let mut xids = Vec::with_capacity(n);
            for _ in 0..n {
                xids.push(rd.u32()?);
            }
            Message::BarrierRequest { xids }
        }
        14 => {
            let n = rd.u32()? as usize;
            check_count(&rd, "barrier.applied", n)?;
            let mut applied = Vec::with_capacity(n);
            for _ in 0..n {
                applied.push(rd.u32()?);
            }
            Message::BarrierReply { applied }
        }
        15 => {
            let tag_at = rd.pos();
            Message::StatsRequest {
                kind: match rd.u8()? {
                    0 => StatsKind::Flow { table_id: rd.u8()? },
                    1 => StatsKind::Port { port_no: rd.u32()? },
                    2 => StatsKind::Table,
                    3 => StatsKind::Cache,
                    other => {
                        return Err(CodecError::BadTag {
                            field: "stats_request.kind",
                            value: other as u32,
                            offset: tag_at,
                        })
                    }
                },
            }
        }
        16 => {
            let tag_at = rd.pos();
            let tag = rd.u8()?;
            let count_at = rd.pos();
            let n = rd.u32()? as usize;
            check_count(&rd, "stats_reply.records", n)?;
            let body = match tag {
                0 => {
                    let mut v = Vec::with_capacity(n);
                    for _ in 0..n {
                        v.push(FlowStats {
                            table_id: rd.u8()?,
                            priority: rd.u16()?,
                            cookie: rd.u64()?,
                            packets: rd.u64()?,
                            bytes: rd.u64()?,
                        });
                    }
                    StatsBody::Flow(v)
                }
                1 => {
                    let mut v = Vec::with_capacity(n);
                    for _ in 0..n {
                        v.push(PortStatsRec {
                            port_no: rd.u32()?,
                            rx_frames: rd.u64()?,
                            rx_bytes: rd.u64()?,
                            tx_frames: rd.u64()?,
                            tx_bytes: rd.u64()?,
                        });
                    }
                    StatsBody::Port(v)
                }
                2 => {
                    let mut v = Vec::with_capacity(n);
                    for _ in 0..n {
                        v.push(TableStats {
                            table_id: rd.u8()?,
                            active: rd.u32()?,
                            max_entries: rd.u32()?,
                            hits: rd.u64()?,
                            misses: rd.u64()?,
                            evictions: rd.u64()?,
                            refusals: rd.u64()?,
                        });
                    }
                    StatsBody::Table(v)
                }
                3 => {
                    if n != 1 {
                        return Err(CodecError::BadTag {
                            field: "stats_reply.cache_count",
                            value: n as u32,
                            offset: count_at,
                        });
                    }
                    StatsBody::Cache(CacheStatsRec {
                        micro_hits: rd.u64()?,
                        mega_hits: rd.u64()?,
                        misses: rd.u64()?,
                        inserts: rd.u64()?,
                        invalidations: rd.u64()?,
                        micro_evictions: rd.u64()?,
                        mega_evictions: rd.u64()?,
                        generation: rd.u64()?,
                        entries: rd.u64()?,
                    })
                }
                other => {
                    return Err(CodecError::BadTag {
                        field: "stats_reply.kind",
                        value: other as u32,
                        offset: tag_at,
                    })
                }
            };
            Message::StatsReply { body }
        }
        17 => {
            let generation = rd.u64()?;
            let n = rd.u32()? as usize;
            check_count(&rd, "resync.cookies", n)?;
            let mut cookies = Vec::with_capacity(n);
            for _ in 0..n {
                cookies.push(CookieCount {
                    cookie: rd.u64()?,
                    count: rd.u32()?,
                });
            }
            Message::HelloResync {
                generation,
                cookies,
            }
        }
        18 => Message::ResyncRequest,
        19 => Message::RoleRequest {
            role: get_role(&mut rd)?,
            term: rd.u64()?,
            replica: rd.u32()?,
        },
        20 => Message::RoleReply {
            role: get_role(&mut rd)?,
            term: rd.u64()?,
            replica: rd.u32()?,
        },
        21 => {
            let replica = rd.u32()?;
            let term = rd.u64()?;
            let n = rd.u32()? as usize;
            check_count(&rd, "ew.acks", n)?;
            let mut acks = Vec::with_capacity(n);
            for _ in 0..n {
                let origin = rd.u32()?;
                let seq = rd.u64()?;
                acks.push((origin, seq));
            }
            Message::EwHeartbeat {
                replica,
                term,
                acks,
            }
        }
        22 => {
            let replica = rd.u32()?;
            let n = rd.u32()? as usize;
            check_count(&rd, "ew.entries", n)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push(get_ew_entry(&mut rd)?);
            }
            Message::EwEvents { replica, entries }
        }
        23 => {
            let replica = rd.u32()?;
            let term = rd.u64()?;
            let n = rd.u32()? as usize;
            check_count(&rd, "ew.heads", n)?;
            let mut heads = Vec::with_capacity(n);
            for _ in 0..n {
                heads.push(get_origin_head(&mut rd)?);
            }
            Message::EwDigest {
                replica,
                term,
                heads,
            }
        }
        24 => {
            let replica = rd.u32()?;
            let n = rd.u32()? as usize;
            check_count(&rd, "ew.ranges", n)?;
            let mut ranges = Vec::with_capacity(n);
            for _ in 0..n {
                let origin = rd.u32()?;
                let from = rd.u64()?;
                let to = rd.u64()?;
                ranges.push((origin, from, to));
            }
            Message::EwFetch { replica, ranges }
        }
        25 => {
            let replica = rd.u32()?;
            let n = rd.u32()? as usize;
            check_count(&rd, "ew.snapshot_heads", n)?;
            let mut heads = Vec::with_capacity(n);
            for _ in 0..n {
                heads.push(get_origin_head(&mut rd)?);
            }
            let n = rd.u32()? as usize;
            check_count(&rd, "ew.snapshot_entries", n)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push(get_ew_entry(&mut rd)?);
            }
            Message::EwSnapshot {
                replica,
                heads,
                entries,
                checksum: rd.u64()?,
            }
        }
        26 => Message::IntentPropose {
            replica: rd.u32()?,
            token: rd.u64()?,
            intent: get_intent(&mut rd)?,
        },
        27 => {
            let leader = rd.u32()?;
            let term = rd.u64()?;
            let prev_index = rd.u64()?;
            let prev_term = rd.u64()?;
            let commit = rd.u64()?;
            let n = rd.u32()? as usize;
            check_count(&rd, "intent.entries", n)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push(get_intent_entry(&mut rd)?);
            }
            Message::IntentAppend {
                leader,
                term,
                prev_index,
                prev_term,
                commit,
                entries,
            }
        }
        28 => Message::IntentAck {
            replica: rd.u32()?,
            term: rd.u64()?,
            match_index: rd.u64()?,
            success: rd.u8()? != 0,
        },
        29 => Message::IntentFetch {
            replica: rd.u32()?,
            term: rd.u64()?,
            from_index: rd.u64()?,
        },
        30 => {
            let replica = rd.u32()?;
            let term = rd.u64()?;
            let snap_index = rd.u64()?;
            let snap_term = rd.u64()?;
            let n = rd.u32()? as usize;
            check_count(&rd, "intent.snap_state", n)?;
            let mut snap_state = Vec::with_capacity(n);
            for _ in 0..n {
                snap_state.push(get_intent_entry(&mut rd)?);
            }
            let n = rd.u32()? as usize;
            check_count(&rd, "intent.snap_tokens", n)?;
            let mut snap_tokens = Vec::with_capacity(n);
            for _ in 0..n {
                let origin = rd.u32()?;
                let token = rd.u64()?;
                snap_tokens.push((origin, token));
            }
            let n = rd.u32()? as usize;
            check_count(&rd, "intent.catchup_entries", n)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push(get_intent_entry(&mut rd)?);
            }
            Message::IntentCatchup {
                replica,
                term,
                snap_index,
                snap_term,
                snap_state,
                snap_tokens,
                entries,
                commit: rd.u64()?,
                checksum: rd.u64()?,
            }
        }
        other => return Err(CodecError::UnknownType { found: other }),
    };
    rd.finish()?;
    Ok((MessageView::Owned(msg), xid, length))
}

/// Reassembles framed messages from an arbitrary-boundary byte stream.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
}

impl FrameAssembler {
    /// An empty assembler.
    pub fn new() -> FrameAssembler {
        FrameAssembler::default()
    }

    /// Feed received bytes.
    pub fn push(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Pop the next complete message, if any. Errors are sticky for the
    /// current message only: the bad frame is skipped by its claimed
    /// length when possible.
    #[allow(clippy::type_complexity, clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Result<(Message, u32)>> {
        if self.buf.len() < HEADER_LEN {
            return None;
        }
        let length = u32::from_be_bytes(self.buf[2..6].try_into().unwrap()) as usize;
        if length < HEADER_LEN {
            self.buf.clear(); // unrecoverable framing error
            return Some(Err(CodecError::BadLength { claimed: length }));
        }
        if self.buf.len() < length {
            return None;
        }
        let result = decode(&self.buf[..length]).map(|(m, xid, _)| (m, xid));
        self.buf.drain(..length);
        Some(result)
    }

    /// Bytes currently buffered.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zen_dataplane::FlowSpec;

    fn spec_sample() -> FlowSpec {
        FlowSpec::new(
            100,
            FlowMatch::ipv4_to("10.1.0.0/16".parse().unwrap()).with_in_port(3),
            vec![
                Action::SetEthDst(EthernetAddress::from_id(9)),
                Action::DecTtl,
                Action::Output(4),
            ],
        )
        .with_timeouts(1_000_000, 2_000_000)
        .with_cookie(0xfeed)
        .with_goto(1)
        .with_importance(40)
    }

    fn samples() -> Vec<Message> {
        vec![
            Message::Hello { version: 1 },
            Message::Error {
                code: ErrorCode::BadRequest,
                data: vec![1, 2, 3],
            },
            Message::EchoRequest { token: 77 },
            Message::EchoReply { token: 77 },
            Message::FeaturesRequest,
            Message::FeaturesReply {
                dpid: 42,
                n_tables: 2,
                ports: vec![
                    PortDesc {
                        port_no: 1,
                        up: true,
                    },
                    PortDesc {
                        port_no: 2,
                        up: false,
                    },
                ],
            },
            Message::PacketIn {
                in_port: 3,
                table_id: 0,
                is_miss: true,
                frame: vec![0xde, 0xad],
            },
            Message::PacketOut {
                in_port: 0,
                actions: vec![Action::Flood],
                frame: vec![1; 60],
            },
            Message::FlowMod {
                table_id: 0,
                cmd: FlowModCmd::Add(spec_sample()),
            },
            Message::FlowMod {
                table_id: 0,
                cmd: FlowModCmd::Add(FlowSpec::new(
                    60,
                    FlowMatch {
                        epoch: Some(Some(zen_dataplane::epoch_tag(5))),
                        ..FlowMatch::ipv4_to("10.2.0.0/16".parse().unwrap())
                    },
                    vec![
                        Action::SetEpoch(zen_dataplane::epoch_tag(6)),
                        Action::PopEpoch,
                        Action::Output(2),
                    ],
                )),
            },
            Message::FlowMod {
                table_id: 0,
                cmd: FlowModCmd::DeleteStrict {
                    priority: 7,
                    matcher: FlowMatch {
                        epoch: Some(None),
                        ..FlowMatch::ANY
                    },
                },
            },
            Message::FlowMod {
                table_id: 1,
                cmd: FlowModCmd::DeleteStrict {
                    priority: 5,
                    matcher: FlowMatch::ANY,
                },
            },
            Message::FlowMod {
                table_id: 0,
                cmd: FlowModCmd::DeleteByCookie { cookie: 9 },
            },
            Message::GroupMod {
                group_id: 7,
                cmd: GroupModCmd::Add(GroupDesc {
                    group_type: GroupType::Select,
                    buckets: vec![Bucket::output(2), Bucket::output(3)],
                }),
            },
            Message::GroupMod {
                group_id: 7,
                cmd: GroupModCmd::Delete,
            },
            Message::MeterMod {
                meter_id: 1,
                cmd: MeterModCmd::Add {
                    rate_bps: 1_000_000,
                    burst_bytes: 64_000,
                },
            },
            Message::PortStatus {
                port: PortDesc {
                    port_no: 4,
                    up: false,
                },
            },
            Message::FlowRemoved {
                table_id: 0,
                priority: 10,
                cookie: 0xbeef,
                reason: RemovedReason::IdleTimeout,
                packets: 100,
                bytes: 6400,
            },
            Message::FlowRemoved {
                table_id: 1,
                priority: 100,
                cookie: 0x5eac_0001,
                reason: RemovedReason::Eviction,
                packets: 12,
                bytes: 768,
            },
            Message::BarrierRequest { xids: vec![] },
            Message::BarrierRequest {
                xids: vec![7, 8, 9],
            },
            Message::BarrierReply {
                applied: vec![7, 9],
            },
            Message::StatsRequest {
                kind: StatsKind::Flow { table_id: 0xff },
            },
            Message::StatsRequest {
                kind: StatsKind::Port { port_no: 0 },
            },
            Message::StatsReply {
                body: StatsBody::Table(vec![TableStats {
                    table_id: 0,
                    active: 3,
                    max_entries: 256,
                    hits: 10,
                    misses: 2,
                    evictions: 4,
                    refusals: 1,
                }]),
            },
            Message::StatsRequest {
                kind: StatsKind::Cache,
            },
            Message::StatsReply {
                body: StatsBody::Cache(CacheStatsRec {
                    micro_hits: 1000,
                    mega_hits: 50,
                    misses: 7,
                    inserts: 7,
                    invalidations: 2,
                    micro_evictions: 5,
                    mega_evictions: 1,
                    generation: 3,
                    entries: 12,
                }),
            },
            Message::HelloResync {
                generation: 41,
                cookies: vec![
                    CookieCount {
                        cookie: 0xfab0_0001,
                        count: 18,
                    },
                    CookieCount {
                        cookie: 0xbeef,
                        count: 1,
                    },
                ],
            },
            Message::HelloResync {
                generation: 0,
                cookies: vec![],
            },
            Message::ResyncRequest,
            Message::Error {
                code: ErrorCode::NotMaster,
                data: 7u32.to_be_bytes().to_vec(),
            },
            Message::Error {
                code: ErrorCode::TableFull,
                data: 0xdead_beefu32.to_be_bytes().to_vec(),
            },
            Message::RoleRequest {
                role: Role::Master,
                term: 3,
                replica: 1,
            },
            Message::RoleReply {
                role: Role::Slave,
                term: 4,
                replica: 2,
            },
            Message::EwHeartbeat {
                replica: 0,
                term: 2,
                acks: vec![(0, 17), (1, 0), (2, 5)],
            },
            Message::EwHeartbeat {
                replica: 2,
                term: 1,
                acks: vec![],
            },
            Message::EwEvents {
                replica: 1,
                entries: vec![
                    EwEntry {
                        origin: 1,
                        seq: 1,
                        term: 1,
                        event: ViewEvent::LinkAdd {
                            from_dpid: 0,
                            from_port: 2,
                            to_dpid: 1,
                            to_port: 3,
                        },
                    },
                    EwEntry {
                        origin: 1,
                        seq: 2,
                        term: 1,
                        event: ViewEvent::LinkDel {
                            from_dpid: 0,
                            from_port: 2,
                        },
                    },
                    EwEntry {
                        origin: 1,
                        seq: 3,
                        term: 2,
                        event: ViewEvent::HostLearned {
                            mac: EthernetAddress::from_id(0x50_0001),
                            dpid: 3,
                            port: 4,
                            ip: Some(Ipv4Address::new(10, 0, 0, 2)),
                        },
                    },
                    EwEntry {
                        origin: 1,
                        seq: 4,
                        term: 2,
                        event: ViewEvent::HostLearned {
                            mac: EthernetAddress::from_id(0x50_0002),
                            dpid: 3,
                            port: 5,
                            ip: None,
                        },
                    },
                    EwEntry {
                        origin: 1,
                        seq: 5,
                        term: 2,
                        event: ViewEvent::ShadowSet {
                            dpid: 2,
                            cookies: vec![CookieCount {
                                cookie: 0xfab0_0001,
                                count: 6,
                            }],
                        },
                    },
                    EwEntry {
                        origin: 1,
                        seq: 6,
                        term: 2,
                        event: ViewEvent::ProgramStamp {
                            dpid: 2,
                            cookie: 0xfab0_0001,
                            hash: 0x1234_5678_9abc_def0,
                        },
                    },
                ],
            },
            Message::EwEvents {
                replica: 0,
                entries: vec![],
            },
            Message::EwDigest {
                replica: 1,
                term: 3,
                heads: vec![
                    OriginHead {
                        origin: 0,
                        floor: 2,
                        head: 9,
                        hash: 0xdead_beef_cafe_f00d,
                    },
                    OriginHead {
                        origin: 1,
                        floor: 0,
                        head: 0,
                        hash: 0xcbf2_9ce4_8422_2325,
                    },
                ],
            },
            Message::EwFetch {
                replica: 2,
                ranges: vec![(0, 3, 9), (1, 0, 0)],
            },
            Message::EwSnapshot {
                replica: 0,
                heads: vec![OriginHead {
                    origin: 0,
                    floor: 9,
                    head: 9,
                    hash: 7,
                }],
                entries: vec![EwEntry {
                    origin: 0,
                    seq: 9,
                    term: 2,
                    event: ViewEvent::LinkAdd {
                        from_dpid: 4,
                        from_port: 1,
                        to_dpid: 5,
                        to_port: 2,
                    },
                }],
                checksum: 0x1111_2222_3333_4444,
            },
            Message::IntentPropose {
                replica: 2,
                token: 0xaa55,
                intent: Intent::AclDeny {
                    priority: 900,
                    matcher: FlowMatch::ipv4_to("10.9.0.0/16".parse().unwrap()),
                    install: true,
                },
            },
            Message::IntentAppend {
                leader: 0,
                term: 6,
                prev_index: 4,
                prev_term: 5,
                commit: 3,
                entries: vec![
                    IntentEntry {
                        index: 5,
                        term: 6,
                        origin: 0,
                        token: 0,
                        intent: Intent::Noop,
                    },
                    IntentEntry {
                        index: 6,
                        term: 6,
                        origin: 2,
                        token: 0xaa55,
                        intent: Intent::MastershipPin {
                            dpid: 7,
                            replica: 1,
                            pinned: true,
                        },
                    },
                ],
            },
            Message::IntentAck {
                replica: 1,
                term: 6,
                match_index: 6,
                success: true,
            },
            Message::IntentAck {
                replica: 2,
                term: 7,
                match_index: 3,
                success: false,
            },
            Message::IntentFetch {
                replica: 1,
                term: 8,
                from_index: 2,
            },
            Message::IntentCatchup {
                replica: 2,
                term: 8,
                snap_index: 4,
                snap_term: 5,
                snap_state: vec![IntentEntry {
                    index: 2,
                    term: 3,
                    origin: 1,
                    token: 11,
                    intent: Intent::AclDeny {
                        priority: 901,
                        matcher: FlowMatch::ipv4_to("10.8.0.0/16".parse().unwrap()),
                        install: true,
                    },
                }],
                snap_tokens: vec![(1, 11), (2, 0xdead_beef)],
                entries: vec![IntentEntry {
                    index: 5,
                    term: 6,
                    origin: 0,
                    token: 0,
                    intent: Intent::Noop,
                }],
                commit: 4,
                checksum: 0x5555_6666_7777_8888,
            },
        ]
    }

    #[test]
    fn roundtrip_every_message() {
        for (i, msg) in samples().into_iter().enumerate() {
            let xid = 1000 + i as u32;
            let bytes = encode(&msg, xid);
            let (decoded, got_xid, consumed) =
                decode(&bytes).unwrap_or_else(|e| panic!("msg {i}: {e}"));
            assert_eq!(decoded, msg, "message {i}");
            assert_eq!(got_xid, xid);
            assert_eq!(consumed, bytes.len());
        }
    }

    /// The borrowed view's payload slices alias the receive buffer —
    /// the zero-copy contract — and agree with the owned decode.
    #[test]
    fn view_borrows_receive_buffer() {
        let frame: Vec<u8> = (0..200u8).collect();
        let bytes = encode(
            &Message::PacketIn {
                in_port: 9,
                table_id: 1,
                is_miss: false,
                frame: frame.clone(),
            },
            55,
        );
        let (view, xid, consumed) = decode_view(&bytes).unwrap();
        assert_eq!(xid, 55);
        assert_eq!(consumed, bytes.len());
        let MessageView::PacketIn {
            in_port,
            table_id,
            is_miss,
            frame: got,
        } = &view
        else {
            panic!("expected a PacketIn view");
        };
        assert_eq!((*in_port, *table_id, *is_miss), (9, 1, false));
        assert_eq!(*got, &frame[..]);
        // Same allocation: the slice points into `bytes`, not a copy.
        let buf_range = bytes.as_ptr() as usize..bytes.as_ptr() as usize + bytes.len();
        assert!(buf_range.contains(&(got.as_ptr() as usize)));
        assert_eq!(
            view.into_message(),
            Message::PacketIn {
                in_port: 9,
                table_id: 1,
                is_miss: false,
                frame,
            }
        );
    }

    /// Every sample decodes to a view that materializes back to the
    /// original message, and hot types actually get borrowed variants.
    #[test]
    fn view_roundtrip_every_message() {
        for (i, msg) in samples().into_iter().enumerate() {
            let bytes = encode(&msg, i as u32);
            let (view, _, _) = decode_view(&bytes).unwrap_or_else(|e| panic!("msg {i}: {e}"));
            match (&view, &msg) {
                (MessageView::Owned(_), Message::PacketIn { .. })
                | (MessageView::Owned(_), Message::PacketOut { .. })
                | (MessageView::Owned(_), Message::Error { .. }) => {
                    panic!("msg {i}: hot type decoded to an owned view")
                }
                _ => {}
            }
            assert_eq!(view.into_message(), msg, "message {i}");
        }
    }

    /// The borrowed-frame PACKET_OUT encoder is byte-identical to the
    /// general encoder.
    #[test]
    fn packet_out_fast_path_matches_encode() {
        let actions = vec![Action::Output(3), Action::DecTtl];
        let frame = vec![7u8; 90];
        let via_msg = encode(
            &Message::PacketOut {
                in_port: 2,
                actions: actions.clone(),
                frame: frame.clone(),
            },
            1234,
        );
        assert_eq!(encode_packet_out(2, &actions, &frame, 1234), via_msg);
    }

    #[test]
    fn truncation_errors_carry_offsets() {
        let bytes = encode(&Message::EchoRequest { token: 7 }, 1);
        // A stream cut mid-frame reports the whole-frame shortfall.
        let err = decode(&bytes[..HEADER_LEN + 3]).unwrap_err();
        assert!(err.is_truncated());
        assert_eq!(
            err,
            CodecError::Truncated {
                offset: 0,
                needed: bytes.len(),
                available: HEADER_LEN + 3,
            }
        );
        // A corrupted length field that cuts the body mid-token
        // reports the absolute offset of the failing read.
        let mut short = bytes.clone();
        short[2..6].copy_from_slice(&((HEADER_LEN + 3) as u32).to_be_bytes());
        assert_eq!(
            decode(&short).unwrap_err(),
            CodecError::Truncated {
                offset: HEADER_LEN,
                needed: 8,
                available: 3,
            }
        );
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = encode(&Message::BarrierRequest { xids: vec![] }, 1);
        bytes[0] = 99;
        assert_eq!(
            decode(&bytes).unwrap_err(),
            CodecError::BadVersion { found: 99 }
        );
    }

    #[test]
    fn rejects_unknown_type() {
        let mut bytes = encode(&Message::BarrierRequest { xids: vec![] }, 1);
        bytes[1] = 200;
        assert_eq!(
            decode(&bytes).unwrap_err(),
            CodecError::UnknownType { found: 200 }
        );
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = encode(
            &Message::FlowMod {
                table_id: 0,
                cmd: FlowModCmd::Add(spec_sample()),
            },
            7,
        );
        for cut in 0..bytes.len() {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "decode succeeded at cut {cut}"
            );
        }
    }

    /// Fuzz-style truncation sweep over the new table-pressure frames:
    /// every proper prefix of a TABLE_FULL error, an Eviction
    /// FLOW_REMOVED, and the split-eviction cache stats reply must
    /// decode to an error, never a panic or a bogus success.
    #[test]
    fn rejects_truncated_table_pressure_frames() {
        let frames = [
            encode(
                &Message::Error {
                    code: ErrorCode::TableFull,
                    data: 41u32.to_be_bytes().to_vec(),
                },
                41,
            ),
            encode(
                &Message::FlowRemoved {
                    table_id: 0,
                    priority: 100,
                    cookie: 0x5eac_0001,
                    reason: RemovedReason::Eviction,
                    packets: 3,
                    bytes: 180,
                },
                42,
            ),
            encode(
                &Message::StatsReply {
                    body: StatsBody::Table(vec![TableStats {
                        table_id: 0,
                        active: 256,
                        max_entries: 256,
                        hits: 9,
                        misses: 1,
                        evictions: 17,
                        refusals: 0,
                    }]),
                },
                43,
            ),
            encode(
                &Message::StatsReply {
                    body: StatsBody::Cache(CacheStatsRec {
                        micro_hits: 1,
                        mega_hits: 2,
                        misses: 3,
                        inserts: 4,
                        invalidations: 5,
                        micro_evictions: 6,
                        mega_evictions: 7,
                        generation: 8,
                        entries: 9,
                    }),
                },
                44,
            ),
        ];
        for (i, bytes) in frames.iter().enumerate() {
            for cut in 0..bytes.len() {
                assert!(
                    decode(&bytes[..cut]).is_err(),
                    "frame {i}: decode succeeded at cut {cut}"
                );
            }
            // The intact frame still parses (the sweep is not vacuous).
            assert!(decode(bytes).is_ok(), "frame {i}: intact decode failed");
        }
    }

    /// An unknown FLOW_REMOVED reason byte must be rejected, not mapped
    /// onto some near miss.
    #[test]
    fn rejects_unknown_removed_reason() {
        let mut bytes = encode(
            &Message::FlowRemoved {
                table_id: 0,
                priority: 1,
                cookie: 0,
                reason: RemovedReason::Eviction,
                packets: 0,
                bytes: 0,
            },
            1,
        );
        // reason byte sits after header + table_id(1) + priority(2) + cookie(8)
        let at = HEADER_LEN + 1 + 2 + 8;
        assert_eq!(bytes[at], 3, "layout assumption");
        bytes[at] = 4;
        assert_eq!(
            decode(&bytes).unwrap_err(),
            CodecError::BadTag {
                field: "flow_removed.reason",
                value: 4,
                offset: at,
            }
        );
    }

    #[test]
    fn rejects_trailing_garbage_inside_frame() {
        let mut bytes = encode(&Message::BarrierRequest { xids: vec![] }, 1);
        // Claim a longer body than the message has.
        bytes.extend_from_slice(&[0; 4]);
        let len = bytes.len() as u32;
        bytes[2..6].copy_from_slice(&len.to_be_bytes());
        assert!(matches!(
            decode(&bytes).unwrap_err(),
            CodecError::TrailingBytes { trailing: 4, .. }
        ));
    }

    #[test]
    fn assembler_handles_arbitrary_fragmentation() {
        let msgs = samples();
        let mut stream = Vec::new();
        for (i, m) in msgs.iter().enumerate() {
            stream.extend_from_slice(&encode(m, i as u32));
        }
        // Feed 7 bytes at a time.
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for chunk in stream.chunks(7) {
            asm.push(chunk);
            while let Some(result) = asm.next() {
                got.push(result.unwrap());
            }
        }
        assert_eq!(got.len(), msgs.len());
        for (i, (m, xid)) in got.into_iter().enumerate() {
            assert_eq!(m, msgs[i]);
            assert_eq!(xid, i as u32);
        }
        assert_eq!(asm.pending(), 0);
    }

    #[test]
    fn assembler_recovers_frame_length_errors() {
        let mut asm = FrameAssembler::new();
        let mut bad = encode(&Message::BarrierRequest { xids: vec![] }, 1);
        bad[2..6].copy_from_slice(&3u32.to_be_bytes()); // length < header
        asm.push(&bad);
        assert!(matches!(
            asm.next(),
            Some(Err(CodecError::BadLength { claimed: 3 }))
        ));
        // The assembler cleared; new valid traffic parses.
        asm.push(&encode(&Message::BarrierReply { applied: vec![] }, 2));
        assert!(
            matches!(asm.next(), Some(Ok((Message::BarrierReply { applied }, 2))) if applied.is_empty())
        );
    }
}
