//! Property tests for the control-protocol codec: random structured
//! messages round-trip, and random bytes never panic the decoder.

use proptest::prelude::*;

use zen_dataplane::{Action, Bucket, FlowMatch, FlowSpec, GroupDesc, GroupType};
use zen_proto::{decode, encode, FlowModCmd, Message, StatsKind};
use zen_wire::{EthernetAddress, Ipv4Address, Ipv4Cidr};

fn arb_mac() -> impl Strategy<Value = EthernetAddress> {
    any::<[u8; 6]>().prop_map(EthernetAddress)
}

fn arb_ip() -> impl Strategy<Value = Ipv4Address> {
    any::<u32>().prop_map(Ipv4Address::from_u32)
}

fn arb_cidr() -> impl Strategy<Value = Ipv4Cidr> {
    (any::<u32>(), 0u8..=32)
        .prop_map(|(a, l)| Ipv4Cidr::new(Ipv4Address::from_u32(a), l).unwrap())
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (1u32..100).prop_map(Action::Output),
        Just(Action::Flood),
        any::<u16>().prop_map(|l| Action::ToController { max_len: l }),
        arb_mac().prop_map(Action::SetEthSrc),
        arb_mac().prop_map(Action::SetEthDst),
        arb_ip().prop_map(Action::SetIpv4Src),
        arb_ip().prop_map(Action::SetIpv4Dst),
        any::<u8>().prop_map(Action::SetDscp),
        Just(Action::DecTtl),
        (0u16..4096).prop_map(Action::PushVlan),
        Just(Action::PopVlan),
        any::<u32>().prop_map(Action::Group),
        any::<u32>().prop_map(Action::Meter),
    ]
}

fn arb_match() -> impl Strategy<Value = FlowMatch> {
    (
        proptest::option::of(1u32..64),
        proptest::option::of(arb_mac()),
        proptest::option::of(arb_mac()),
        proptest::option::of(any::<u16>()),
        proptest::option::of(proptest::option::of(0u16..4096)),
        proptest::option::of(arb_cidr()),
        proptest::option::of(arb_cidr()),
        proptest::option::of(any::<u8>()),
        proptest::option::of(any::<u16>()),
        proptest::option::of(any::<u16>()),
    )
        .prop_map(
            |(in_port, eth_src, eth_dst, ethertype, vlan, ipv4_src, ipv4_dst, ip_proto, l4_src, l4_dst)| {
                FlowMatch {
                    in_port,
                    eth_src,
                    eth_dst,
                    ethertype,
                    vlan,
                    ipv4_src,
                    ipv4_dst,
                    ip_proto,
                    l4_src,
                    l4_dst,
                }
            },
        )
}

fn arb_spec() -> impl Strategy<Value = FlowSpec> {
    (
        any::<u16>(),
        arb_match(),
        proptest::collection::vec(arb_action(), 0..6),
        proptest::option::of(0u8..=254),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(
            |(priority, matcher, actions, goto_table, cookie, idle, hard)| FlowSpec {
                priority,
                matcher,
                actions,
                goto_table,
                cookie,
                idle_timeout: idle,
                hard_timeout: hard,
            },
        )
}

fn arb_group() -> impl Strategy<Value = GroupDesc> {
    (
        prop_oneof![
            Just(GroupType::All),
            Just(GroupType::Select),
            Just(GroupType::FastFailover)
        ],
        proptest::collection::vec(
            ((proptest::option::of(1u32..64)), proptest::collection::vec(arb_action(), 0..4)),
            0..5,
        ),
    )
        .prop_map(|(group_type, raw)| GroupDesc {
            group_type,
            buckets: raw
                .into_iter()
                .map(|(watch_port, actions)| Bucket {
                    actions,
                    watch_port,
                })
                .collect(),
        })
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        arb_spec().prop_map(|s| Message::FlowMod {
            table_id: 0,
            cmd: FlowModCmd::Add(s)
        }),
        (any::<u16>(), arb_match()).prop_map(|(priority, matcher)| Message::FlowMod {
            table_id: 1,
            cmd: FlowModCmd::DeleteStrict { priority, matcher }
        }),
        (any::<u32>(), arb_group()).prop_map(|(group_id, g)| Message::GroupMod {
            group_id,
            cmd: zen_proto::GroupModCmd::Add(g)
        }),
        (1u32..64, proptest::collection::vec(arb_action(), 0..4), proptest::collection::vec(any::<u8>(), 0..256))
            .prop_map(|(in_port, actions, frame)| Message::PacketOut { in_port, actions, frame }),
        (1u32..64, any::<u8>(), any::<bool>(), proptest::collection::vec(any::<u8>(), 0..256))
            .prop_map(|(in_port, table_id, is_miss, frame)| Message::PacketIn {
                in_port,
                table_id,
                is_miss,
                frame
            }),
        Just(Message::StatsRequest { kind: StatsKind::Table }),
    ]
}

proptest! {
    #[test]
    fn structured_roundtrip(msg in arb_message(), xid in any::<u32>()) {
        let bytes = encode(&msg, xid);
        let (decoded, got_xid, consumed) = decode(&bytes).expect("decode");
        prop_assert_eq!(decoded, msg);
        prop_assert_eq!(got_xid, xid);
        prop_assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode(&data);
    }

    #[test]
    fn bitflips_never_panic(msg in arb_message(), flip in any::<(usize, u8)>()) {
        let mut bytes = encode(&msg, 1);
        if !bytes.is_empty() {
            let at = flip.0 % bytes.len();
            bytes[at] ^= flip.1;
            let _ = decode(&bytes);
        }
    }
}
