//! Randomized tests for the control-protocol codec: random structured
//! messages round-trip, and random bytes never panic the decoder.
//!
//! Uses the in-tree deterministic [`Lcg`] generator, so failures are
//! reproducible from the fixed seeds below.

use zen_dataplane::{Action, Bucket, FlowMatch, FlowSpec, GroupDesc, GroupType};
use zen_proto::{decode, encode, FlowModCmd, Message, StatsKind};
use zen_wire::lcg::Lcg;
use zen_wire::{EthernetAddress, Ipv4Address, Ipv4Cidr};

fn gen_mac(rng: &mut Lcg) -> EthernetAddress {
    let b = rng.gen_bytes(6);
    EthernetAddress::from_bytes(&b)
}

fn gen_ip(rng: &mut Lcg) -> Ipv4Address {
    Ipv4Address::from_u32(rng.next_u32())
}

fn gen_cidr(rng: &mut Lcg) -> Ipv4Cidr {
    Ipv4Cidr::new(gen_ip(rng), rng.gen_range(33) as u8).unwrap()
}

fn gen_action(rng: &mut Lcg) -> Action {
    match rng.gen_index(15) {
        0 => Action::Output(1 + rng.gen_range(99) as u32),
        1 => Action::Flood,
        2 => Action::ToController {
            max_len: rng.next_u32() as u16,
        },
        3 => Action::SetEthSrc(gen_mac(rng)),
        4 => Action::SetEthDst(gen_mac(rng)),
        5 => Action::SetIpv4Src(gen_ip(rng)),
        6 => Action::SetIpv4Dst(gen_ip(rng)),
        7 => Action::SetDscp(rng.next_u32() as u8),
        8 => Action::DecTtl,
        9 => Action::PushVlan(rng.gen_range(4096) as u16),
        10 => Action::PopVlan,
        11 => Action::Group(rng.next_u32()),
        12 => Action::Meter(rng.next_u32()),
        13 => Action::SetEpoch(zen_dataplane::epoch_tag(rng.next_u64())),
        _ => Action::PopEpoch,
    }
}

fn gen_actions(rng: &mut Lcg, max: usize) -> Vec<Action> {
    (0..rng.gen_index(max + 1))
        .map(|_| gen_action(rng))
        .collect()
}

fn opt<T>(rng: &mut Lcg, f: impl FnOnce(&mut Lcg) -> T) -> Option<T> {
    if rng.gen_ratio(1, 2) {
        Some(f(rng))
    } else {
        None
    }
}

fn gen_match(rng: &mut Lcg) -> FlowMatch {
    FlowMatch {
        in_port: opt(rng, |r| 1 + r.gen_range(63) as u32),
        eth_src: opt(rng, gen_mac),
        eth_dst: opt(rng, gen_mac),
        ethertype: opt(rng, |r| r.next_u32() as u16),
        vlan: opt(rng, |r| opt(r, |r| r.gen_range(4096) as u16)),
        epoch: opt(rng, |r| opt(r, |r| zen_dataplane::epoch_tag(r.next_u64()))),
        ipv4_src: opt(rng, gen_cidr),
        ipv4_dst: opt(rng, gen_cidr),
        ip_proto: opt(rng, |r| r.next_u32() as u8),
        l4_src: opt(rng, |r| r.next_u32() as u16),
        l4_dst: opt(rng, |r| r.next_u32() as u16),
    }
}

fn gen_spec(rng: &mut Lcg) -> FlowSpec {
    FlowSpec {
        priority: rng.next_u32() as u16,
        matcher: gen_match(rng),
        actions: gen_actions(rng, 5),
        goto_table: opt(rng, |r| r.gen_range(255) as u8),
        cookie: rng.next_u64(),
        idle_timeout: rng.next_u64(),
        hard_timeout: rng.next_u64(),
        importance: rng.next_u32() as u16,
    }
}

fn gen_group(rng: &mut Lcg) -> GroupDesc {
    let group_type = match rng.gen_index(3) {
        0 => GroupType::All,
        1 => GroupType::Select,
        _ => GroupType::FastFailover,
    };
    let buckets = (0..rng.gen_index(5))
        .map(|_| Bucket {
            actions: gen_actions(rng, 3),
            watch_port: opt(rng, |r| 1 + r.gen_range(63) as u32),
        })
        .collect();
    GroupDesc {
        group_type,
        buckets,
    }
}

fn gen_message(rng: &mut Lcg) -> Message {
    match rng.gen_index(8) {
        0 => Message::FlowMod {
            table_id: 0,
            cmd: FlowModCmd::Add(gen_spec(rng)),
        },
        1 => Message::FlowMod {
            table_id: 1,
            cmd: FlowModCmd::DeleteStrict {
                priority: rng.next_u32() as u16,
                matcher: gen_match(rng),
            },
        },
        2 => Message::GroupMod {
            group_id: rng.next_u32(),
            cmd: zen_proto::GroupModCmd::Add(gen_group(rng)),
        },
        3 => Message::PacketOut {
            in_port: 1 + rng.gen_range(63) as u32,
            actions: gen_actions(rng, 3),
            frame: {
                let n = rng.gen_index(256);
                rng.gen_bytes(n)
            },
        },
        4 => Message::PacketIn {
            in_port: 1 + rng.gen_range(63) as u32,
            table_id: rng.next_u32() as u8,
            is_miss: rng.gen_ratio(1, 2),
            frame: {
                let n = rng.gen_index(256);
                rng.gen_bytes(n)
            },
        },
        5 => Message::HelloResync {
            generation: rng.next_u64(),
            cookies: (0..rng.gen_index(8))
                .map(|_| zen_proto::CookieCount {
                    cookie: rng.next_u64(),
                    count: rng.next_u32(),
                })
                .collect(),
        },
        6 => Message::BarrierRequest {
            xids: (0..rng.gen_index(16)).map(|_| rng.next_u32()).collect(),
        },
        _ => Message::StatsRequest {
            kind: StatsKind::Table,
        },
    }
}

#[test]
fn structured_roundtrip() {
    let mut rng = Lcg::new(0xC0DEC01);
    for _ in 0..2_000 {
        let msg = gen_message(&mut rng);
        let xid = rng.next_u32();
        let bytes = encode(&msg, xid);
        let (decoded, got_xid, consumed) = decode(&bytes).expect("decode");
        assert_eq!(decoded, msg);
        assert_eq!(got_xid, xid);
        assert_eq!(consumed, bytes.len());
    }
}

#[test]
fn random_bytes_never_panic() {
    let mut rng = Lcg::new(0xC0DEC02);
    for _ in 0..2_000 {
        let data = {
            let n = rng.gen_index(512);
            rng.gen_bytes(n)
        };
        let _ = decode(&data);
    }
}

#[test]
fn bitflips_never_panic() {
    let mut rng = Lcg::new(0xC0DEC03);
    for _ in 0..2_000 {
        let msg = gen_message(&mut rng);
        let mut bytes = encode(&msg, 1);
        if !bytes.is_empty() {
            let at = rng.gen_index(bytes.len());
            bytes[at] ^= rng.next_u32() as u8;
            let _ = decode(&bytes);
        }
    }
}
