//! Table-driven coverage of the decode error taxonomy.
//!
//! Two sweeps run over one exemplar of **every** wire frame type:
//! stream truncation at every prefix length, and a shortened length
//! field at every body length. Both must yield a typed [`CodecError`]
//! — never a panic, never a bogus success. A third, hand-built table
//! then corrupts individual tag/count/field bytes and asserts the
//! exact error variant, value, and frame offset, so every arm of the
//! taxonomy is pinned by at least one test.

use zen_dataplane::{Action, Bucket, FlowMatch, FlowSpec, GroupDesc, GroupType};
use zen_proto::{
    decode, decode_view, encode, CacheStatsRec, CodecError, CookieCount, ErrorCode, EwEntry,
    FlowModCmd, FlowStats, GroupModCmd, Intent, IntentEntry, Message, MeterModCmd, OriginHead,
    PortDesc, PortStatsRec, RemovedReason, Role, StatsBody, StatsKind, TableStats, ViewEvent,
    HEADER_LEN,
};
use zen_wire::{EthernetAddress, Ipv4Address};

/// One exemplar per wire type id, 0 through 30. The coverage test
/// below asserts this list really does span every discriminant, so a
/// new message type cannot be added without extending the sweeps.
fn one_of_each() -> Vec<Message> {
    vec![
        Message::Hello { version: 1 },
        Message::Error {
            code: ErrorCode::TableFull,
            data: vec![1, 2, 3, 4],
        },
        Message::EchoRequest { token: 7 },
        Message::EchoReply { token: 7 },
        Message::FeaturesRequest,
        Message::FeaturesReply {
            dpid: 42,
            n_tables: 2,
            ports: vec![
                PortDesc {
                    port_no: 1,
                    up: true,
                },
                PortDesc {
                    port_no: 2,
                    up: false,
                },
            ],
        },
        Message::PacketIn {
            in_port: 3,
            table_id: 0,
            is_miss: true,
            frame: vec![0xde, 0xad, 0xbe, 0xef],
        },
        Message::PacketOut {
            in_port: 0,
            actions: vec![Action::Flood],
            frame: vec![1; 60],
        },
        Message::FlowMod {
            table_id: 0,
            cmd: FlowModCmd::Add(
                FlowSpec::new(
                    100,
                    FlowMatch::ipv4_to("10.1.0.0/16".parse().unwrap()).with_in_port(3),
                    vec![Action::DecTtl, Action::Output(4)],
                )
                .with_cookie(0xfeed),
            ),
        },
        Message::GroupMod {
            group_id: 7,
            cmd: GroupModCmd::Add(GroupDesc {
                group_type: GroupType::FastFailover,
                buckets: vec![Bucket::output(2), Bucket::output(3)],
            }),
        },
        Message::MeterMod {
            meter_id: 1,
            cmd: MeterModCmd::Add {
                rate_bps: 1_000_000,
                burst_bytes: 64_000,
            },
        },
        Message::PortStatus {
            port: PortDesc {
                port_no: 4,
                up: false,
            },
        },
        Message::FlowRemoved {
            table_id: 0,
            priority: 10,
            cookie: 0xbeef,
            reason: RemovedReason::Eviction,
            packets: 100,
            bytes: 6400,
        },
        Message::BarrierRequest {
            xids: vec![7, 8, 9],
        },
        Message::BarrierReply {
            applied: vec![7, 9],
        },
        Message::StatsRequest {
            kind: StatsKind::Flow { table_id: 0 },
        },
        Message::StatsReply {
            body: StatsBody::Flow(vec![FlowStats {
                table_id: 0,
                priority: 10,
                cookie: 0xfeed,
                packets: 3,
                bytes: 180,
            }]),
        },
        Message::HelloResync {
            generation: 41,
            cookies: vec![
                CookieCount {
                    cookie: 0xfab0_0001,
                    count: 18,
                },
                CookieCount {
                    cookie: 0xbeef,
                    count: 1,
                },
            ],
        },
        Message::ResyncRequest,
        Message::RoleRequest {
            role: Role::Master,
            term: 3,
            replica: 1,
        },
        Message::RoleReply {
            role: Role::Slave,
            term: 4,
            replica: 2,
        },
        Message::EwHeartbeat {
            replica: 0,
            term: 2,
            acks: vec![(0, 17), (1, 0)],
        },
        Message::EwEvents {
            replica: 1,
            entries: vec![EwEntry {
                origin: 1,
                seq: 3,
                term: 2,
                event: ViewEvent::HostLearned {
                    mac: EthernetAddress::from_id(0x50_0001),
                    dpid: 3,
                    port: 4,
                    ip: Some(Ipv4Address::new(10, 0, 0, 2)),
                },
            }],
        },
        Message::EwDigest {
            replica: 2,
            term: 5,
            heads: vec![
                OriginHead {
                    origin: 0,
                    floor: 3,
                    head: 17,
                    hash: 0xdead_beef,
                },
                OriginHead {
                    origin: 1,
                    floor: 0,
                    head: 4,
                    hash: 0xfeed_f00d,
                },
            ],
        },
        Message::EwFetch {
            replica: 1,
            ranges: vec![(0, 4, 17), (2, 0, 0)],
        },
        Message::EwSnapshot {
            replica: 0,
            heads: vec![OriginHead {
                origin: 0,
                floor: 0,
                head: 1,
                hash: 0x1234,
            }],
            entries: vec![EwEntry {
                origin: 0,
                seq: 1,
                term: 1,
                event: ViewEvent::LinkDel {
                    from_dpid: 1,
                    from_port: 2,
                },
            }],
            checksum: 0x5678,
        },
        Message::IntentPropose {
            replica: 2,
            token: 0xf00,
            intent: Intent::AclDeny {
                priority: 900,
                matcher: FlowMatch::ipv4_to("10.9.0.0/16".parse().unwrap()),
                install: true,
            },
        },
        Message::IntentAppend {
            leader: 0,
            term: 6,
            prev_index: 3,
            prev_term: 5,
            commit: 3,
            entries: vec![IntentEntry {
                index: 4,
                term: 6,
                origin: 0,
                token: 0,
                intent: Intent::Noop,
            }],
        },
        Message::IntentAck {
            replica: 3,
            term: 6,
            match_index: 4,
            success: true,
        },
        Message::IntentFetch {
            replica: 1,
            term: 7,
            from_index: 3,
        },
        Message::IntentCatchup {
            replica: 2,
            term: 7,
            snap_index: 3,
            snap_term: 5,
            snap_state: vec![IntentEntry {
                index: 2,
                term: 4,
                origin: 1,
                token: 0xabc,
                intent: Intent::MastershipPin {
                    dpid: 7,
                    replica: 1,
                    pinned: true,
                },
            }],
            snap_tokens: vec![(1, 0xabc)],
            entries: vec![IntentEntry {
                index: 4,
                term: 6,
                origin: 0,
                token: 0,
                intent: Intent::Noop,
            }],
            commit: 3,
            checksum: 0x9abc,
        },
    ]
}

/// The exemplar list spans every wire type id with no gaps, so the
/// sweeps below cannot silently lose coverage as the protocol grows.
#[test]
fn exemplars_cover_every_frame_type() {
    let mut ids: Vec<u8> = one_of_each().iter().map(Message::type_id).collect();
    ids.sort_unstable();
    ids.dedup();
    let expect: Vec<u8> = (0..=30).collect();
    assert_eq!(ids, expect, "exemplar list does not span the type space");
}

/// A stream cut at any prefix of any frame type reports `Truncated`
/// with whole-frame accounting: offset 0, the full need, and exactly
/// the bytes that were available. `is_truncated()` classifies every
/// one as "feed me more bytes".
#[test]
fn truncated_at_every_prefix_of_every_type() {
    for (i, msg) in one_of_each().into_iter().enumerate() {
        let bytes = encode(&msg, i as u32);
        for cut in 0..bytes.len() {
            let err = decode(&bytes[..cut]).unwrap_err();
            assert!(err.is_truncated(), "type {i} cut {cut}: {err}");
            let needed = if cut < HEADER_LEN {
                HEADER_LEN
            } else {
                bytes.len()
            };
            assert_eq!(
                err,
                CodecError::Truncated {
                    offset: 0,
                    needed,
                    available: cut,
                },
                "type {i} cut {cut}"
            );
        }
        // The sweep is not vacuous: the intact frame still decodes.
        assert!(decode(&bytes).is_ok(), "type {i}: intact decode failed");
    }
}

/// A length field rewritten to every shorter-but-plausible value cuts
/// the body mid-structure. The decoder must fail with a typed error —
/// a body-offset `Truncated` or a `CountOverflow` — and never succeed,
/// since no proper prefix of a body is itself a complete body.
#[test]
fn shortened_length_field_at_every_body_length() {
    for (i, msg) in one_of_each().into_iter().enumerate() {
        let bytes = encode(&msg, i as u32);
        for claimed in HEADER_LEN..bytes.len() {
            let mut short = bytes[..claimed].to_vec();
            short[2..6].copy_from_slice(&(claimed as u32).to_be_bytes());
            let err = decode(&short).unwrap_err();
            match err {
                CodecError::Truncated { offset, .. } => {
                    assert!(
                        offset >= HEADER_LEN,
                        "type {i} len {claimed}: body truncation reported header offset {offset}"
                    );
                }
                CodecError::CountOverflow { .. } => {}
                other => panic!("type {i} len {claimed}: unexpected error {other}"),
            }
        }
    }
}

/// A single corruption case: patch `frame[patch_at]` to `patch_to`
/// (after asserting the byte's expected clean value, so layout drift
/// fails loudly) and expect exactly `expect` from the decoder.
struct Corruption {
    name: &'static str,
    msg: Message,
    patch_at: usize,
    clean: u8,
    patch_to: u8,
    expect: CodecError,
}

fn corruption_table() -> Vec<Corruption> {
    vec![
        Corruption {
            name: "version byte",
            msg: Message::FeaturesRequest,
            patch_at: 0,
            clean: 1,
            patch_to: 9,
            expect: CodecError::BadVersion { found: 9 },
        },
        Corruption {
            name: "type byte",
            msg: Message::FeaturesRequest,
            patch_at: 1,
            clean: 4,
            patch_to: 200,
            expect: CodecError::UnknownType { found: 200 },
        },
        Corruption {
            name: "error code tag",
            msg: Message::Error {
                code: ErrorCode::HelloFailed,
                data: vec![],
            },
            // code is a u16 at HEADER_LEN; patch its low byte.
            patch_at: HEADER_LEN + 1,
            clean: 0,
            patch_to: 99,
            expect: CodecError::BadTag {
                field: "error.code",
                value: 99,
                offset: HEADER_LEN,
            },
        },
        Corruption {
            name: "flow mod command tag",
            msg: Message::FlowMod {
                table_id: 0,
                cmd: FlowModCmd::DeleteByCookie { cookie: 9 },
            },
            patch_at: HEADER_LEN + 1,
            clean: 2,
            patch_to: 7,
            expect: CodecError::BadTag {
                field: "flow_mod.cmd",
                value: 7,
                offset: HEADER_LEN + 1,
            },
        },
        Corruption {
            name: "group mod command tag",
            msg: Message::GroupMod {
                group_id: 7,
                cmd: GroupModCmd::Delete,
            },
            patch_at: HEADER_LEN + 4,
            clean: 1,
            patch_to: 9,
            expect: CodecError::BadTag {
                field: "group_mod.cmd",
                value: 9,
                offset: HEADER_LEN + 4,
            },
        },
        Corruption {
            name: "group type tag",
            msg: Message::GroupMod {
                group_id: 7,
                cmd: GroupModCmd::Add(GroupDesc {
                    group_type: GroupType::All,
                    buckets: vec![Bucket::output(2)],
                }),
            },
            patch_at: HEADER_LEN + 5,
            clean: 0,
            patch_to: 3,
            expect: CodecError::BadTag {
                field: "group.type",
                value: 3,
                offset: HEADER_LEN + 5,
            },
        },
        Corruption {
            name: "meter mod command tag",
            msg: Message::MeterMod {
                meter_id: 1,
                cmd: MeterModCmd::Delete,
            },
            patch_at: HEADER_LEN + 4,
            clean: 1,
            patch_to: 5,
            expect: CodecError::BadTag {
                field: "meter_mod.cmd",
                value: 5,
                offset: HEADER_LEN + 4,
            },
        },
        Corruption {
            name: "flow removed reason tag",
            msg: Message::FlowRemoved {
                table_id: 0,
                priority: 1,
                cookie: 0,
                reason: RemovedReason::IdleTimeout,
                packets: 0,
                bytes: 0,
            },
            // after table_id(1) + priority(2) + cookie(8)
            patch_at: HEADER_LEN + 11,
            clean: 0,
            patch_to: 4,
            expect: CodecError::BadTag {
                field: "flow_removed.reason",
                value: 4,
                offset: HEADER_LEN + 11,
            },
        },
        Corruption {
            name: "stats request kind tag",
            msg: Message::StatsRequest {
                kind: StatsKind::Table,
            },
            patch_at: HEADER_LEN,
            clean: 2,
            patch_to: 9,
            expect: CodecError::BadTag {
                field: "stats_request.kind",
                value: 9,
                offset: HEADER_LEN,
            },
        },
        Corruption {
            name: "stats reply kind tag",
            msg: Message::StatsReply {
                body: StatsBody::Port(vec![PortStatsRec {
                    port_no: 1,
                    rx_frames: 1,
                    rx_bytes: 64,
                    tx_frames: 1,
                    tx_bytes: 64,
                }]),
            },
            patch_at: HEADER_LEN,
            clean: 1,
            patch_to: 9,
            expect: CodecError::BadTag {
                field: "stats_reply.kind",
                value: 9,
                offset: HEADER_LEN,
            },
        },
        Corruption {
            name: "cache stats record count",
            msg: Message::StatsReply {
                body: StatsBody::Cache(CacheStatsRec {
                    micro_hits: 1,
                    mega_hits: 2,
                    misses: 3,
                    inserts: 4,
                    invalidations: 5,
                    micro_evictions: 6,
                    mega_evictions: 7,
                    generation: 8,
                    entries: 9,
                }),
            },
            // count is a u32 at HEADER_LEN+1; patch its low byte 1 -> 2.
            patch_at: HEADER_LEN + 4,
            clean: 1,
            patch_to: 2,
            expect: CodecError::BadTag {
                field: "stats_reply.cache_count",
                value: 2,
                offset: HEADER_LEN + 1,
            },
        },
        Corruption {
            name: "role tag",
            msg: Message::RoleRequest {
                role: Role::Master,
                term: 3,
                replica: 1,
            },
            patch_at: HEADER_LEN,
            clean: 0,
            patch_to: 3,
            expect: CodecError::BadTag {
                field: "role",
                value: 3,
                offset: HEADER_LEN,
            },
        },
        Corruption {
            name: "action kind tag",
            msg: Message::PacketOut {
                in_port: 0,
                actions: vec![Action::Flood],
                frame: vec![7; 20],
            },
            // after in_port(4) + action count(2)
            patch_at: HEADER_LEN + 6,
            clean: 1,
            patch_to: 15,
            expect: CodecError::BadTag {
                field: "action.kind",
                value: 15,
                offset: HEADER_LEN + 6,
            },
        },
        Corruption {
            name: "match presence bitmap",
            msg: Message::FlowMod {
                table_id: 0,
                cmd: FlowModCmd::DeleteStrict {
                    priority: 5,
                    matcher: FlowMatch::ANY,
                },
            },
            // after table_id(1) + cmd(1) + priority(2): bitmap high byte.
            patch_at: HEADER_LEN + 4,
            clean: 0,
            patch_to: 0x08,
            expect: CodecError::BadTag {
                field: "match.fields",
                value: 0x0800,
                offset: HEADER_LEN + 4,
            },
        },
        Corruption {
            name: "vlan tagged flag",
            msg: Message::FlowMod {
                table_id: 0,
                cmd: FlowModCmd::DeleteStrict {
                    priority: 5,
                    matcher: FlowMatch {
                        vlan: Some(Some(5)),
                        ..FlowMatch::ANY
                    },
                },
            },
            // bitmap(2) then the tagged flag.
            patch_at: HEADER_LEN + 6,
            clean: 1,
            patch_to: 2,
            expect: CodecError::BadTag {
                field: "match.vlan_tagged",
                value: 2,
                offset: HEADER_LEN + 6,
            },
        },
        Corruption {
            name: "cidr prefix length",
            msg: Message::FlowMod {
                table_id: 0,
                cmd: FlowModCmd::DeleteStrict {
                    priority: 5,
                    matcher: FlowMatch {
                        ipv4_src: Some("10.0.0.0/8".parse().unwrap()),
                        ..FlowMatch::ANY
                    },
                },
            },
            // bitmap(2) + address(4), then the prefix length byte.
            patch_at: HEADER_LEN + 10,
            clean: 8,
            patch_to: 40,
            expect: CodecError::BadField {
                field: "match.ipv4_src",
                offset: HEADER_LEN + 6,
            },
        },
        Corruption {
            name: "view event kind tag",
            msg: Message::EwEvents {
                replica: 1,
                entries: vec![EwEntry {
                    origin: 1,
                    seq: 2,
                    term: 1,
                    event: ViewEvent::LinkDel {
                        from_dpid: 0,
                        from_port: 2,
                    },
                }],
            },
            // replica(4) + count(4) + origin(4) + seq(8) + term(8)
            patch_at: HEADER_LEN + 28,
            clean: 1,
            patch_to: 5,
            expect: CodecError::BadTag {
                field: "view_event.kind",
                value: 5,
                offset: HEADER_LEN + 28,
            },
        },
        Corruption {
            name: "intent kind tag",
            msg: Message::IntentPropose {
                replica: 2,
                token: 0xf00,
                intent: Intent::Noop,
            },
            // replica(4) + token(8)
            patch_at: HEADER_LEN + 12,
            clean: 0,
            patch_to: 9,
            expect: CodecError::BadTag {
                field: "intent.kind",
                value: 9,
                offset: HEADER_LEN + 12,
            },
        },
        Corruption {
            name: "host learned ip presence flag",
            msg: Message::EwEvents {
                replica: 1,
                entries: vec![EwEntry {
                    origin: 1,
                    seq: 2,
                    term: 1,
                    event: ViewEvent::HostLearned {
                        mac: EthernetAddress::from_id(1),
                        dpid: 3,
                        port: 4,
                        ip: None,
                    },
                }],
            },
            // ... + event tag(1) + mac(6) + dpid(8) + port(4)
            patch_at: HEADER_LEN + 47,
            clean: 0,
            patch_to: 2,
            expect: CodecError::BadTag {
                field: "view_event.ip_present",
                value: 2,
                offset: HEADER_LEN + 47,
            },
        },
    ]
}

/// Every corruption case produces exactly the expected typed error,
/// from both the owned and the borrowed-view decoder.
#[test]
fn corrupt_bytes_yield_exact_typed_errors() {
    for case in corruption_table() {
        let mut bytes = encode(&case.msg, 77);
        assert!(
            decode(&bytes).is_ok(),
            "{}: clean frame must decode",
            case.name
        );
        assert_eq!(
            bytes[case.patch_at], case.clean,
            "{}: layout assumption broke — update patch_at",
            case.name
        );
        bytes[case.patch_at] = case.patch_to;
        assert_eq!(
            decode(&bytes).unwrap_err(),
            case.expect,
            "{} (owned decode)",
            case.name
        );
        assert_eq!(
            decode_view(&bytes).unwrap_err(),
            case.expect,
            "{} (view decode)",
            case.name
        );
        assert!(
            !case.expect.is_truncated(),
            "{}: corruption must classify as garbage, not short read",
            case.name
        );
    }
}

/// A hostile element count is rejected by capacity check before any
/// allocation is sized from it — the alloc-bomb guard.
#[test]
fn count_overflow_rejected_before_allocating() {
    struct Bomb {
        name: &'static str,
        msg: Message,
        /// Offset of the count field and its width in bytes.
        count_at: usize,
        count_width: usize,
        expect_field: &'static str,
    }
    let bombs = vec![
        Bomb {
            name: "barrier xid count",
            msg: Message::BarrierRequest { xids: vec![1] },
            count_at: HEADER_LEN,
            count_width: 4,
            expect_field: "barrier.xids",
        },
        Bomb {
            name: "barrier applied count",
            msg: Message::BarrierReply { applied: vec![1] },
            count_at: HEADER_LEN,
            count_width: 4,
            expect_field: "barrier.applied",
        },
        Bomb {
            name: "action count",
            msg: Message::PacketOut {
                in_port: 0,
                actions: vec![Action::Flood],
                frame: vec![7; 20],
            },
            count_at: HEADER_LEN + 4,
            count_width: 2,
            expect_field: "actions",
        },
        Bomb {
            name: "features port count",
            msg: Message::FeaturesReply {
                dpid: 42,
                n_tables: 2,
                ports: vec![PortDesc {
                    port_no: 1,
                    up: true,
                }],
            },
            count_at: HEADER_LEN + 9,
            count_width: 2,
            expect_field: "features.ports",
        },
        Bomb {
            name: "resync cookie count",
            msg: Message::HelloResync {
                generation: 1,
                cookies: vec![CookieCount {
                    cookie: 0xbeef,
                    count: 1,
                }],
            },
            count_at: HEADER_LEN + 8,
            count_width: 4,
            expect_field: "resync.cookies",
        },
        Bomb {
            name: "east-west ack count",
            msg: Message::EwHeartbeat {
                replica: 0,
                term: 2,
                acks: vec![(0, 17)],
            },
            count_at: HEADER_LEN + 12,
            count_width: 4,
            expect_field: "ew.acks",
        },
        Bomb {
            name: "east-west entry count",
            msg: Message::EwEvents {
                replica: 1,
                entries: vec![EwEntry {
                    origin: 1,
                    seq: 2,
                    term: 1,
                    event: ViewEvent::LinkDel {
                        from_dpid: 0,
                        from_port: 2,
                    },
                }],
            },
            count_at: HEADER_LEN + 4,
            count_width: 4,
            expect_field: "ew.entries",
        },
        Bomb {
            name: "east-west digest head count",
            msg: Message::EwDigest {
                replica: 2,
                term: 5,
                heads: vec![OriginHead {
                    origin: 0,
                    floor: 3,
                    head: 17,
                    hash: 0xdead_beef,
                }],
            },
            // replica(4) + term(8)
            count_at: HEADER_LEN + 12,
            count_width: 4,
            expect_field: "ew.heads",
        },
        Bomb {
            name: "intent append entry count",
            msg: Message::IntentAppend {
                leader: 0,
                term: 6,
                prev_index: 3,
                prev_term: 5,
                commit: 3,
                entries: vec![IntentEntry {
                    index: 4,
                    term: 6,
                    origin: 0,
                    token: 0,
                    intent: Intent::Noop,
                }],
            },
            // leader(4) + term(8) + prev_index(8) + prev_term(8) + commit(8)
            count_at: HEADER_LEN + 36,
            count_width: 4,
            expect_field: "intent.entries",
        },
        Bomb {
            name: "stats reply record count",
            msg: Message::StatsReply {
                body: StatsBody::Table(vec![TableStats {
                    table_id: 0,
                    active: 3,
                    max_entries: 256,
                    hits: 10,
                    misses: 2,
                    evictions: 4,
                    refusals: 1,
                }]),
            },
            count_at: HEADER_LEN + 1,
            count_width: 4,
            expect_field: "stats_reply.records",
        },
    ];
    for bomb in bombs {
        let mut bytes = encode(&bomb.msg, 9);
        assert!(
            decode(&bytes).is_ok(),
            "{}: clean frame must decode",
            bomb.name
        );
        let capacity = bytes.len() - bomb.count_at - bomb.count_width;
        for b in &mut bytes[bomb.count_at..bomb.count_at + bomb.count_width] {
            *b = 0xff;
        }
        let claimed = match bomb.count_width {
            2 => 0xffff,
            _ => 0xffff_ffff,
        };
        assert_eq!(
            decode(&bytes).unwrap_err(),
            CodecError::CountOverflow {
                field: bomb.expect_field,
                count: claimed,
                capacity,
            },
            "{}",
            bomb.name
        );
    }
}

/// Leftover body bytes after a complete payload are reported with
/// their offset and count.
#[test]
fn trailing_bytes_reported_with_offset() {
    let mut bytes = encode(&Message::EchoRequest { token: 7 }, 1);
    let clean_len = bytes.len();
    bytes.extend_from_slice(&[0xaa; 5]);
    let claimed = bytes.len() as u32;
    bytes[2..6].copy_from_slice(&claimed.to_be_bytes());
    assert_eq!(
        decode(&bytes).unwrap_err(),
        CodecError::TrailingBytes {
            offset: clean_len,
            trailing: 5,
        }
    );
}

/// A header length below the fixed header size is structurally
/// unrecoverable and reported as `BadLength`.
#[test]
fn bad_length_below_header() {
    let mut bytes = encode(&Message::FeaturesRequest, 1);
    bytes[2..6].copy_from_slice(&5u32.to_be_bytes());
    assert_eq!(
        decode(&bytes).unwrap_err(),
        CodecError::BadLength { claimed: 5 }
    );
}
