//! Whole-platform integration tests through the `zen` facade: the same
//! workloads carried by every control plane the repo implements, plus
//! platform-level determinism.

use zen::core::apps::ReactiveForwarding;
use zen::core::harness::{build_fabric_with_hosts, default_host_ip, FabricOptions};
use zen::routing::{DistanceVectorRouter, LearningSwitch, LinkStateRouter};
use zen::sim::{Duration, Host, Instant, LinkParams, NodeId, Topology, Workload, World};
use zen::wire::{EthernetAddress, Ipv4Address};

/// The shared scenario: a ring of 5 switches, hosts on 0 and 3, one UDP
/// stream of 100 datagrams.
fn scenario_topo() -> Topology {
    let mut t = Topology::ring(5, LinkParams::default());
    t.hosts = vec![0, 3];
    t
}

fn scenario_workload(dst: Ipv4Address) -> Workload {
    Workload::Udp {
        dst,
        dst_port: 9,
        size: 256,
        count: 100,
        interval: Duration::from_millis(5),
        start: Instant::from_secs(2),
    }
}

fn run_sdn() -> u64 {
    let topo = scenario_topo();
    let mut world = World::new(1);
    let fabric = build_fabric_with_hosts(
        &mut world,
        &topo,
        vec![Box::new(ReactiveForwarding::new())],
        FabricOptions::default(),
        |i, mac, ip| {
            let host = Host::new(mac, ip).with_gratuitous_arp();
            if i == 0 {
                host.with_workload(scenario_workload(default_host_ip(1)))
            } else {
                host
            }
        },
    );
    world.run_until(Instant::from_secs(4));
    world.node_as::<Host>(fabric.hosts[1]).stats.udp_rx
}

enum Plane {
    LinkState,
    DistVec,
    L2Stp,
}

fn run_baseline(plane: Plane) -> u64 {
    let topo = scenario_topo();
    let mut world = World::new(1);
    let nodes: Vec<NodeId> = (0..topo.switches)
        .map(|i| match plane {
            Plane::LinkState => world.add_node(Box::new(LinkStateRouter::new(i as u64))),
            Plane::DistVec => world.add_node(Box::new(DistanceVectorRouter::new(i as u64))),
            Plane::L2Stp => world.add_node(Box::new(LearningSwitch::new(i as u64))),
        })
        .collect();
    for l in &topo.links {
        world.connect(nodes[l.a], nodes[l.b], l.params);
    }
    let mut hosts = Vec::new();
    for (i, &sw) in topo.hosts.iter().enumerate() {
        let ip = Ipv4Address::new(10, 0, 0, (i + 1) as u8);
        let mut host =
            Host::new(EthernetAddress::from_id(0x50_0000 + i as u64), ip).with_gratuitous_arp();
        if i == 0 {
            host = host.with_workload(scenario_workload(Ipv4Address::new(10, 0, 0, 2)));
        }
        let id = world.add_node(Box::new(host));
        world.connect(id, nodes[sw], LinkParams::default());
        hosts.push(id);
    }
    world.run_until(Instant::from_secs(4));
    world.node_as::<Host>(hosts[1]).stats.udp_rx
}

#[test]
fn every_control_plane_carries_the_same_workload() {
    assert_eq!(run_sdn(), 100, "SDN reactive");
    assert_eq!(run_baseline(Plane::LinkState), 100, "link-state");
    assert_eq!(run_baseline(Plane::DistVec), 100, "distance-vector");
    assert_eq!(run_baseline(Plane::L2Stp), 100, "L2 + spanning tree");
}

#[test]
fn whole_platform_runs_are_deterministic() {
    fn fingerprint() -> (u64, u64, u64, u64) {
        let topo = Topology::fat_tree(4, LinkParams::default());
        let n = topo.host_count();
        let mut world = World::new(777);
        let fabric = build_fabric_with_hosts(
            &mut world,
            &topo,
            vec![Box::new(ReactiveForwarding::new())],
            FabricOptions::default(),
            |i, mac, ip| {
                Host::new(mac, ip)
                    .with_gratuitous_arp()
                    .with_workload(scenario_workload(default_host_ip((i + 5) % n)))
            },
        );
        world.run_until(Instant::from_secs(4));
        let delivered: u64 = fabric
            .hosts
            .iter()
            .map(|&h| world.node_as::<Host>(h).stats.udp_rx)
            .sum();
        (
            delivered,
            world.events_processed(),
            world.metrics().counter("sim.tx_frames"),
            world.metrics().counter("sim.control_bytes"),
        )
    }
    assert_eq!(fingerprint(), fingerprint());
}

#[test]
fn abilene_wan_all_pairs_pings() {
    // Every site pings site 0 across the Abilene backbone under the
    // reactive controller; WAN latencies dominate RTTs.
    let topo = Topology::abilene(1_000_000_000).with_host_per_switch();
    let mut world = World::new(5);
    let fabric = build_fabric_with_hosts(
        &mut world,
        &topo,
        vec![Box::new(ReactiveForwarding::new())],
        FabricOptions::default(),
        |i, mac, ip| {
            let host = Host::new(mac, ip).with_gratuitous_arp();
            if i != 0 {
                host.with_workload(Workload::Ping {
                    dst: default_host_ip(0),
                    count: 3,
                    interval: Duration::from_millis(300),
                    start: Instant::from_millis(1500 + 37 * i as u64),
                })
            } else {
                host
            }
        },
    );
    world.run_until(Instant::from_secs(6));
    for i in 1..topo.host_count() {
        let h = world.node_as::<Host>(fabric.hosts[i]);
        assert_eq!(h.stats.ping_rtts.count(), 3, "site {i} pings incomplete");
        // Abilene one-way link latencies are 3..15 ms; any RTT must be
        // at least a few ms.
        assert!(
            h.stats.ping_rtts.min().unwrap() > 3e-3,
            "site {i} RTT implausibly low"
        );
    }
}

#[test]
fn meters_rate_limit_a_tenant() {
    // Install a meter on the ingress switch limiting host 0's traffic;
    // verify delivery is cut to roughly the metered rate.
    use zen::core::{Controller, SwitchAgent};
    use zen::dataplane::{Action, FlowMatch, FlowSpec};

    let topo = Topology::line(2, LinkParams::default()).with_host_per_switch();
    let mut world = World::new(9);
    let fabric = build_fabric_with_hosts(
        &mut world,
        &topo,
        vec![Box::new(ReactiveForwarding::new())],
        FabricOptions::default(),
        |i, mac, ip| {
            let host = Host::new(mac, ip).with_gratuitous_arp();
            if i == 0 {
                // 200 x 1000B over 2s = ~0.8 Mb/s offered.
                host.with_workload(Workload::Udp {
                    dst: default_host_ip(1),
                    dst_port: 9,
                    size: 1000,
                    count: 200,
                    interval: Duration::from_millis(10),
                    start: Instant::from_secs(1),
                })
            } else {
                host
            }
        },
    );
    // Let the fabric learn and install reactive flows first.
    world.run_until(Instant::from_millis(900));
    // Now program a meter + metered high-priority rule directly on the
    // ingress agent (as a tenant-bandwidth app would via METER_MOD).
    {
        let agent = world.node_as_mut::<SwitchAgent>(fabric.switches[0]);
        agent.dp.set_meter(1, 200_000, 4_000); // 0.2 Mb/s, 4 kB burst
        let matcher = FlowMatch::ANY.with_ip_proto(17);
        agent.dp.add_flow(
            0,
            // Port 1 is the inter-switch link on a 2-switch line.
            FlowSpec::new(500, matcher, vec![Action::Meter(1), Action::Output(1)]),
            0,
        );
    }
    world.run_until(Instant::from_secs(4));
    let delivered = world.node_as::<Host>(fabric.hosts[1]).stats.udp_rx;
    // Offered 0.8 Mb/s vs 0.2 Mb/s meter: expect roughly a quarter
    // through (plus burst).
    assert!(
        (30..=90).contains(&delivered),
        "metered delivery {delivered}/200 outside expected band"
    );
    let _ = world.node_as::<Controller>(fabric.controller);
}
